package mpi

import "fmt"

// Collective operations. All of them are implemented on top of the
// point-to-point layer on the communicator's private collective context,
// so every synchronization a collective implies is visible to the
// happens-before tracker as ordinary message edges.
//
// Tags encode (collective sequence number, algorithm step): every task of
// a communicator executes collectives in the same order, so sequence
// numbers agree, and traffic from adjacent collectives cannot be confused
// even when a fast task races ahead.

const collStepBits = 10 // up to 1024 algorithm steps per collective

// collStart bumps the communicator's collective sequence number for this
// task and returns the base tag.
func collStart(t *Task, c *Comm) (comm *Comm, baseTag int) {
	if c == nil {
		c = t.world.world
	}
	if c.Rank(t) < 0 {
		raise(t.rank, "collective", "task is not a member of the communicator")
	}
	st := t.stateFor(c)
	st.collSeq++
	t.world.stats.collectives.Add(1)
	if t.world.msgHooks != nil {
		t.world.msgHooks.OnCollective(t.rank)
	}
	if th := t.world.traceHooks; th != nil {
		// (collective context, sequence) is world-agreed: every member
		// executes collectives on c in the same order, so the pair
		// identifies this operation across processes.
		alg := "chan"
		switch {
		case c.shm != nil:
			alg = "shm"
		case c.tl != nil:
			alg = "2l"
		}
		th.SpanCollective(t.rank, c.ctxColl, int64(st.collSeq), alg)
	}
	return c, int(st.collSeq << collStepBits)
}

// csend / crecv are collective-context point-to-point helpers. op names
// the collective ("Barrier", "Bcast", ...) so failures surface as typed
// errors attributed to it.
func csend[T Scalar](t *Task, c *Comm, op string, buf []T, dst, tag int) {
	if req := isend(t, c, c.ctxColl, buf, dst, tag, op); req != nil {
		t.blockOn(fmt.Sprintf("%s rendezvous send(dst=%d)", op, dst))
		req.Wait()
		t.unblock()
		t.checkReq(op, req)
	}
}

func cisend[T Scalar](t *Task, c *Comm, op string, buf []T, dst, tag int) *Request {
	req := isend(t, c, c.ctxColl, buf, dst, tag, op)
	if req == nil {
		req = newRequest(false)
		req.complete(Status{})
	}
	return req
}

func crecv[T Scalar](t *Task, c *Comm, op string, buf []T, src, tag int) {
	req := irecv(t, c, c.ctxColl, buf, src, tag, op)
	t.blockOn(fmt.Sprintf("%s recv(src=%d)", op, src))
	req.Wait()
	t.unblock()
	t.checkReq(op, req)
}

// Barrier blocks until every task of the communicator has entered it.
// Dissemination algorithm: ceil(log2 n) rounds, in round k each task sends
// to (rank+2^k) mod n and receives from (rank-2^k) mod n.
func Barrier(t *Task, c *Comm) {
	c, base := collStart(t, c)
	if c.shm != nil {
		shmBarrier(t, c, base)
		return
	}
	if c.tl != nil {
		twoLevelBarrier(t, c, base)
		return
	}
	chanBarrier(t, c, base)
}

func chanBarrier(t *Task, c *Comm, base int) {
	n := c.Size()
	if n == 1 {
		return
	}
	r := c.Rank(t)
	var token [0]byte
	for k, step := 1, 0; k < n; k, step = k<<1, step+1 {
		dst := (r + k) % n
		src := (r - k + n) % n
		sreq := cisend(t, c, "Barrier", token[:], dst, base+step)
		crecv(t, c, "Barrier", token[:], src, base+step)
		sreq.Wait()
		t.checkReq("Barrier", sreq)
	}
}

// Bcast broadcasts buf from root to every task, with a binomial tree.
// Every task must pass a buffer of the same length.
func Bcast[T Scalar](t *Task, c *Comm, buf []T, root int) {
	c, base := collStart(t, c)
	checkRoot(t, c, root, "Bcast")
	if c.shm != nil {
		shmBcast(t, c, buf, root, base)
		return
	}
	if c.tl != nil {
		twoLevelBcast(t, c, buf, root, base)
		return
	}
	chanBcast(t, c, buf, root, base)
}

func chanBcast[T Scalar](t *Task, c *Comm, buf []T, root, base int) {
	n := c.Size()
	if n == 1 {
		return
	}
	r := c.Rank(t)
	vr := (r - root + n) % n // virtual rank: root is 0
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			src := (vr - mask + root) % n
			crecv(t, c, "Bcast", buf, src, base)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			dst := (vr + mask + root) % n
			csend(t, c, "Bcast", buf, dst, base)
		}
		mask >>= 1
	}
}

// Reduce combines sendBuf across tasks with op into recvBuf at root, with
// a binomial tree. recvBuf is only written at root (it may be nil
// elsewhere); it must not alias sendBuf.
func Reduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, root int) {
	c, base := collStart(t, c)
	checkRoot(t, c, root, "Reduce")
	if c.shm != nil {
		shmReduce(t, c, sendBuf, recvBuf, op, root, base)
		return
	}
	if c.tl != nil {
		twoLevelReduce(t, c, sendBuf, recvBuf, op, root, base)
		return
	}
	chanReduce(t, c, sendBuf, recvBuf, op, root, base)
}

func chanReduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, root, base int) {
	n := c.Size()
	r := c.Rank(t)
	acc := append([]T(nil), sendBuf...)
	if n > 1 {
		vr := (r - root + n) % n
		tmp := make([]T, len(sendBuf))
		mask := 1
		for mask < n {
			if vr&mask != 0 {
				dst := (vr - mask + root) % n
				csend(t, c, "Reduce", acc, dst, base+bits(mask))
				break
			}
			if vr+mask < n {
				src := (vr + mask + root) % n
				crecv(t, c, "Reduce", tmp, src, base+bits(mask))
				apply(t.rank, op, acc, tmp)
			}
			mask <<= 1
		}
	}
	if r == root {
		if len(recvBuf) < len(sendBuf) {
			raise(t.rank, "Reduce", "receive buffer too small: %d < %d", len(recvBuf), len(sendBuf))
		}
		copy(recvBuf, acc)
	}
}

// bits returns the position of the lowest set bit of mask (mask is a power
// of two here), used to give every tree level its own tag step.
func bits(mask int) int {
	s := 0
	for mask > 1 {
		mask >>= 1
		s++
	}
	return s
}

// Allreduce combines sendBuf across all tasks with op into recvBuf on
// every task (reduce-to-0 followed by broadcast).
func Allreduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op) {
	if c == nil {
		c = t.world.world
	}
	if len(recvBuf) < len(sendBuf) {
		raise(t.rank, "Allreduce", "receive buffer too small: %d < %d", len(recvBuf), len(sendBuf))
	}
	if c.shm != nil {
		c, base := collStart(t, c)
		shmAllreduce(t, c, sendBuf, recvBuf, op, base)
		return
	}
	if c.tl != nil {
		c, base := collStart(t, c)
		twoLevelAllreduce(t, c, sendBuf, recvBuf, op, base)
		return
	}
	Reduce(t, c, sendBuf, recvBuf, op, 0)
	Bcast(t, c, recvBuf[:len(sendBuf)], 0)
}

// Gather concentrates each task's sendBuf into recvBuf at root, laid out
// by rank: recvBuf[r*len(sendBuf) : (r+1)*len(sendBuf)]. Every task must
// send the same number of elements; use Gatherv otherwise.
func Gather[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, root int) {
	c, base := collStart(t, c)
	n := c.Size()
	checkRoot(t, c, root, "Gather")
	r := c.Rank(t)
	k := len(sendBuf)
	if r != root {
		csend(t, c, "Gather", sendBuf, root, base)
		return
	}
	if len(recvBuf) < n*k {
		raise(t.rank, "Gather", "receive buffer too small: %d < %d", len(recvBuf), n*k)
	}
	copy(recvBuf[r*k:(r+1)*k], sendBuf)
	for src := 0; src < n; src++ {
		if src == root {
			continue
		}
		crecv(t, c, "Gather", recvBuf[src*k:(src+1)*k], src, base)
	}
}

// Gatherv is Gather with per-rank counts and displacements (in elements).
func Gatherv[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, counts, displs []int, root int) {
	c, base := collStart(t, c)
	n := c.Size()
	checkRoot(t, c, root, "Gatherv")
	r := c.Rank(t)
	if r != root {
		csend(t, c, "Gatherv", sendBuf, root, base)
		return
	}
	if len(counts) != n || len(displs) != n {
		raise(t.rank, "Gatherv", "counts/displs length %d/%d, want %d", len(counts), len(displs), n)
	}
	copy(recvBuf[displs[r]:displs[r]+counts[r]], sendBuf)
	for src := 0; src < n; src++ {
		if src == root {
			continue
		}
		crecv(t, c, "Gatherv", recvBuf[displs[src]:displs[src]+counts[src]], src, base)
	}
}

// Scatter distributes root's sendBuf (laid out by rank, len(recvBuf)
// elements each) into every task's recvBuf.
func Scatter[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, root int) {
	c, base := collStart(t, c)
	n := c.Size()
	checkRoot(t, c, root, "Scatter")
	r := c.Rank(t)
	k := len(recvBuf)
	if r == root {
		if len(sendBuf) < n*k {
			raise(t.rank, "Scatter", "send buffer too small: %d < %d", len(sendBuf), n*k)
		}
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			csend(t, c, "Scatter", sendBuf[dst*k:(dst+1)*k], dst, base)
		}
		copy(recvBuf, sendBuf[r*k:(r+1)*k])
		return
	}
	crecv(t, c, "Scatter", recvBuf, root, base)
}

// Scatterv is Scatter with per-rank counts and displacements (in
// elements); recvBuf must hold counts[rank] elements.
func Scatterv[T Scalar](t *Task, c *Comm, sendBuf []T, counts, displs []int, recvBuf []T, root int) {
	c, base := collStart(t, c)
	n := c.Size()
	checkRoot(t, c, root, "Scatterv")
	r := c.Rank(t)
	if r == root {
		if len(counts) != n || len(displs) != n {
			raise(t.rank, "Scatterv", "counts/displs length %d/%d, want %d", len(counts), len(displs), n)
		}
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			csend(t, c, "Scatterv", sendBuf[displs[dst]:displs[dst]+counts[dst]], dst, base)
		}
		copy(recvBuf, sendBuf[displs[r]:displs[r]+counts[r]])
		return
	}
	crecv(t, c, "Scatterv", recvBuf, root, base)
}

// Allgather concentrates every task's sendBuf into every task's recvBuf
// (rank-major layout), with a ring algorithm: n-1 steps, each task
// forwarding the block it received in the previous step.
func Allgather[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T) {
	c, base := collStart(t, c)
	n := c.Size()
	k := len(sendBuf)
	if len(recvBuf) < n*k {
		raise(t.rank, "Allgather", "receive buffer too small: %d < %d", len(recvBuf), n*k)
	}
	if c.shm != nil {
		shmAllgather(t, c, sendBuf, recvBuf, base)
		return
	}
	if c.tl != nil {
		twoLevelAllgather(t, c, sendBuf, recvBuf, base)
		return
	}
	chanAllgather(t, c, sendBuf, recvBuf, base)
}

func chanAllgather[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, base int) {
	n := c.Size()
	r := c.Rank(t)
	k := len(sendBuf)
	copy(recvBuf[r*k:(r+1)*k], sendBuf)
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for step := 0; step < n-1; step++ {
		sendBlock := (r - step + n) % n
		recvBlock := (r - step - 1 + n) % n
		sreq := cisend(t, c, "Allgather", recvBuf[sendBlock*k:(sendBlock+1)*k], right, base+step)
		crecv(t, c, "Allgather", recvBuf[recvBlock*k:(recvBlock+1)*k], left, base+step)
		sreq.Wait()
		t.checkReq("Allgather", sreq)
	}
}

// Alltoall sends block j of sendBuf to rank j and receives block i of rank
// i into recvBuf (blocks of len(sendBuf)/n elements), with a pairwise
// exchange schedule.
func Alltoall[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T) {
	c, base := collStart(t, c)
	n := c.Size()
	r := c.Rank(t)
	if len(sendBuf)%n != 0 {
		raise(t.rank, "Alltoall", "send buffer length %d not divisible by %d tasks", len(sendBuf), n)
	}
	k := len(sendBuf) / n
	if len(recvBuf) < len(sendBuf) {
		raise(t.rank, "Alltoall", "receive buffer too small: %d < %d", len(recvBuf), len(sendBuf))
	}
	copy(recvBuf[r*k:(r+1)*k], sendBuf[r*k:(r+1)*k])
	for step := 1; step < n; step++ {
		dst := (r + step) % n
		src := (r - step + n) % n
		sreq := cisend(t, c, "Alltoall", sendBuf[dst*k:(dst+1)*k], dst, base+step)
		crecv(t, c, "Alltoall", recvBuf[src*k:(src+1)*k], src, base+step)
		sreq.Wait()
		t.checkReq("Alltoall", sreq)
	}
}

// Scan computes the inclusive prefix reduction: task r receives
// op(sendBuf_0, ..., sendBuf_r) in recvBuf. Linear chain.
func Scan[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op) {
	c, base := collStart(t, c)
	n := c.Size()
	r := c.Rank(t)
	if len(recvBuf) < len(sendBuf) {
		raise(t.rank, "Scan", "receive buffer too small: %d < %d", len(recvBuf), len(sendBuf))
	}
	copy(recvBuf, sendBuf)
	if r > 0 {
		tmp := make([]T, len(sendBuf))
		crecv(t, c, "Scan", tmp, r-1, base)
		apply(t.rank, op, recvBuf[:len(sendBuf)], tmp)
	}
	if r < n-1 {
		csend(t, c, "Scan", recvBuf[:len(sendBuf)], r+1, base)
	}
}

func checkRoot(t *Task, c *Comm, root int, op string) {
	if root < 0 || root >= c.Size() {
		raise(t.rank, op, "root %d out of range [0,%d)", root, c.Size())
	}
}
