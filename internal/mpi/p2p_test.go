package mpi

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// run executes fn over n tasks with a test-friendly timeout and fails the
// test on error.
func run(t *testing.T, n int, fn func(*Task) error) *World {
	t.Helper()
	w, err := Run(Config{NumTasks: n, Timeout: 30 * time.Second}, fn)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runErr executes fn and returns the error.
func runErr(n int, fn func(*Task) error) error {
	_, err := Run(Config{NumTasks: n, Timeout: 30 * time.Second}, fn)
	return err
}

func TestRunRanks(t *testing.T) {
	seen := make([]bool, 7)
	run(t, 7, func(task *Task) error {
		if task.Size() != 7 {
			return fmt.Errorf("size = %d", task.Size())
		}
		seen[task.Rank()] = true
		return nil
	})
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []float64{1.5, 2.5, 3.5}, 1, 7)
		} else {
			buf := make([]float64, 3)
			st := Recv(task, nil, buf, 0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				return fmt.Errorf("status = %+v", st)
			}
			if buf[0] != 1.5 || buf[2] != 3.5 {
				return fmt.Errorf("payload = %v", buf)
			}
		}
		return nil
	})
}

func TestSendRecvRendezvous(t *testing.T) {
	const n = 4096 // 32 KiB of float64 > DefaultEagerLimit
	w := run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			big := make([]float64, n)
			for i := range big {
				big[i] = float64(i)
			}
			Send(task, nil, big, 1, 0)
		} else {
			buf := make([]float64, n)
			Recv(task, nil, buf, 0, 0)
			if buf[n-1] != float64(n-1) {
				return fmt.Errorf("last = %v", buf[n-1])
			}
		}
		return nil
	})
	if w.Stats().Rendezvous == 0 {
		t.Error("large message did not use rendezvous")
	}
}

func TestRecvBeforeSend(t *testing.T) {
	// Posted-receive path: the receiver posts first, the sender matches.
	run(t, 2, func(task *Task) error {
		if task.Rank() == 1 {
			buf := make([]int, 1)
			st := Recv(task, nil, buf, 0, 3)
			if buf[0] != 42 || st.Count != 1 {
				return fmt.Errorf("got %v %+v", buf, st)
			}
		} else {
			time.Sleep(20 * time.Millisecond) // let rank 1 post
			Send(task, nil, []int{42}, 1, 3)
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(task *Task) error {
		switch task.Rank() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]int, 1)
				st := Recv(task, nil, buf, AnySource, AnyTag)
				if buf[0] != st.Source*100+st.Tag {
					return fmt.Errorf("payload %d inconsistent with status %+v", buf[0], st)
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources seen: %v", got)
			}
		case 1:
			Send(task, nil, []int{1*100 + 5}, 0, 5)
		case 2:
			Send(task, nil, []int{2*100 + 9}, 0, 9)
		}
		return nil
	})
}

func TestNonOvertaking(t *testing.T) {
	// Messages from the same sender with the same tag must arrive in
	// order.
	const k = 50
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			for i := 0; i < k; i++ {
				Send(task, nil, []int{i}, 1, 0)
			}
		} else {
			for i := 0; i < k; i++ {
				buf := make([]int, 1)
				Recv(task, nil, buf, 0, 0)
				if buf[0] != i {
					return fmt.Errorf("message %d arrived at position %d", buf[0], i)
				}
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive with tag 2 must match the tag-2 message even if a tag-1
	// message arrived first.
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []int{1}, 1, 1)
			Send(task, nil, []int{2}, 1, 2)
		} else {
			buf := make([]int, 1)
			Recv(task, nil, buf, 0, 2)
			if buf[0] != 2 {
				return fmt.Errorf("tag-2 receive got %d", buf[0])
			}
			Recv(task, nil, buf, 0, 1)
			if buf[0] != 1 {
				return fmt.Errorf("tag-1 receive got %d", buf[0])
			}
		}
		return nil
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 5; i++ {
				reqs = append(reqs, Isend(task, nil, []int{i * i}, 1, i))
			}
			Waitall(reqs)
		} else {
			bufs := make([][]int, 5)
			var reqs []*Request
			for i := 0; i < 5; i++ {
				bufs[i] = make([]int, 1)
				reqs = append(reqs, Irecv(task, nil, bufs[i], 0, i))
			}
			sts := Waitall(reqs)
			for i := 0; i < 5; i++ {
				if bufs[i][0] != i*i || sts[i].Tag != i {
					return fmt.Errorf("req %d: buf=%v st=%+v", i, bufs[i], sts[i])
				}
			}
		}
		return nil
	})
}

func TestTestCompletion(t *testing.T) {
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			time.Sleep(10 * time.Millisecond)
			Send(task, nil, []int{1}, 1, 0)
		} else {
			buf := make([]int, 1)
			req := Irecv(task, nil, buf, 0, 0)
			for {
				if _, ok := req.Test(); ok {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if buf[0] != 1 {
				return fmt.Errorf("buf = %v", buf)
			}
		}
		return nil
	})
}

func TestProbeIprobe(t *testing.T) {
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []float32{1, 2, 3, 4}, 1, 11)
		} else {
			st := Probe(task, nil, 0, 11)
			if st.Count != 4 || st.Tag != 11 || st.Source != 0 {
				return fmt.Errorf("probe status %+v", st)
			}
			// The message is still there.
			if _, ok := Iprobe(task, nil, 0, 11); !ok {
				return fmt.Errorf("iprobe missed probed message")
			}
			buf := make([]float32, st.Count)
			Recv(task, nil, buf, 0, 11)
			if _, ok := Iprobe(task, nil, AnySource, AnyTag); ok {
				return fmt.Errorf("iprobe found message after receive")
			}
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	// Pairwise exchange with large (rendezvous) messages: Sendrecv must
	// not deadlock.
	const n = 4096
	run(t, 2, func(task *Task) error {
		me := task.Rank()
		other := 1 - me
		out := make([]float64, n)
		in := make([]float64, n)
		for i := range out {
			out[i] = float64(me*1000 + i%10)
		}
		Sendrecv(task, nil, out, other, 0, in, other, 0)
		if in[0] != float64(other*1000) {
			return fmt.Errorf("rank %d received %v", me, in[0])
		}
		return nil
	})
}

func TestSameAddressElision(t *testing.T) {
	// When source and destination are the same buffer, the copy is
	// skipped — the Tachyon rank-0 optimization. Use a rendezvous-sized
	// message so no eager copy happens either.
	const n = 4096
	shared := make([]float64, n)
	w := run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			for i := range shared {
				shared[i] = float64(i)
			}
			Send(task, nil, shared, 1, 0)
		} else {
			Recv(task, nil, shared, 0, 0)
		}
		return nil
	})
	if w.Stats().SameAddrSkips != 1 {
		t.Errorf("SameAddrSkips = %d, want 1", w.Stats().SameAddrSkips)
	}
}

func TestDatatypeMismatchFatal(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []float64{1}, 1, 0)
		} else {
			buf := make([]int32, 1)
			Recv(task, nil, buf, 0, 0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "datatype mismatch") {
		t.Errorf("err = %v, want datatype mismatch", err)
	}
}

func TestTruncationFatal(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []int{1, 2, 3}, 1, 0)
		} else {
			buf := make([]int, 2)
			Recv(task, nil, buf, 0, 0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("err = %v, want truncation", err)
	}
}

// TestTruncationPostedFirst pins the delivery on the sender's goroutine:
// the receive is posted before the send, so inject matches it and the
// sender performs the copy. The truncation error must surface as the
// receiver's error — not escape on the sender's goroutine and orphan the
// already-dequeued receive request (which would hang the receiver until
// the watchdog timeout).
func TestTruncationPostedFirst(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 1 {
			buf := make([]int, 2)
			req := Irecv(task, nil, buf, 0, 0)
			Barrier(task, nil) // the send happens after the post
			req.Wait()
			if e := req.Err(); e == nil || !strings.Contains(e.Error(), "truncated") {
				return fmt.Errorf("receiver err = %v, want truncation", e)
			}
			return nil
		}
		Barrier(task, nil)
		Send(task, nil, []int{1, 2, 3}, 1, 0)
		return nil
	})
	if err != nil {
		t.Errorf("run err = %v, want nil (error handled at the receiver)", err)
	}
}

func TestInvalidRankFatal(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []int{1}, 5, 0)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want out-of-range", err)
	}
}

func TestNegativeTagFatal(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []int{1}, 1, -3)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "negative tag") {
		t.Errorf("err = %v, want negative-tag error", err)
	}
}

func TestTimeoutDiagnostic(t *testing.T) {
	_, err := Run(Config{NumTasks: 2, Timeout: 100 * time.Millisecond}, func(task *Task) error {
		if task.Rank() == 0 {
			buf := make([]int, 1)
			Recv(task, nil, buf, 1, 0) // never sent: deadlock
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if !strings.Contains(err.Error(), "Recv(src=1, tag=0)") {
		t.Errorf("diagnostic missing blocked operation: %v", err)
	}
}

func TestTaskPanicsRecovered(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 1 {
			panic("user bug")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "user bug") {
		t.Errorf("err = %v, want recovered panic", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{NumTasks: 0}, func(*Task) error { return nil }); err == nil {
		t.Error("NumTasks=0 accepted")
	}
}

// Property-style stress: random pairs exchange random-length messages with
// random tags; everything must be delivered intact.
func TestRandomTrafficStress(t *testing.T) {
	const n = 8
	const msgsPerRank = 40
	rng := rand.New(rand.NewSource(1))
	// Pre-plan traffic so senders and receivers agree.
	type plan struct{ dst, tag, size int }
	plans := make([][]plan, n)
	expect := make([][]plan, n) // indexed by receiver, in per-sender order
	for r := 0; r < n; r++ {
		for m := 0; m < msgsPerRank; m++ {
			p := plan{dst: rng.Intn(n), tag: rng.Intn(4), size: 1 + rng.Intn(2000)}
			if p.dst == r {
				p.dst = (p.dst + 1) % n
			}
			plans[r] = append(plans[r], p)
			expect[p.dst] = append(expect[p.dst], plan{dst: r /* sender */, tag: p.tag, size: p.size})
		}
	}
	run(t, n, func(task *Task) error {
		r := task.Rank()
		done := make(chan error, 1)
		go func() { done <- nil }()
		// Send everything nonblocking, then receive what we expect with
		// AnySource/AnyTag, verifying size-vs-content consistency.
		var reqs []*Request
		for _, p := range plans[r] {
			buf := make([]int32, p.size)
			for i := range buf {
				buf[i] = int32(p.size)
			}
			reqs = append(reqs, Isend(task, nil, buf, p.dst, p.tag))
		}
		for range expect[r] {
			st := Probe(task, nil, AnySource, AnyTag)
			buf := make([]int32, st.Count)
			st2 := Recv(task, nil, buf, st.Source, st.Tag)
			if st2.Count != st.Count {
				return fmt.Errorf("probe count %d != recv count %d", st.Count, st2.Count)
			}
			for _, v := range buf {
				if v != int32(len(buf)) {
					return fmt.Errorf("corrupt payload: %d in message of %d", v, len(buf))
				}
			}
		}
		Waitall(reqs)
		return <-done
	})
}

func TestStatsCounts(t *testing.T) {
	w := run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, []byte{1, 2, 3}, 1, 0)
		} else {
			buf := make([]byte, 3)
			Recv(task, nil, buf, 0, 0)
		}
		return nil
	})
	s := w.Stats()
	if s.Messages != 1 || s.Bytes != 3 {
		t.Errorf("stats = %+v, want 1 message of 3 bytes", s)
	}
}

func TestUnexpectedQueueWatermark(t *testing.T) {
	w := run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			for i := 0; i < 10; i++ {
				Send(task, nil, []byte{0, 1, 2, 3}, 1, i)
			}
			Send(task, nil, []byte{9}, 1, 99)
		} else {
			// Let all sends land unexpected first.
			buf := make([]byte, 4)
			Recv(task, nil, buf[:1], 0, 99)
			for i := 0; i < 10; i++ {
				Recv(task, nil, buf, 0, i)
			}
		}
		return nil
	})
	if got := w.Stats().PeakUnexpectedBytes; got < 40 {
		t.Errorf("PeakUnexpectedBytes = %d, want >= 40", got)
	}
}
