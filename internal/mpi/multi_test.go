package mpi

import (
	"sync/atomic"
	"testing"
	"time"
)

// recHooks is a plain Hooks member: it tags its metadata with its id and
// checks every delivery hands back its own tag.
type recHooks struct {
	id                   int
	sends, delivers, bad atomic.Int64
}

func (h *recHooks) OnSend(src, dst int) any {
	h.sends.Add(1)
	return [2]int{h.id, src*100 + dst}
}

func (h *recHooks) OnDeliver(dst int, meta any) {
	h.delivers.Add(1)
	if m, ok := meta.([2]int); !ok || m[0] != h.id || m[1]%100 != dst {
		h.bad.Add(1)
	}
}

// msgRecHooks additionally implements MessageHooks.
type msgRecHooks struct {
	recHooks
	eager, rendezvous, elided, colls atomic.Int64
	bytes, elidedBytes               atomic.Int64
}

func (h *msgRecHooks) OnMessage(src, dst, bytes int, rendezvous bool) {
	h.bytes.Add(int64(bytes))
	if rendezvous {
		h.rendezvous.Add(1)
	} else {
		h.eager.Add(1)
	}
}

func (h *msgRecHooks) OnCopyElided(dst, bytes int) {
	h.elided.Add(1)
	h.elidedBytes.Add(int64(bytes))
}

func (h *msgRecHooks) OnCollective(rank int) { h.colls.Add(1) }

func TestMultiHooksDegenerateCases(t *testing.T) {
	if MultiHooks() != nil || MultiHooks(nil, nil) != nil {
		t.Fatal("MultiHooks with no members must be nil (no hooks at all)")
	}
	h := &recHooks{id: 1}
	if got := MultiHooks(nil, h, nil); got != Hooks(h) {
		t.Fatal("MultiHooks with one member must return it unchanged")
	}
	if _, ok := MultiHooks(&recHooks{}, &recHooks{}).(MessageHooks); !ok {
		t.Fatal("the combined hooks must satisfy MessageHooks so members that do are reachable")
	}
}

func TestMultiHooksFanOut(t *testing.T) {
	plain := &recHooks{id: 1}
	msg := &msgRecHooks{recHooks: recHooks{id: 2}}
	hooks := MultiHooks(plain, nil, msg)

	shared := make([]int, 4) // one address space: used for the elision path
	_, err := Run(Config{NumTasks: 2, Hooks: hooks, EagerLimit: 16, Timeout: 30 * time.Second},
		func(task *Task) error {
			if task.Rank() == 0 {
				Send(task, nil, []int{1}, 1, 0)          // 8 B <= 16: eager
				Send(task, nil, []int{1, 2, 3, 4}, 1, 1) // 32 B > 16: rendezvous
				Send(task, nil, shared, 1, 2)            // same buffer on both sides
			} else {
				buf := make([]int, 4)
				// Probe first so the eager message is queued unexpected before
				// the receive posts: a pre-posted receive would be delivered
				// directly and fire a second, timing-dependent elision event.
				Probe(task, nil, 0, 0)
				Recv(task, nil, buf[:1], 0, 0)
				Recv(task, nil, buf, 0, 1)
				Recv(task, nil, shared, 0, 2) // same backing array: copy elided
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, h := range []*recHooks{plain, &msg.recHooks} {
		if h.sends.Load() != 3 || h.delivers.Load() != 3 {
			t.Errorf("member %d: sends %d delivers %d, want 3/3", h.id, h.sends.Load(), h.delivers.Load())
		}
		if h.bad.Load() != 0 {
			t.Errorf("member %d: received another member's metadata", h.id)
		}
	}
	if msg.eager.Load() != 1 || msg.rendezvous.Load() != 2 {
		t.Errorf("protocol split: eager %d rendezvous %d, want 1/2", msg.eager.Load(), msg.rendezvous.Load())
	}
	if got := msg.bytes.Load(); got != 8+32+32 {
		t.Errorf("bytes = %d, want 72", got)
	}
	if msg.elided.Load() != 1 || msg.elidedBytes.Load() != 32 {
		t.Errorf("elision: %d events / %d B, want 1 / 32", msg.elided.Load(), msg.elidedBytes.Load())
	}
}

// TestMessageHooksDirect: a world whose sole Hooks implements
// MessageHooks receives the extended events without MultiHooks.
func TestMessageHooksDirect(t *testing.T) {
	msg := &msgRecHooks{recHooks: recHooks{id: 1}}
	_, err := Run(Config{NumTasks: 2, Hooks: msg, Timeout: 30 * time.Second},
		func(task *Task) error {
			if task.Rank() == 0 {
				Send(task, nil, []int{7}, 1, 0)
			} else {
				Recv(task, nil, make([]int, 1), 0, 0)
			}
			Barrier(task, nil)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The barrier's internal messages are zero-byte, so the payload total
	// pins down the user message alone.
	if msg.bytes.Load() != 8 {
		t.Fatalf("OnMessage not wired: bytes %d, want 8", msg.bytes.Load())
	}
	if got := msg.colls.Load(); got != 2 {
		t.Fatalf("collective starts = %d, want 2 (one per task)", got)
	}
}
