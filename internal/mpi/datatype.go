package mpi

// Derived datatypes: the strided-transfer layer of the runtime (ROADMAP
// item 4). A Datatype describes a non-contiguous selection of elements
// inside a user buffer — a strided vector, an N-dimensional subarray —
// with the MPI commit/size/extent semantics. Typed transfers take three
// escalating datapaths:
//
//  1. generic pack/unpack through a pooled eager buffer (the classic
//     MPI_Pack datapath, zero-alloc thanks to the size-classed pool);
//  2. pack elision on the shared address space: when sender and receiver
//     live in one process, the payload moves strided-to-strided between
//     the two user buffers with no intermediate at all, counted by
//     Stats().PackElisions and the OnPackElided hook — the HLS paper's
//     copy-removal argument applied to datatype packing;
//  3. on the wire, rendezvous payloads stream as pipelined packed chunks
//     (TypeDataSeg frames), so a large subarray never materializes fully
//     packed on either side.
//
// A Datatype is immutable after Commit and safe for concurrent use by
// any number of sends and receives.

// maxDtDims bounds the dimensionality of a Datatype, so the pack/unpack
// cursor can live in a fixed-size array and iteration never allocates.
const maxDtDims = 8

// dtDim is one nesting level of the canonical layout: count blocks
// separated by stride elements. Levels are ordered outer to inner; the
// innermost level below every dim is a contiguous run of blocklen
// elements.
type dtDim struct {
	count  int
	stride int
}

// Datatype describes a selection of elements within a buffer. Build one
// with TypeContiguous, TypeVector or TypeSubarray, then Commit it before
// use. The zero Datatype is invalid; a nil *Datatype passed to the typed
// operations means "the whole buffer, contiguous".
type Datatype struct {
	kind      string // "contiguous", "vector", "subarray"
	committed bool

	size     int // elements transferred (the packed element count)
	extent   int // minimum buffer length, in elements, the layout addresses
	lower    int // element offset of the first block
	blocklen int // innermost contiguous run length, in elements
	dims     []dtDim

	// contig marks layouts whose selected elements form one contiguous
	// run starting at offset 0: the typed paths normalize these to the
	// plain contiguous datapath, so TypeContiguous costs nothing.
	contig bool
}

// TypeContiguous describes the first n elements of a buffer. It exists
// for API symmetry (MPI_Type_contiguous); transfers using it take the
// ordinary contiguous datapath.
func TypeContiguous(n int) *Datatype {
	if n < 0 {
		raise(-1, "TypeContiguous", "negative element count %d", n)
	}
	d := &Datatype{kind: "contiguous", size: n, extent: n, blocklen: n}
	d.contig = true
	return d
}

// TypeVector describes count blocks of blocklen elements, the starts of
// consecutive blocks separated by stride elements (MPI_Type_vector).
// stride must be at least blocklen when count > 1: a smaller stride
// would make blocks overlap, which is a typed usage error.
func TypeVector(count, blocklen, stride int) *Datatype {
	switch {
	case count < 0:
		raise(-1, "TypeVector", "negative count %d", count)
	case blocklen < 0:
		raise(-1, "TypeVector", "negative block length %d", blocklen)
	case stride < 0:
		raise(-1, "TypeVector", "negative stride %d", stride)
	case count > 1 && stride < blocklen:
		raise(-1, "TypeVector", "stride %d smaller than block length %d: blocks overlap", stride, blocklen)
	}
	d := &Datatype{
		kind:     "vector",
		size:     count * blocklen,
		blocklen: blocklen,
		dims:     []dtDim{{count: count, stride: stride}},
	}
	if d.size > 0 {
		d.extent = (count-1)*stride + blocklen
	}
	d.contig = d.size == 0 || count == 1 || stride == blocklen
	return d
}

// TypeSubarray describes the subsizes-shaped region at offset starts of
// a row-major sizes-shaped array (MPI_Type_create_subarray). All three
// slices must have the same length (the dimensionality, at most
// maxDtDims); each dimension must satisfy
// 0 <= starts[d] && subsizes[d] >= 0 && starts[d]+subsizes[d] <= sizes[d].
func TypeSubarray(sizes, subsizes, starts []int) *Datatype {
	nd := len(sizes)
	if nd == 0 || nd > maxDtDims {
		raise(-1, "TypeSubarray", "dimensionality %d out of range [1,%d]", nd, maxDtDims)
	}
	if len(subsizes) != nd || len(starts) != nd {
		raise(-1, "TypeSubarray", "sizes/subsizes/starts lengths differ: %d/%d/%d", nd, len(subsizes), len(starts))
	}
	for dIdx := 0; dIdx < nd; dIdx++ {
		switch {
		case sizes[dIdx] < 0:
			raise(-1, "TypeSubarray", "negative size %d in dimension %d", sizes[dIdx], dIdx)
		case subsizes[dIdx] < 0:
			raise(-1, "TypeSubarray", "negative subsize %d in dimension %d", subsizes[dIdx], dIdx)
		case starts[dIdx] < 0:
			raise(-1, "TypeSubarray", "negative start %d in dimension %d", starts[dIdx], dIdx)
		case starts[dIdx]+subsizes[dIdx] > sizes[dIdx]:
			raise(-1, "TypeSubarray", "dimension %d: start %d + subsize %d exceeds size %d",
				dIdx, starts[dIdx], subsizes[dIdx], sizes[dIdx])
		}
	}
	// Row-major strides: dimension d advances by the product of the
	// full sizes of every inner dimension.
	d := &Datatype{kind: "subarray", blocklen: subsizes[nd-1]}
	d.size = 1
	for _, s := range subsizes {
		d.size *= s
	}
	stride := 1
	lower := starts[nd-1]
	d.extent = 1
	for _, s := range sizes {
		d.extent *= s
	}
	for dIdx := nd - 2; dIdx >= 0; dIdx-- {
		stride *= sizes[dIdx+1]
		lower += starts[dIdx] * stride
		// Prepend: dims are ordered outer to inner.
		d.dims = append([]dtDim{{count: subsizes[dIdx], stride: stride}}, d.dims...)
	}
	d.lower = lower
	if d.size == 0 {
		d.extent = 0
		d.lower = 0
	}
	d.contig = computeContig(d.dims, d.blocklen, d.lower) || d.size == 0
	if d.contig {
		// A contiguous subarray is addressed from its lower offset only
		// when that offset is zero; otherwise it keeps its strided
		// description (one run at a nonzero offset).
		d.contig = d.lower == 0
		if d.contig {
			d.extent = d.size
		}
	}
	return d
}

// computeContig reports whether the layout's selected elements form one
// contiguous run starting at offset zero, in which case the typed paths
// normalize it to the plain contiguous datapath.
func computeContig(dims []dtDim, blocklen, lower int) bool {
	if lower != 0 {
		return false
	}
	run := blocklen
	for i := len(dims) - 1; i >= 0; i-- {
		d := dims[i]
		if d.count == 0 {
			return true // size 0: trivially contiguous
		}
		if d.count > 1 && d.stride != run {
			return false
		}
		run *= d.count
	}
	return true
}

// Commit finalizes the datatype for use in communication and returns it,
// so construction chains: dt := mpi.TypeVector(8, 2, 16).Commit().
// Using an uncommitted datatype in a typed operation is a usage error.
func (d *Datatype) Commit() *Datatype {
	d.committed = true
	return d
}

// Committed reports whether Commit has been called.
func (d *Datatype) Committed() bool { return d.committed }

// Size returns the number of elements the datatype transfers (the packed
// element count).
func (d *Datatype) Size() int { return d.size }

// Extent returns the minimum buffer length, in elements, a buffer must
// have to be used with this datatype.
func (d *Datatype) Extent() int { return d.extent }

// strided reports whether the layout needs the strided kernels; the
// typed entry points normalize non-strided datatypes to the contiguous
// datapath before the message is built.
func (d *Datatype) strided() bool { return d != nil && !d.contig }

// check validates a datatype argument against the buffer it is applied
// to, raising the usual fatal *Error on misuse.
func (d *Datatype) check(rank int, op string, buflen int) {
	if !d.committed {
		raise(rank, op, "datatype (%s) not committed: call Commit before use", d.kind)
	}
	if d.extent > buflen {
		raise(rank, op, "buffer of %d elements shorter than datatype extent %d", buflen, d.extent)
	}
}

// sameLayout reports whether two typed views select the same element
// offsets, so the same-address copy skip stays correct for typed
// transfers: identical buffer plus identical layout means the copy is a
// no-op, anything else must run the strided kernels.
func sameLayout(a, b *Datatype) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.lower != b.lower || a.blocklen != b.blocklen || len(a.dims) != len(b.dims) {
		return false
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
	}
	return true
}

// runIter walks the contiguous runs of a layout in element order: each
// next() yields the element offset of the next run of d.blocklen
// elements. The cursor is a fixed-size odometer, so iteration performs
// no allocation — typed sends stay on the zero-alloc datapath.
type runIter struct {
	d    *Datatype
	idx  [maxDtDims]int
	done bool
}

func (it *runIter) init(d *Datatype) {
	it.d = d
	it.idx = [maxDtDims]int{}
	it.done = d == nil || d.size == 0
}

// next returns the element offset and length of the next contiguous run,
// or (0, 0) when the layout is exhausted.
func (it *runIter) next() (off, n int) {
	if it.done {
		return 0, 0
	}
	d := it.d
	off = d.lower
	for i := range d.dims {
		off += it.idx[i] * d.dims[i].stride
	}
	n = d.blocklen
	for i := len(d.dims) - 1; i >= 0; i-- {
		it.idx[i]++
		if it.idx[i] < d.dims[i].count {
			return off, n
		}
		it.idx[i] = 0
	}
	it.done = true
	return off, n
}

// dtPack gathers the elements d selects in src (a byte view of the
// element buffer, esz bytes per element) into dst, densely packed.
func dtPack(dst, src []byte, d *Datatype, esz int) {
	var it runIter
	it.init(d)
	w := 0
	for {
		off, n := it.next()
		if n == 0 {
			return
		}
		copy(dst[w:w+n*esz], src[off*esz:(off+n)*esz])
		w += n * esz
	}
}

// dtUnpack scatters the densely packed src into the elements d selects
// in dst.
func dtUnpack(dst, src []byte, d *Datatype, esz int) {
	var it runIter
	it.init(d)
	r := 0
	for {
		off, n := it.next()
		if n == 0 {
			return
		}
		copy(dst[off*esz:(off+n)*esz], src[r:r+n*esz])
		r += n * esz
	}
}

// dtPackRange packs the packed-element index range [lo, hi) of layout d
// from src into dst — the wire path's pipelined chunking, which never
// materializes the full packed payload.
func dtPackRange(dst, src []byte, d *Datatype, esz, lo, hi int) {
	var it runIter
	it.init(d)
	pos, w := 0, 0
	for pos < hi {
		off, n := it.next()
		if n == 0 {
			return
		}
		runLo, runHi := pos, pos+n
		pos = runHi
		if runHi <= lo {
			continue
		}
		s, e := max(lo, runLo), min(hi, runHi)
		if e <= s {
			continue
		}
		copy(dst[w:w+(e-s)*esz], src[(off+s-runLo)*esz:(off+e-runLo)*esz])
		w += (e - s) * esz
	}
}

// dtUnpackRange is dtPackRange's inverse: src holds the packed elements
// [lo, hi) of layout d, scattered into dst.
func dtUnpackRange(dst, src []byte, d *Datatype, esz, lo, hi int) {
	var it runIter
	it.init(d)
	pos, r := 0, 0
	for pos < hi {
		off, n := it.next()
		if n == 0 {
			return
		}
		runLo, runHi := pos, pos+n
		pos = runHi
		if runHi <= lo {
			continue
		}
		s, e := max(lo, runLo), min(hi, runHi)
		if e <= s {
			continue
		}
		copy(dst[(off+s-runLo)*esz:(off+e-runLo)*esz], src[r:r+(e-s)*esz])
		r += (e - s) * esz
	}
}

// dtCopy moves sdt's selection of src straight into ddt's selection of
// dst, splitting mismatched run lengths — the pack-elision kernel: one
// pass over the data, no intermediate. Both layouts must select the
// same number of elements (the caller validates).
func dtCopy(dst []byte, ddt *Datatype, src []byte, sdt *Datatype, esz int) {
	if sdt == nil || !sdt.strided() {
		lo := 0
		if sdt != nil {
			lo = sdt.lower
		}
		// Bounded by the source's element count, not the destination
		// layout's: a message may legally carry fewer elements than the
		// receive type selects (Status.Count reports how many arrived).
		packed := src[lo*esz:]
		dtUnpackRange(dst, packed, ddt, esz, 0, len(packed)/esz)
		return
	}
	if ddt == nil || !ddt.strided() {
		lo := 0
		if ddt != nil {
			lo = ddt.lower
		}
		dtPack(dst[lo*esz:], src, sdt, esz)
		return
	}
	var si, di runIter
	si.init(sdt)
	di.init(ddt)
	sOff, sLen := si.next()
	dOff, dLen := di.next()
	for sLen > 0 && dLen > 0 {
		n := min(sLen, dLen)
		copy(dst[dOff*esz:(dOff+n)*esz], src[sOff*esz:(sOff+n)*esz])
		sOff, sLen = sOff+n, sLen-n
		dOff, dLen = dOff+n, dLen-n
		if sLen == 0 {
			sOff, sLen = si.next()
		}
		if dLen == 0 {
			dOff, dLen = di.next()
		}
	}
}

// TypedHooks is an optional extension of Hooks: implementations that
// also satisfy it are told each time a typed transfer skipped the
// intermediate packed buffer and moved strided-to-strided between the
// task buffers (pack elision). Resolved once at world creation, like
// MessageHooks; internal/metrics exports it as mpi_pack_elisions_total.
type TypedHooks interface {
	Hooks
	// OnPackElided is called on the delivery path with the receiving
	// world rank and the payload size whose packing was elided.
	OnPackElided(worldDst, bytes int)
}

// notePackElided records one pack elision: a typed payload moved between
// the task buffers without an intermediate packed copy.
func (w *World) notePackElided(worldDst, bytes int) {
	w.stats.packElisions.Add(1)
	if w.typedHooks != nil {
		w.typedHooks.OnPackElided(worldDst, bytes)
	}
}

// TypedCopy copies sdt's selection of src into ddt's selection of dst
// within one address space — the building block layers above the
// runtime (internal/rma's typed Put/Get) use to move strided data
// through a shared window. A nil datatype means the whole slice. The
// selections must transfer the same element count; the copy runs
// strided-to-strided with no intermediate and is counted as a pack
// elision when either side is strided. Returns the elements copied.
func TypedCopy[T Scalar](t *Task, dst []T, ddt *Datatype, src []T, sdt *Datatype, op string) int {
	sElems := len(src)
	if sdt != nil {
		sdt.check(t.rank, op, len(src))
		sElems = sdt.Size()
	}
	dElems := len(dst)
	if ddt != nil {
		ddt.check(t.rank, op, len(dst))
		dElems = ddt.Size()
	}
	if sElems != dElems {
		raise(t.rank, op, "datatype element counts differ: source %d, destination %d", sElems, dElems)
	}
	if sElems == 0 {
		return 0
	}
	esz := elemSize[T]()
	sb, db := bytesOf(src), bytesOf(dst)
	switch {
	case !sdt.strided() && !ddt.strided():
		sLo, dLo := 0, 0
		if sdt != nil {
			sLo = sdt.lower
		}
		if ddt != nil {
			dLo = ddt.lower
		}
		copy(db[dLo*esz:(dLo+dElems)*esz], sb[sLo*esz:(sLo+sElems)*esz])
	default:
		dtCopy(db, ddt, sb, sdt, esz)
		t.world.notePackElided(t.rank, sElems*esz)
	}
	return sElems
}

// TypedApply folds sdt's selection of src into ddt's selection of dst
// with the reduce operator — internal/rma's typed Accumulate kernel.
// Same contract as TypedCopy (equal element counts, nil = whole slice),
// applied run-by-run with no intermediate, so a strided accumulate is a
// pack elision too. Returns the elements folded.
func TypedApply[T Scalar](t *Task, dst []T, ddt *Datatype, src []T, sdt *Datatype, op Op, opName string) int {
	sElems := len(src)
	if sdt != nil {
		sdt.check(t.rank, opName, len(src))
		sElems = sdt.Size()
	}
	dElems := len(dst)
	if ddt != nil {
		ddt.check(t.rank, opName, len(dst))
		dElems = ddt.Size()
	}
	if sElems != dElems {
		raise(t.rank, opName, "datatype element counts differ: source %d, destination %d", sElems, dElems)
	}
	if sElems == 0 {
		return 0
	}
	if !sdt.strided() && !ddt.strided() {
		sLo, dLo := 0, 0
		if sdt != nil {
			sLo = sdt.lower
		}
		if ddt != nil {
			dLo = ddt.lower
		}
		ApplyOp(op, dst[dLo:dLo+dElems], src[sLo:sLo+sElems])
		return sElems
	}
	// Dual-iterator run split, like dtCopy but folding instead of moving.
	sOff, sLen := 0, sElems
	dOff, dLen := 0, dElems
	var si, di runIter
	if sdt.strided() {
		si.init(sdt)
		sOff, sLen = si.next()
	} else if sdt != nil {
		sOff = sdt.lower
	}
	if ddt.strided() {
		di.init(ddt)
		dOff, dLen = di.next()
	} else if ddt != nil {
		dOff = ddt.lower
	}
	for sLen > 0 && dLen > 0 {
		n := min(sLen, dLen)
		ApplyOp(op, dst[dOff:dOff+n], src[sOff:sOff+n])
		sOff, sLen = sOff+n, sLen-n
		dOff, dLen = dOff+n, dLen-n
		if sLen == 0 && sdt.strided() {
			sOff, sLen = si.next()
		}
		if dLen == 0 && ddt.strided() {
			dOff, dLen = di.next()
		}
	}
	t.world.notePackElided(t.rank, sElems*elemSize[T]())
	return sElems
}
