package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPingPongZeroAllocs is the datapath's acceptance check: a
// steady-state eager ping-pong performs zero allocations per operation —
// messages, requests and eager payloads all come from pools, matching is
// bucket lookups, and the blocking waits park on pooled notifiers. World
// setup allocates, but amortized over the benchmark's N it must round to
// zero allocs/op.
func TestPingPongZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven test")
	}
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop puts; zero allocs cannot hold")
	}
	res := testing.Benchmark(func(b *testing.B) {
		w, err := NewWorld(Config{NumTasks: 2})
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(task *Task) error {
			buf := make([]float64, 64) // 512 B: eager
			for i := 0; i < b.N; i++ {
				if task.Rank() == 0 {
					Send(task, nil, buf, 1, 0)
					Recv(task, nil, buf, 1, 1)
				} else {
					Recv(task, nil, buf, 0, 0)
					Send(task, nil, buf, 0, 1)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("eager ping-pong allocs/op = %d, want 0 (N=%d)", a, res.N)
	}
}

// TestPoolClassBoundaries pins the size-class selection at the exact
// class edges: a payload of exactly a class's capacity belongs to that
// class (not the next), and only payloads beyond the largest class —
// beyond the eager limit — fall off the pooled path. A regression here
// silently double-sizes every boundary-sized packed message.
func TestPoolClassBoundaries(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{0, 0}, {1, 0}, {63, 0}, {64, 0},
		{65, 1}, {128, 1}, {129, 2},
		{4095, 6}, {4096, 6}, {4097, 7},
	} {
		if got := poolClassFor(tc.n); got != tc.class {
			t.Errorf("poolClassFor(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}

	p := newBufPool(2, DefaultEagerLimit)
	if p.maxSize != DefaultEagerLimit {
		t.Fatalf("maxSize = %d, want %d", p.maxSize, DefaultEagerLimit)
	}

	// A payload of exactly the eager limit must stay pooled: released, it
	// re-enters its home rank's cache and the next get returns the very
	// same buffer.
	b := p.get(0, DefaultEagerLimit)
	if b.class < 0 || len(b.data) != DefaultEagerLimit {
		t.Fatalf("limit-sized get: class %d cap %d, want pooled at %d", b.class, len(b.data), DefaultEagerLimit)
	}
	p.release(0, b)
	if got := p.recycled.Load(); got != int64(DefaultEagerLimit) {
		t.Errorf("recycled = %d after one pooled release, want %d", got, DefaultEagerLimit)
	}
	if again := p.get(0, DefaultEagerLimit); again != b {
		t.Error("limit-sized buffer did not come back from the rank cache")
	} else {
		p.release(0, again)
	}

	// One byte past the limit is oversize: unpooled, and its release must
	// not count as recycled capacity (the GC reclaims it).
	before := p.recycled.Load()
	ob := p.get(0, DefaultEagerLimit+1)
	if ob.class != -1 {
		t.Fatalf("oversize get: class %d, want -1", ob.class)
	}
	p.release(0, ob)
	if got := p.recycled.Load(); got != before {
		t.Errorf("recycled moved by %d on an oversize release, want 0", got-before)
	}
	if p.outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", p.outstanding())
	}
}

// TestPoolCapOverflowNotRecycled: a release that finds both its rank
// cache and the shared class full drops the buffer to the GC — counted
// as a put (outstanding stays exact) but not as recycled capacity.
func TestPoolCapOverflowNotRecycled(t *testing.T) {
	p := newBufPool(1, DefaultEagerLimit)
	const n = 64
	bufs := make([]*eagerBuf, 0, poolRankCap+poolSharedCap+5)
	for i := 0; i < cap(bufs); i++ {
		bufs = append(bufs, p.get(0, n))
	}
	for _, b := range bufs {
		p.release(0, b)
	}
	wantRecycled := int64((poolRankCap + poolSharedCap) * n)
	if got := p.recycled.Load(); got != wantRecycled {
		t.Errorf("recycled = %d, want %d (rank cap %d + shared cap %d, overflow dropped)",
			got, wantRecycled, poolRankCap, poolSharedCap)
	}
	if got := p.puts.Load(); got != int64(len(bufs)) {
		t.Errorf("puts = %d, want %d (every release counted)", got, len(bufs))
	}
	if p.outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", p.outstanding())
	}
}

// TestTypedSendZeroAllocs: the packed typed datapath (datapath 1: pack
// into a pooled eager buffer) and the elided datapath (datapath 2:
// posted receive, strided-to-strided) both run allocation-free in the
// steady state — the acceptance gate for the derived-datatype layer.
func TestTypedSendZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven test")
	}
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop puts; zero allocs cannot hold")
	}
	res := testing.Benchmark(func(b *testing.B) {
		w, err := NewWorld(Config{NumTasks: 2})
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(task *Task) error {
			dt := TypeVector(64, 4, 8).Commit() // 256 elems packed: 2 KiB, eager
			buf := make([]float64, dt.Extent())
			for i := 0; i < b.N; i++ {
				if task.Rank() == 0 {
					SendTyped(task, nil, buf, dt, 1, 0)
					RecvTyped(task, nil, buf, dt, 1, 1)
				} else {
					RecvTyped(task, nil, buf, dt, 0, 0)
					SendTyped(task, nil, buf, dt, 0, 1)
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("typed ping-pong allocs/op = %d, want 0 (N=%d)", a, res.N)
	}
}

// TestEagerPoolRecycling: unexpected eager traffic is served from the
// pool after warm-up, recycled-byte accounting moves, and no buffer stays
// outstanding once the world is done.
func TestEagerPoolRecycling(t *testing.T) {
	const rounds = 50
	w := run(t, 2, func(task *Task) error {
		buf := make([]int32, 100) // 400 B -> 512 B class
		for i := 0; i < rounds; i++ {
			if task.Rank() == 0 {
				Send(task, nil, buf, 1, 0)
				var ack [1]int32
				Recv(task, nil, ack[:], 1, 1)
			} else {
				// Probe blocks until the message is queued unexpected, so
				// every round exercises the pooled-payload path (a posted
				// receive would take the poolless direct-delivery path).
				Probe(task, nil, 0, 0)
				Recv(task, nil, buf, 0, 0)
				Send(task, nil, buf[:1], 0, 1)
			}
		}
		return nil
	})
	s := w.Stats()
	if s.EagerPoolOutstanding != 0 {
		t.Errorf("EagerPoolOutstanding = %d after Run, want 0", s.EagerPoolOutstanding)
	}
	gets := s.EagerPoolHits + s.EagerPoolMisses
	if gets == 0 {
		t.Fatal("no pool traffic for unexpected eager messages")
	}
	if s.EagerPoolHits == 0 {
		t.Errorf("EagerPoolHits = 0 over %d rounds: pool never recycled (misses %d)", rounds, s.EagerPoolMisses)
	}
	if s.EagerPoolRecycledBytes == 0 {
		t.Error("EagerPoolRecycledBytes = 0, want > 0")
	}
	// Ping-pong keeps at most a handful of buffers in flight; misses
	// beyond the cache capacity would mean recycling is broken.
	if s.EagerPoolMisses > poolRankCap+poolSharedCap {
		t.Errorf("EagerPoolMisses = %d, want bounded by cache warm-up", s.EagerPoolMisses)
	}
}

// TestDirectDeliverySingleCopy: a send that finds its receive already
// posted copies sender buffer -> receiver buffer directly — counted as a
// direct delivery, with no pool traffic at all.
func TestDirectDeliverySingleCopy(t *testing.T) {
	w := run(t, 2, func(task *Task) error {
		buf := make([]float64, 32)
		if task.Rank() == 1 {
			req := Irecv(task, nil, buf, 0, 0)
			Barrier(task, nil)
			st := req.Wait()
			if st.Count != 32 {
				return fmt.Errorf("status = %+v", st)
			}
			return nil
		}
		for i := range buf {
			buf[i] = float64(i)
		}
		Barrier(task, nil)
		Send(task, nil, buf, 1, 0)
		return nil
	})
	s := w.Stats()
	if s.DirectDeliveries != 1 {
		t.Errorf("DirectDeliveries = %d, want 1", s.DirectDeliveries)
	}
	if gets := s.EagerPoolHits + s.EagerPoolMisses; gets != 0 {
		t.Errorf("pool gets = %d for a posted-receive delivery, want 0 (single copy)", gets)
	}
}

// TestPeakUnexpectedBytesPooled: the unexpected-queue watermark counts
// message payload bytes, not the power-of-two capacity of the pooled
// buffers behind them (5 B rides in a 64 B class buffer).
func TestPeakUnexpectedBytesPooled(t *testing.T) {
	const msgs = 10
	w := run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			payload := []byte{1, 2, 3, 4, 5}
			for i := 0; i < msgs; i++ {
				Send(task, nil, payload, 1, i)
			}
			Send(task, nil, []byte{}, 1, 99) // zero-byte gate, after all payloads
		} else {
			// The gate is zero bytes, so it moves the watermark by nothing
			// whether it queues or matches; it is sent after every payload,
			// so once it is received all ten payloads are queued.
			Recv(task, nil, []byte{}, 0, 99)
			if got := task.world.Stats().PeakUnexpectedBytes; got != 5*msgs {
				return fmt.Errorf("PeakUnexpectedBytes = %d with %d queued, want %d (payload, not pooled capacity)",
					got, msgs, 5*msgs)
			}
			buf := make([]byte, 5)
			for i := 0; i < msgs; i++ {
				Recv(task, nil, buf, 0, i)
			}
		}
		return nil
	})
	if got := w.Stats().PeakUnexpectedBytes; got != 5*msgs {
		t.Errorf("final PeakUnexpectedBytes = %d, want %d", got, 5*msgs)
	}
}

// dupDropHooks injects a deterministic duplicate/drop schedule per
// sending rank: of every five messages a rank sends, the second is
// dropped and the fourth duplicated. Counters are per-source, so the
// schedule is independent of cross-rank interleaving.
type dupDropHooks struct {
	mu  sync.Mutex
	n   map[int]int
	dup bool // also duplicate (drop-only when false)
}

func (h *dupDropHooks) OnSend(worldSrc, worldDst int) any { return nil }
func (h *dupDropHooks) OnDeliver(worldDst int, meta any)  {}

func (h *dupDropHooks) FaultP2P(worldSrc, worldDst, bytes int, rendezvous bool) FaultAction {
	h.mu.Lock()
	i := h.n[worldSrc]
	h.n[worldSrc]++
	h.mu.Unlock()
	return FaultAction{
		Drop:      i%5 == 1,
		Duplicate: h.dup && i%5 == 3,
	}
}

// dupDropSurvives reports whether message i of a sender's schedule is
// delivered (not dropped).
func dupDropSurvives(i int) bool { return i%5 != 1 }

// TestChaosDupDropPoolStress runs duplicated and dropped eager messages
// over the pooled datapath under load: payloads must arrive uncorrupted
// (no use-after-recycle — a recycled buffer would be overwritten by a
// later send) and every pooled buffer must be released once Run returns,
// including the never-received duplicate copies drained at teardown.
// Run under -race by the CI chaos job.
func TestChaosDupDropPoolStress(t *testing.T) {
	const senders = 7
	const msgsPerSender = 60
	hooks := &dupDropHooks{n: make(map[int]int), dup: true}
	w, err := Run(Config{NumTasks: senders + 1, Timeout: 30 * time.Second, Hooks: hooks},
		func(task *Task) error {
			if task.Rank() > 0 {
				src := task.Rank()
				for i := 0; i < msgsPerSender; i++ {
					elems := 1 + (i*37)%512 // sweep several size classes
					buf := make([]int32, elems)
					for j := range buf {
						buf[j] = int32(src*100000 + i)
					}
					Send(task, nil, buf, 0, i)
				}
				return nil
			}
			// Rank 0 receives every surviving message, in per-sender order
			// (tags are unique per sender, so cross-sender order is free).
			for src := 1; src <= senders; src++ {
				for i := 0; i < msgsPerSender; i++ {
					if !dupDropSurvives(i) {
						continue
					}
					elems := 1 + (i*37)%512
					buf := make([]int32, elems)
					st := Recv(task, nil, buf, src, i)
					if st.Count != elems {
						return fmt.Errorf("src %d msg %d: count %d, want %d", src, i, st.Count, elems)
					}
					for j, v := range buf {
						if v != int32(src*100000+i) {
							return fmt.Errorf("src %d msg %d elem %d: corrupt payload %d (use-after-recycle?)",
								src, i, j, v)
						}
					}
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.EagerPoolOutstanding != 0 {
		t.Errorf("EagerPoolOutstanding = %d after Run, want 0 (leaked pool buffers)", s.EagerPoolOutstanding)
	}
}

// TestChaosDropRendezvousPooling: dropped rendezvous messages must not
// leak pool buffers either (their payload never enters the pool), and
// the drop-only schedule leaves the pool balanced.
func TestChaosDropRendezvousPooling(t *testing.T) {
	hooks := &dupDropHooks{n: make(map[int]int)} // drop only
	const msgs = 15
	big := DefaultEagerLimit/8 + 64 // rendezvous-sized float64 count
	w, err := Run(Config{NumTasks: 2, Timeout: 30 * time.Second, Hooks: hooks},
		func(task *Task) error {
			if task.Rank() == 0 {
				buf := make([]float64, big)
				for i := 0; i < msgs; i++ {
					Send(task, nil, buf, 1, i) // drops complete the handshake
				}
				return nil
			}
			buf := make([]float64, big)
			for i := 0; i < msgs; i++ {
				if !dupDropSurvives(i) {
					continue
				}
				Recv(task, nil, buf, 0, i)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Stats(); s.EagerPoolOutstanding != 0 {
		t.Errorf("EagerPoolOutstanding = %d after Run, want 0", s.EagerPoolOutstanding)
	}
}

// TestConcurrentProbeRecv: with per-bucket conditions, a Probe blocked on
// one source must still wake for its own traffic while concurrent
// receives consume other buckets. Two goroutines of one task probe and
// receive concurrently, repeatedly.
func TestConcurrentProbeRecv(t *testing.T) {
	const rounds = 100
	run(t, 3, func(task *Task) error {
		switch task.Rank() {
		case 1, 2:
			buf := []int{task.Rank()}
			for i := 0; i < rounds; i++ {
				Send(task, nil, buf, 0, i)
				var ack [1]int
				Recv(task, nil, ack[:], 0, i)
			}
			return nil
		}
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		for _, src := range []int{1, 2} {
			wg.Add(1)
			go func(src int) {
				defer wg.Done()
				buf := make([]int, 1)
				for i := 0; i < rounds; i++ {
					// Blocking Probe parks on the (ctx, src) bucket; the
					// matching arrival must wake it even while the other
					// goroutine's traffic hits a different bucket.
					st := Probe(task, nil, src, i)
					if st.Source != src || st.Count != 1 {
						errs <- fmt.Errorf("probe src %d round %d: %+v", src, i, st)
						return
					}
					Recv(task, nil, buf, src, i)
					if buf[0] != src {
						errs <- fmt.Errorf("recv src %d round %d: payload %d", src, i, buf[0])
						return
					}
					Send(task, nil, buf[:1], src, i)
				}
			}(src)
		}
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	})
}

// TestWildcardSpecificPostOrder: an AnySource receive posted before a
// specific-source receive matches first — the bucketed engine must merge
// the wildcard queue and the (ctx, src) bucket by post sequence, the MPI
// matching rule.
func TestWildcardSpecificPostOrder(t *testing.T) {
	run(t, 2, func(task *Task) error {
		if task.Rank() == 1 {
			bufWild := make([]int, 1)
			bufSpec := make([]int, 1)
			rWild := Irecv(task, nil, bufWild, AnySource, 0)
			rSpec := Irecv(task, nil, bufSpec, 0, 0)
			Barrier(task, nil)
			rWild.Wait()
			rSpec.Wait()
			if bufWild[0] != 10 || bufSpec[0] != 20 {
				return fmt.Errorf("wildcard got %d, specific got %d; want 10, 20 (post order)",
					bufWild[0], bufSpec[0])
			}
			return nil
		}
		Barrier(task, nil)
		Send(task, nil, []int{10}, 1, 0)
		Send(task, nil, []int{20}, 1, 0)
		return nil
	})
}

// TestNonOvertakingMixedWildcards: messages of one (source, comm, tag)
// stream stay in order even when the receiver alternates specific-source
// and AnySource receives — the cross-queue sequence merge again.
func TestNonOvertakingMixedWildcards(t *testing.T) {
	const k = 60
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			for i := 0; i < k; i++ {
				Send(task, nil, []int{i}, 1, 0)
			}
			return nil
		}
		buf := make([]int, 1)
		for i := 0; i < k; i++ {
			var st Status
			switch i % 3 {
			case 0:
				st = Recv(task, nil, buf, 0, 0)
			case 1:
				st = Recv(task, nil, buf, AnySource, 0)
			default:
				st = Recv(task, nil, buf, AnySource, AnyTag)
			}
			if buf[0] != i {
				return fmt.Errorf("message %d arrived at position %d (status %+v)", buf[0], i, st)
			}
		}
		return nil
	})
}

// TestMatchProbesBounded: exact-match traffic costs O(1) probes per
// message. A ping-pong's probe count must stay within a small constant
// of its message count — the linear scans this replaced grew with every
// pending operation on the endpoint.
func TestMatchProbesBounded(t *testing.T) {
	const rounds = 200
	w := run(t, 2, func(task *Task) error {
		buf := []int{0}
		for i := 0; i < rounds; i++ {
			if task.Rank() == 0 {
				Send(task, nil, buf, 1, 0)
				Recv(task, nil, buf, 1, 0)
			} else {
				Recv(task, nil, buf, 0, 0)
				Send(task, nil, buf, 0, 0)
			}
		}
		return nil
	})
	s := w.Stats()
	if s.Messages == 0 {
		t.Fatal("no messages")
	}
	if perMsg := float64(s.MatchProbes) / float64(s.Messages); perMsg > 2 {
		t.Errorf("match probes per message = %.2f (%d/%d), want <= 2",
			perMsg, s.MatchProbes, s.Messages)
	}
}
