package mpi

import "time"

// The deadlock watchdog runs entirely off the critical path: it samples
// the per-rank blocking descriptors (blockReport's data) and a progress
// counter that every blocking-state transition bumps. If every unfinished
// rank stays blocked with the world-wide progress sum unchanged across
// consecutive scans, the run can never move again — a true cycle (A
// recvs from B, B recvs from A), a stall on a dead peer the failure
// layer could not attribute, or a collective some rank will never enter.
// The watchdog then raises a DeadlockError carrying every rank's state
// plus the extra reports (HLS directive counters) and cancels the world,
// so the blocked ranks unwind with typed errors instead of hanging until
// the global timeout.
//
// Detection needs two consecutive stable scans, so transient states (a
// rank between unblocking and its next operation bumps the progress sum)
// never trigger it. A rank busy in user code shows blockedOn == "" and
// suppresses detection: only runtime-blocked stalls count.

// watchdog scans every interval until done closes or a deadlock fires.
func (w *World) watchdog(interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var prevSum int64 = -1
	stable := 0
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		if w.Cancelled() != nil {
			return
		}
		states := w.taskStates()
		allBlocked := true
		var sum int64
		live := 0
		for _, ts := range states {
			sum += ts.Progress
			if ts.Finished || ts.Dead {
				continue
			}
			live++
			if ts.BlockedOn == "" {
				allBlocked = false
			}
		}
		if live == 0 {
			return
		}
		if allBlocked && sum == prevSum {
			stable++
		} else {
			stable = 0
		}
		prevSum = sum
		if stable >= 2 {
			w.cancel(&DeadlockError{Tasks: states, Extra: w.blockReports()})
			return
		}
	}
}
