// Package mpi is a thread-based MPI-1.3-style runtime: the stand-in for
// MPC in the HLS paper (Tchiboukdjian, Carribault, Pérache, IPDPS 2012).
//
// MPI tasks are goroutines that share one address space per process, the
// property MPC obtains by running MPI tasks inside user-level threads and
// the property the HLS mechanism builds on. The runtime provides:
//
//   - point-to-point communication with tag/source matching, including
//     AnySource and AnyTag, non-overtaking delivery, an eager protocol for
//     small messages and a rendezvous (synchronizing) protocol for large
//     ones;
//   - nonblocking operations (Isend/Irecv) with Request/Wait/Test;
//   - communicators with separate communication contexts, Dup and Split;
//   - collective operations (Barrier, Bcast, Reduce, Allreduce, Gather,
//     Gatherv, Scatter, Scatterv, Allgather, Alltoall, Scan) implemented
//     with binomial-tree and dissemination algorithms over the
//     point-to-point layer;
//   - hooks to piggyback metadata on messages, used by the happens-before
//     tracker (internal/hb) for the paper's §III eligibility analysis;
//   - intra-node copy elision when the send and receive buffers are the
//     same memory, the effect that speeds up Tachyon's rank-0 node once
//     the image is an HLS variable (§V-B3).
//
// Error handling follows MPI_ERRORS_ARE_FATAL: misuse (invalid rank,
// datatype mismatch, truncation) panics with *Error. Run recovers panics
// in task goroutines and returns them as ordinary errors, so tests can
// assert on them.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hls/internal/topology"
)

// AnySource and AnyTag are the wildcard values for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultEagerLimit is the message size (in bytes) up to which sends are
// buffered (eager protocol). Larger messages use rendezvous: the sender
// blocks until the receiver has matched and copied, creating a
// synchronization edge like MPI_Ssend.
const DefaultEagerLimit = 4096

// Error is the panic payload for fatal MPI usage errors.
type Error struct {
	Rank int    // world rank that raised the error, -1 if unknown
	Op   string // operation name, e.g. "Send"
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s: %s", e.Rank, e.Op, e.Msg)
}

func raise(rank int, op, format string, args ...any) {
	panic(&Error{Rank: rank, Op: op, Msg: fmt.Sprintf(format, args...)})
}

// Hooks receive control at message send and delivery time. Implementations
// must be safe for concurrent use. The hb package uses them to maintain
// vector clocks; the zero value of Config installs no hooks.
type Hooks interface {
	// OnSend is called by the sending task before the message becomes
	// visible to the receiver. Its return value travels with the message.
	OnSend(worldSrc, worldDst int) any
	// OnDeliver is called by the receiving task after the message payload
	// has been copied into the receive buffer, with OnSend's value.
	OnDeliver(worldDst int, meta any)
}

// MessageHooks is an optional extension of Hooks: implementations that
// also satisfy it receive the runtime events beyond the metadata
// piggyback — per-message sizes and protocol choices, elided intra-node
// copies, collective starts. The runtime detects the extension once at
// world creation, so the per-message cost when it is absent is a single
// nil check. internal/metrics' MPI adapter implements it; MultiHooks
// forwards it to every member that does.
type MessageHooks interface {
	Hooks
	// OnMessage is called by the sending task for every point-to-point
	// message (including those carrying collectives), after the
	// eager-vs-rendezvous decision.
	OnMessage(worldSrc, worldDst, bytes int, rendezvous bool)
	// OnCopyElided is called on the delivery path when the send and
	// receive buffers were the same memory and the copy was skipped
	// (MPC's intra-node optimization, §V-B3).
	OnCopyElided(worldDst, bytes int)
	// OnCollective is called by each task starting a collective
	// operation.
	OnCollective(worldRank int)
}

// FaultAction tells the runtime what the fault-injection layer decided
// for one point-to-point message. The zero value delivers normally.
type FaultAction struct {
	// Delay blocks the sending task this long before the message becomes
	// visible, modelling network latency (and, under a seeded random
	// plan, message reordering between senders).
	Delay time.Duration
	// Drop loses the message: it never reaches the receiver. A dropped
	// rendezvous send still completes on the sender side (the handshake
	// succeeded, the payload is lost), so the loss surfaces where it
	// would in a real stack — at the receiver, as a stall the deadlock
	// watchdog attributes.
	Drop bool
	// Duplicate injects the message twice (at-least-once delivery fault).
	Duplicate bool
}

// FaultHooks is an optional extension of Hooks for fault injection:
// implementations that also satisfy it are consulted once per
// point-to-point message on the send path, before the message becomes
// visible, and their FaultAction is applied. Like MessageHooks, the
// extension is resolved once at world creation, so the per-message cost
// when absent is a single nil check. internal/chaos implements it.
type FaultHooks interface {
	Hooks
	FaultP2P(worldSrc, worldDst, bytes int, rendezvous bool) FaultAction
}

// Config parametrizes a World.
type Config struct {
	// NumTasks is the number of MPI tasks (world size). Required.
	NumTasks int
	// Machine describes the hardware; defaults to a single-node machine
	// with NumTasks cores if nil.
	Machine *topology.Machine
	// Pin selects the rank→hardware-thread mapping. Default PinCorePerTask.
	Pin topology.PinPolicy
	// EagerLimit overrides DefaultEagerLimit when > 0.
	EagerLimit int
	// ForcePack disables the typed-transfer pack elision: every derived-
	// datatype payload is packed into an intermediate buffer even when
	// sender and receiver share the address space. It exists as the
	// ablation knob for the halo benchmark (packed vs zero-copy) and
	// should stay false in production use.
	ForcePack bool
	// Hooks, if non-nil, is invoked on every message.
	Hooks Hooks
	// Trace, if non-nil, receives tracing callbacks on every message and
	// collective (span ids, timestamps, blocking waits). Kept separate
	// from Hooks so the disabled path is a single nil check and tracing
	// composes with any Hooks value. See TraceHooks and internal/obs.
	Trace TraceHooks
	// Collectives selects between the shared-address-space collective
	// fast path and the channel (point-to-point) algorithms. The default
	// CollAuto engages the fast path when it is safe; see CollectiveMode.
	Collectives CollectiveMode
	// Timeout aborts Run if the program has not finished in time,
	// returning a *TimeoutError diagnostic of where every task is
	// blocked. Zero means no timeout. The timed-out world is cancelled:
	// tasks blocked in runtime operations unwind with typed errors;
	// only tasks blocked outside the runtime can leak, and Run reports
	// them.
	Timeout time.Duration
	// Watchdog enables stall detection at the given sampling interval:
	// when every unfinished task stays blocked in runtime operations
	// with no progress across consecutive scans, Run cancels the world
	// and returns a *DeadlockError naming each rank's blocking point.
	// Zero disables the watchdog. Ignored in distributed worlds (Wire
	// set), where remote ranks legitimately show no local progress.
	Watchdog time.Duration
	// Wire, if non-nil, makes the world span multiple processes: this
	// process runs only the ranks pinned to the transport's node and
	// reaches the others over the transport. See WireConfig.
	Wire *WireConfig
}

// World is one MPI program instance: a set of tasks and their
// communication endpoints.
type World struct {
	cfg        Config
	machine    *topology.Machine
	pin        *topology.Pinning
	eps        []*endpoint
	world      *Comm
	ctxCounter atomic.Int64
	commID     atomic.Int64

	// msgHooks / faultHooks / poolHooks are cfg.Hooks when it also
	// implements the MessageHooks / FaultHooks / PoolHooks extensions,
	// resolved once so hot paths pay one nil check, not an interface
	// assertion per message.
	msgHooks   MessageHooks
	faultHooks FaultHooks
	poolHooks  PoolHooks
	typedHooks TypedHooks
	// traceHooks is cfg.Trace, copied next to the other resolved hooks
	// so the datapath reads one field.
	traceHooks TraceHooks

	// pool recycles eager payload buffers across sends (see pool.go).
	pool *bufPool

	// net is the inter-node layer of a distributed world (see wire.go),
	// nil for the ordinary single-process case.
	net *netLayer

	// shmOn selects the shared-address-space collective fast path,
	// resolved once from cfg.Collectives and the installed hooks (see
	// CollectiveMode); shmHooks is cfg.Hooks when it opted in through
	// SharedCollHooks.
	shmOn    bool
	shmHooks SharedCollHooks

	// twoLevel selects the hierarchy-aware two-level collective
	// decomposition of a distributed world (see twolevel.go); tlHooks is
	// cfg.Hooks when it also implements TwoLevelCollHooks.
	twoLevel bool
	tlHooks  TwoLevelCollHooks

	fail     failureState
	rankErrs []error // per-rank outcome of Run (nil entries = success)

	stats worldStats
}

// Machine returns the hardware model the world runs on.
func (w *World) Machine() *topology.Machine { return w.machine }

// Hooks returns the hooks the world was configured with (nil if none), so
// layers built on the runtime (internal/rma) can publish their own
// happens-before edges through the same tracker the messages use.
func (w *World) Hooks() Hooks { return w.cfg.Hooks }

// EagerLimit returns the world's eager/rendezvous threshold in bytes.
func (w *World) EagerLimit() int { return w.cfg.EagerLimit }

// Pinning returns the rank→hardware-thread assignment.
func (w *World) Pinning() *topology.Pinning { return w.pin }

// Size returns the number of tasks.
func (w *World) Size() int { return w.cfg.NumTasks }

// LocalRanks returns the world ranks hosted by this process — all of
// them for a single-process world, this wire node's block for a
// distributed one.
func (w *World) LocalRanks() []int { return w.localRanks() }

// RankLocal reports whether world rank r runs in this process (always
// true for in-range ranks of a single-process world).
func (w *World) RankLocal(r int) bool {
	if r < 0 || r >= w.cfg.NumTasks {
		return false
	}
	if w.net == nil {
		return true
	}
	return w.net.localRank(r)
}

// ProcessOf returns the index of the process hosting world rank r: the
// wire-transport node for distributed worlds, 0 for single-process
// worlds. Out-of-range ranks map to 0.
func (w *World) ProcessOf(r int) int {
	if w.net == nil || r < 0 || r >= len(w.net.nodeOf) {
		return 0
	}
	return w.net.nodeOf[r]
}

// Task is the per-rank handle passed to the program function. All
// communication goes through a Task; a Task must only be used by the
// goroutine it was given to.
type Task struct {
	world *World
	rank  int // world rank

	commState map[int64]*commTaskState // per-communicator collective counters
	seq       atomic.Int64             // program-order event counter (for hb)
}

// Rank returns the task's rank in the world communicator.
func (t *Task) Rank() int { return t.rank }

// Size returns the world size.
func (t *Task) Size() int { return t.world.cfg.NumTasks }

// World returns the world the task belongs to.
func (t *Task) World() *World { return t.world }

// Comm returns the world communicator.
func (t *Task) Comm() *Comm { return t.world.world }

// Thread returns the hardware thread the task is pinned to.
func (t *Task) Thread() int { return t.world.pin.Thread(t.rank) }

// Place returns the task's position in the machine hierarchy.
func (t *Task) Place() topology.Place {
	return t.world.machine.PlaceOf(t.Thread())
}

// NewWorld validates cfg and builds a World without starting tasks. Most
// callers use Run; NewWorld is exposed for harnesses that need the world
// (e.g. for statistics) after the program ends.
func NewWorld(cfg Config) (*World, error) {
	if cfg.NumTasks < 1 {
		return nil, fmt.Errorf("mpi: NumTasks = %d, want >= 1", cfg.NumTasks)
	}
	m := cfg.Machine
	if m == nil {
		var err error
		m, err = topology.New(topology.Spec{
			Name:           "default",
			Nodes:          1,
			SocketsPerNode: 1,
			CoresPerSocket: cfg.NumTasks,
			ThreadsPerCore: 1,
		})
		if err != nil {
			return nil, err
		}
	}
	pin, err := topology.Pin(m, cfg.NumTasks, cfg.Pin)
	if err != nil {
		return nil, err
	}
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = DefaultEagerLimit
	}
	w := &World{cfg: cfg, machine: m, pin: pin}
	w.traceHooks = cfg.Trace
	if mh, ok := cfg.Hooks.(MessageHooks); ok {
		w.msgHooks = mh
	}
	if fh, ok := cfg.Hooks.(FaultHooks); ok {
		w.faultHooks = fh
	}
	if ph, ok := cfg.Hooks.(PoolHooks); ok {
		w.poolHooks = ph
	}
	if th, ok := cfg.Hooks.(TypedHooks); ok {
		w.typedHooks = th
	}
	w.pool = newBufPool(cfg.NumTasks, cfg.EagerLimit)
	w.pool.hooks = w.poolHooks
	if sh, ok := cfg.Hooks.(SharedCollHooks); ok && sh.SharedCollectivesOK() {
		w.shmHooks = sh
	}
	if th, ok := cfg.Hooks.(TwoLevelCollHooks); ok {
		w.tlHooks = th
	}
	switch cfg.Collectives {
	case CollChannels:
		w.shmOn = false
	case CollShared, CollTwoLevel:
		// In a single process every rank is node-local, so the two-level
		// decomposition degenerates to the fast path itself.
		w.shmOn = true
	default:
		// Auto: the fast path completes collectives without per-step
		// messages, so it must not engage when fault injection wants to
		// perturb those messages or when hooks that watch them have not
		// opted in.
		w.shmOn = w.faultHooks == nil && (cfg.Hooks == nil || w.shmHooks != nil)
	}
	if cfg.Wire != nil {
		// The shared-address-space fast path needs every rank of a
		// collective in one process. A distributed world instead uses the
		// two-level decomposition: the node-local phase rides the fast
		// path over a per-node sub-communicator and only node leaders
		// cross the wire (twolevel.go). CollChannels keeps the flat
		// channel algorithms; CollAuto applies the same hook-safety rule
		// the fast path uses, because the node-local phase elides the
		// per-step messages those hooks would otherwise observe.
		w.shmOn = false
		switch cfg.Collectives {
		case CollTwoLevel:
			w.twoLevel = true
		case CollAuto:
			w.twoLevel = w.faultHooks == nil && (cfg.Hooks == nil || w.shmHooks != nil)
		}
	}
	w.initFailure()
	if w.shmOn || w.twoLevel {
		w.OnFailure(w.abortShmColls)
	}
	w.eps = make([]*endpoint, cfg.NumTasks)
	for i := range w.eps {
		w.eps[i] = newEndpoint(i)
	}
	if cfg.Wire != nil {
		if err := w.initWire(cfg.Wire); err != nil {
			return nil, err
		}
	}
	group := make([]int, cfg.NumTasks)
	for i := range group {
		group[i] = i
	}
	w.world = w.newComm(group)
	if w.net != nil {
		// Bind last: frames may start arriving the moment the sink is
		// installed, and they need the endpoints and world communicator.
		w.net.tr.Bind(w.net)
	}
	return w, nil
}

// newComm allocates a communicator over the given world-rank group, with
// fresh user and collective communication contexts.
func (w *World) newComm(group []int) *Comm { return w.newCommKeyed("", group) }

// newCommKeyed is newComm for derived communicators: in a distributed
// world the contexts are derived from the deterministic intern key, so
// every process computes the same values without exchanging them (see
// commBase). The counter path remains for single-process worlds and for
// the world communicator, which is created first in every process and
// therefore draws identical counter values anyway.
func (w *World) newCommKeyed(key string, group []int) *Comm {
	c := &Comm{world: w, group: group}
	if w.net != nil && key != "" {
		base := commBase(key)
		c.id = base
		c.ctxUser = base + 1
		c.ctxColl = base + 2
		c.ctxSync = base + 3
	} else {
		c.id = w.commID.Add(1)
		c.ctxUser = w.ctxCounter.Add(1)
		c.ctxColl = w.ctxCounter.Add(1)
		c.ctxSync = w.ctxCounter.Add(1)
	}
	if w.shmOn {
		c.shm = newShmColl(w, c, nil)
	} else if w.twoLevel && w.net != nil && !strings.HasPrefix(key, "2l:") {
		// The guard on the key prefix stops the decomposition from
		// recursing into its own sub-communicators.
		c.tl = w.buildTwoLevel(c)
	}
	return c
}

// Run executes fn as the body of every task of a fresh world and waits for
// all tasks to finish. It returns the world (for statistics inspection)
// and the first error: either an error returned by a task body, a
// recovered panic (including *Error from MPI misuse), or a timeout
// diagnostic.
func Run(cfg Config, fn func(*Task) error) (*World, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return w, w.Run(fn)
}

// Run executes fn for every task of the world. A World must be Run at most
// once.
//
// Failure semantics are per rank (ULFM-style errors-return): a panic in
// one task body — an application bug, an MPI usage *Error, or an
// injected chaos kill — is recovered into that rank's error and the rank
// is marked dead; every other rank blocked on (or later attempting) an
// operation involving it fails fast with a *DeadRankError instead of
// hanging. The joined error Run returns therefore carries one typed
// entry per affected rank; RankErrors exposes them individually.
func (w *World) Run(fn func(*Task) error) error {
	// errs stays world-sized even when this process hosts only some
	// ranks: indexing is by world rank everywhere, and ranks run
	// elsewhere simply keep nil entries.
	errs := make([]error, w.cfg.NumTasks)
	w.rankErrs = errs
	local := w.localRanks()
	var wg sync.WaitGroup
	wg.Add(len(local))
	for _, r := range local {
		t := &Task{world: w, rank: r, commState: make(map[int64]*commTaskState)}
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = w.classifyPanic(r, p)
					w.rankFailed(r, errs[r])
				}
				w.fail.finished[r].Store(true)
			}()
			errs[r] = fn(t)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if w.cfg.Watchdog > 0 && w.net == nil {
		// The watchdog samples local progress only; in a distributed
		// world a rank waiting on remote traffic is indistinguishable
		// from a stalled one, so stall detection is left to Timeout.
		go w.watchdog(w.cfg.Watchdog, done)
	}
	var abort error
	if w.cfg.Timeout > 0 {
		select {
		case <-done:
		case <-time.After(w.cfg.Timeout):
			// Cancel the world so goroutines blocked in runtime
			// operations unwind, then give them a grace period to do so.
			abort = &TimeoutError{After: w.cfg.Timeout.String(), Tasks: w.taskStates()}
			w.cancel(abort)
			grace := w.cfg.Timeout
			if grace > 2*time.Second {
				grace = 2 * time.Second
			}
			select {
			case <-done:
			case <-time.After(grace):
				// Tasks blocked outside the runtime cannot be unwound.
				return fmt.Errorf("%w\n(tasks still blocked outside the runtime after cancellation)", abort)
			}
		}
	} else {
		<-done
	}
	// Every task finished: release the payloads of messages nobody will
	// ever receive (chaos duplicates, traffic to dead ranks), so the
	// pool's outstanding count balances to zero. A distributed world
	// first drains the transport (late frames are discarded, unacked
	// ones get a grace period to reach their peers) and closes it.
	if w.net != nil {
		w.net.shutdown()
	}
	w.drainEndpoints()
	if c := w.Cancelled(); c != nil && abort == nil {
		abort = c // e.g. the watchdog's DeadlockError
	}
	if abort != nil {
		return errors.Join(append([]error{abort}, errs...)...)
	}
	return errors.Join(errs...)
}

// classifyPanic turns a recovered task panic into the rank's typed error.
// Runtime-raised typed errors pass through; everything else — including
// injected chaos kills — becomes a *RankFailure.
func (w *World) classifyPanic(r int, p any) error {
	switch e := p.(type) {
	case *Error:
		return e
	case *DeadRankError:
		return e
	case *CancelledError:
		return e
	case error:
		return &RankFailure{Rank: r, Cause: e}
	default:
		return &RankFailure{Rank: r, Cause: fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
	}
}

// RankErrors returns each rank's outcome of the last Run: nil for ranks
// that completed, the typed failure otherwise. Valid after Run returns.
func (w *World) RankErrors() []error {
	return append([]error(nil), w.rankErrs...)
}
