package mpi

import "fmt"

// Two-level (hierarchy-aware) collectives for distributed worlds. The
// flat channel algorithms route per tree hop, so one logical edge may
// cross the same TCP link several times per operation — O(P·hops)
// cross-node frames. The decomposition here is the paper's hierarchy
// argument applied to collectives: tasks that share a process share an
// address space, so the intra-node phase rides the shared-address-space
// fast path (shmcoll.go) with zero messages, and only one leader per
// node speaks on the wire — O(nodes·log nodes) frames per collective.
//
// Leader election is deterministic and communication-free: every process
// holds an identical rank→node map (topology.Pinning.NodeOf, the same
// array wire routing uses), so every member computes the same node
// ordinals, the same per-node member lists, and the same leader — the
// lowest communicator rank on each node. The node-local sub-communicator
// and the leaders communicator derive their contexts from intern keys
// hashed off the parent's id (commBase), so no setup traffic is needed
// either.
//
// Tag discipline: the parent's collective base tag (collSeq <<
// collStepBits) is world-agreed and unique per operation, so it serves
// directly as the shm sequence number of the node-local phases and as
// the base tag of the leaders-communicator phase; the leaders
// communicator carries no other traffic.
//
// Failure handling extends the fast path's abort integration across the
// wire: the node-local trees register with the parent communicator
// attached (shmColl.parent), so a rank failure anywhere in the parent —
// a remote leader included — aborts members parked in the intra-node
// phase immediately, while leaders blocked in cross-node traffic unwind
// through the ordinary p2p dead-rank cascade.

// TwoLevelCollHooks is an optional extension of Hooks: implementations
// receive a callback from each task completing a collective on the
// two-level path (internal/metrics implements it).
type TwoLevelCollHooks interface {
	Hooks
	// OnTwoLevelCollective is called by each task completing a collective
	// via the two-level decomposition (op is "Barrier", "Bcast", ...).
	OnTwoLevelCollective(worldRank int, op string)
}

// twoLevelColl is one communicator's decomposition: the node-local
// sub-communicator (shm fast path), the leaders communicator (channel
// algorithms over the wire), and the node layout every member computed
// identically.
type twoLevelColl struct {
	local   *Comm // this node's members of the parent, in parent-rank order
	leaders *Comm // one leader per node, in node-ordinal order

	nodeIdx     []int   // parent comm rank -> node ordinal
	nodeMembers [][]int // node ordinal -> parent comm ranks, ascending
	myNode      int     // this process's node ordinal
}

// buildTwoLevel computes the decomposition of c, or nil when it does not
// apply: single-member communicators, or communicators with no member in
// this process (no local task can call a collective on those).
func (w *World) buildTwoLevel(c *Comm) *twoLevelColl {
	n := len(c.group)
	if n < 2 {
		return nil
	}
	nodeOf := w.net.nodeOf
	nodeIdx := make([]int, n)
	ordinal := make(map[int]int) // node id -> ordinal (first-appearance order)
	var nodeMembers [][]int
	for i, wr := range c.group {
		nd := nodeOf[wr]
		j, ok := ordinal[nd]
		if !ok {
			j = len(nodeMembers)
			ordinal[nd] = j
			nodeMembers = append(nodeMembers, nil)
		}
		nodeIdx[i] = j
		nodeMembers[j] = append(nodeMembers[j], i)
	}
	myNode, ok := ordinal[w.net.self]
	if !ok {
		return nil
	}
	localGroup := make([]int, len(nodeMembers[myNode]))
	for i, cr := range nodeMembers[myNode] {
		localGroup[i] = c.group[cr]
	}
	leadGroup := make([]int, len(nodeMembers))
	for j, m := range nodeMembers {
		leadGroup[j] = c.group[m[0]]
	}
	local := w.newCommKeyed(fmt.Sprintf("2l:local:%d:%d", c.id, w.net.self), localGroup)
	local.buildIndex()
	// All members of local live in this process, so the fast path is
	// safe regardless of the world-level shmOn decision; the parent
	// attachment routes remote failures into the local tree.
	local.shm = newShmColl(w, local, c)
	leaders := w.newCommKeyed(fmt.Sprintf("2l:leaders:%d", c.id), leadGroup)
	leaders.buildIndex()
	return &twoLevelColl{
		local:       local,
		leaders:     leaders,
		nodeIdx:     nodeIdx,
		nodeMembers: nodeMembers,
		myNode:      myNode,
	}
}

// tlDone counts a completed two-level collective.
func tlDone(t *Task, op string) {
	t.world.stats.twoLevelCollectives.Add(1)
	if h := t.world.tlHooks; h != nil {
		h.OnTwoLevelCollective(t.rank, op)
	}
}

// twoLevelBarrier: local barrier (all entered on this node), leaders
// barrier (all nodes entered), local barrier (release).
func twoLevelBarrier(t *Task, c *Comm, base int) {
	tl := c.tl
	shmBarrier(t, tl.local, base)
	if tl.local.Rank(t) == 0 {
		chanBarrier(t, tl.leaders, base)
	}
	shmBarrier(t, tl.local, base)
	tlDone(t, "Barrier")
}

// twoLevelBcast: on the root's node the buffer fans out locally first,
// then the leader runs the binomial tree over the leaders; other nodes'
// leaders receive and fan out locally.
func twoLevelBcast[T Scalar](t *Task, c *Comm, buf []T, root, base int) {
	tl := c.tl
	lme := tl.local.Rank(t)
	rootNode := tl.nodeIdx[root]
	if tl.myNode == rootNode {
		lroot := tl.local.rankOf(c.group[root])
		shmBcast(t, tl.local, buf, lroot, base)
		if lme == 0 {
			chanBcast(t, tl.leaders, buf, rootNode, base)
		}
	} else {
		if lme == 0 {
			chanBcast(t, tl.leaders, buf, rootNode, base)
		}
		shmBcast(t, tl.local, buf, 0, base)
	}
	tlDone(t, "Bcast")
}

// twoLevelReduce: local reduce to the node leader, binomial tree over
// the leaders to the root's node, then — when the root is not its node's
// leader — one in-process hop from leader to root on the parent's
// collective context.
func twoLevelReduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, root, base int) {
	tl := c.tl
	me := c.Rank(t)
	k := len(sendBuf)
	if me == root && len(recvBuf) < k {
		raise(t.rank, "Reduce", "receive buffer too small: %d < %d", len(recvBuf), k)
	}
	rootNode := tl.nodeIdx[root]
	rootLeader := tl.nodeMembers[rootNode][0]
	if tl.local.Rank(t) == 0 {
		acc := make([]T, k)
		shmReduce(t, tl.local, sendBuf, acc, op, 0, base)
		switch {
		case me == root:
			chanReduce(t, tl.leaders, acc, recvBuf, op, rootNode, base)
		case tl.myNode == rootNode:
			res := make([]T, k)
			chanReduce(t, tl.leaders, acc, res, op, rootNode, base)
			csend(t, c, "Reduce", res, root, base)
		default:
			chanReduce(t, tl.leaders, acc, nil, op, rootNode, base)
		}
	} else {
		shmReduce(t, tl.local, sendBuf, nil, op, 0, base)
		if me == root {
			crecv(t, c, "Reduce", recvBuf[:k], rootLeader, base)
		}
	}
	tlDone(t, "Reduce")
}

// twoLevelAllreduce: local reduce into the leader's receive buffer,
// recursive doubling over the leaders, local broadcast of the result.
func twoLevelAllreduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, base int) {
	tl := c.tl
	k := len(sendBuf)
	if tl.local.Rank(t) == 0 {
		shmReduce(t, tl.local, sendBuf, recvBuf[:k], op, 0, base)
		chanAllreduceRD(t, tl.leaders, recvBuf[:k], recvBuf[:k], op, base)
	} else {
		shmReduce(t, tl.local, sendBuf, nil, op, 0, base)
	}
	shmBcast(t, tl.local, recvBuf[:k], 0, base)
	tlDone(t, "Allreduce")
}

// twoLevelAllgather: local allgather assembles the node's block, the
// leaders exchange whole node blocks (one ring message per node per
// step instead of one per rank), the leader scatters blocks into
// parent-rank order, and a local broadcast distributes the full result.
func twoLevelAllgather[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, base int) {
	tl := c.tl
	k := len(sendBuf)
	n := c.Size()
	nLocal := tl.local.Size()
	local := make([]T, nLocal*k)
	shmAllgather(t, tl.local, sendBuf, local, base)
	if tl.local.Rank(t) == 0 {
		nn := len(tl.nodeMembers)
		counts := make([]int, nn)
		displs := make([]int, nn)
		off := 0
		for j, m := range tl.nodeMembers {
			counts[j] = len(m) * k
			displs[j] = off
			off += counts[j]
		}
		gath := make([]T, n*k)
		chanAllgatherv(t, tl.leaders, local, gath, counts, displs, base)
		for j, m := range tl.nodeMembers {
			for i, cr := range m {
				copy(recvBuf[cr*k:(cr+1)*k], gath[displs[j]+i*k:displs[j]+(i+1)*k])
			}
		}
	}
	shmBcast(t, tl.local, recvBuf[:n*k], 0, base)
	tlDone(t, "Allgather")
}
