package mpi

import "fmt"

// Op is a reduction operator for Reduce/Allreduce/Scan. All provided
// operators are associative and commutative.
type Op int

const (
	// OpSum adds elements.
	OpSum Op = iota
	// OpProd multiplies elements.
	OpProd
	// OpMax keeps the elementwise maximum.
	OpMax
	// OpMin keeps the elementwise minimum.
	OpMin
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// ApplyOp folds src into dst elementwise: dst[i] = op(dst[i], src[i]).
// Exported for layers that reuse the reduce operators outside a collective
// (internal/rma's Accumulate).
func ApplyOp[T Scalar](op Op, dst, src []T) { apply(-1, op, dst, src) }

// apply folds src into dst elementwise: dst[i] = op(dst[i], src[i]).
func apply[T Scalar](rank int, op Op, dst, src []T) {
	if len(dst) != len(src) {
		raise(rank, "Reduce", "operand length mismatch: %d vs %d", len(dst), len(src))
	}
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpProd:
		for i, v := range src {
			dst[i] *= v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		raise(rank, "Reduce", "unknown op %v", op)
	}
}
