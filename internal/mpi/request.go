package mpi

import (
	"sync"
	"sync/atomic"
)

// Nonblocking-operation requests. A Request used to carry its own
// done-channel, which meant one channel allocation per operation and
// forced Waitany through reflect.Select. The zero-allocation datapath
// replaces both: completion is a three-state atomic (pending → claimed →
// done) and waiters park on a pooled, reusable notification channel they
// register on the request. Requests created by the blocking wrappers
// (Send, Recv, the collectives' helpers) are recycled through a
// sync.Pool once their caller has consumed the status; requests returned
// to the user by Isend/Irecv are left to the garbage collector, since
// the runtime cannot know when the caller is done with them.

const (
	reqPending = 0 // operation in flight
	reqClaimed = 1 // a completer is writing status/err
	reqDone    = 2 // status/err published
)

// Request is the handle of a nonblocking operation. A Request may be
// waited on by one goroutine at a time.
type Request struct {
	status Status
	err    error // non-nil when the operation failed (dead peer, cancel)
	// recvSide is true for receive requests (their Wait returns a Status
	// with meaning).
	recvSide bool
	// span is the trace span id of the message behind a rendezvous send
	// request (zero when tracing is off), so the blocking wrapper can
	// attribute its wait to the right flow. sendNs is the span's send
	// timestamp, reused as the wait's begin so the wrapper saves a clock
	// read per blocking send.
	span   uint64
	sendNs int64

	state atomic.Uint32
	// waiter is the notification box of the goroutine blocked on this
	// request, nil when nobody waits. Completion sends one token into it.
	waiter atomic.Pointer[notifyBox]
}

// notifyBox is a reusable single-token notification channel. Boxes are
// pooled: a waiter borrows one, registers it on the request(s) it waits
// for, and returns it drained. Completers send nonblocking, so a box can
// at worst receive one spurious token from a previous registration —
// waiters tolerate that by re-checking request states after every wake.
type notifyBox struct {
	ch chan struct{}
}

var notifyPool = sync.Pool{New: func() any { return &notifyBox{ch: make(chan struct{}, 1)} }}

func getNotifier() *notifyBox { return notifyPool.Get().(*notifyBox) }

func putNotifier(nb *notifyBox) {
	select { // drain a possible straggler token
	case <-nb.ch:
	default:
	}
	notifyPool.Put(nb)
}

var requestPool = sync.Pool{New: func() any { return new(Request) }}

func newRequest(recvSide bool) *Request {
	r := requestPool.Get().(*Request)
	r.status = Status{}
	r.err = nil
	r.recvSide = recvSide
	r.span = 0
	r.sendNs = 0
	r.waiter.Store(nil)
	r.state.Store(reqPending)
	return r
}

// putRequest recycles a request that no other goroutine can still
// reference: one created and fully consumed inside a blocking wrapper.
// (The failure layer only reaches requests through the endpoint queues,
// and a request is unlinked from those, under the endpoint lock, before
// it completes — so a request whose Wait returned is unreachable.)
func putRequest(r *Request) {
	r.err = nil
	r.waiter.Store(nil)
	requestPool.Put(r)
}

// finish publishes the outcome exactly once; the loser of a
// complete-vs-fail race (a message arriving just as its sender is
// declared dead) does nothing.
func (r *Request) finish(st Status, err error) {
	if !r.state.CompareAndSwap(reqPending, reqClaimed) {
		return
	}
	r.status = st
	r.err = err
	r.state.Store(reqDone)
	if nb := r.waiter.Load(); nb != nil {
		select {
		case nb.ch <- struct{}{}:
		default:
		}
	}
}

func (r *Request) complete(st Status) { r.finish(st, nil) }

// fail completes the request with a typed error instead of a status.
func (r *Request) fail(err error) { r.finish(Status{}, err) }

// Wait blocks until the operation completes and returns its Status (zero
// for send requests). When the operation failed — its peer rank died, or
// the world was cancelled — the Status is zero and Err reports the typed
// failure; the blocking wrappers (Recv, Send, collectives) check it and
// raise, so only explicit Irecv/Isend users need to consult Err.
func (r *Request) Wait() Status {
	if r.state.Load() == reqDone {
		return r.status
	}
	nb := getNotifier()
	r.waiter.Store(nb)
	for r.state.Load() != reqDone {
		<-nb.ch
	}
	r.waiter.Store(nil)
	putNotifier(nb)
	return r.status
}

// Err returns the typed failure of a completed request: a *DeadRankError
// when the peer died, a *CancelledError when the world was cancelled, nil
// on success. Only valid after Wait or a true Test.
func (r *Request) Err() error {
	if r.state.Load() == reqDone {
		return r.err
	}
	return nil
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() (Status, bool) {
	if r.state.Load() == reqDone {
		return r.status, true
	}
	return Status{}, false
}

// Waitall waits for every request in the slice and returns their
// statuses. All pending requests share one notification channel and a
// completion count, so the wait costs one park per wake-up burst rather
// than one channel per request.
func Waitall(reqs []*Request) []Status {
	out := make([]Status, len(reqs))
	waitallInto(reqs, out)
	return out
}

func waitallInto(reqs []*Request, out []Status) {
	var nb *notifyBox
	for {
		done := 0
		for _, r := range reqs {
			// Register the notifier before loading the state (the same
			// order Wait uses): a completion concurrent with this scan
			// either publishes reqDone before our load, or observes the
			// registered notifier and sends a token. Checking state first
			// would open a window where the completer sees a nil waiter
			// and the waiter then parks forever.
			if nb != nil {
				r.waiter.Store(nb)
			}
			if r.state.Load() == reqDone {
				done++
			}
		}
		if done == len(reqs) {
			break
		}
		if nb == nil {
			// First pass found pending requests: arm the shared notifier
			// and re-scan.
			nb = getNotifier()
			continue
		}
		<-nb.ch
	}
	for i, r := range reqs {
		out[i] = r.status
		if nb != nil {
			r.waiter.Store(nil)
		}
	}
	if nb != nil {
		putNotifier(nb)
	}
}

// Waitany blocks until at least one request completes and returns its
// index and status. Completed requests keep reporting done; callers
// typically remove the returned index before waiting again.
func Waitany(reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: Waitany on an empty request list")
	}
	var nb *notifyBox
	for {
		for i, r := range reqs {
			// Notifier before state load, as in waitallInto: a completer
			// racing with this scan must either be observed done or find
			// the notifier registered.
			if nb != nil {
				r.waiter.Store(nb)
			}
			if r.state.Load() == reqDone {
				if nb != nil {
					for _, q := range reqs {
						q.waiter.Store(nil)
					}
					putNotifier(nb)
				}
				return i, r.status
			}
		}
		if nb == nil {
			nb = getNotifier()
			continue
		}
		<-nb.ch
	}
}
