package mpi

// MultiHooks combines several Hooks into one, so a world can feed the
// happens-before tracker, the trace recorder and the metrics adapters
// simultaneously without hand-written Inner chains. Each member's
// OnSend metadata travels with the message independently and is handed
// back to that member's OnDeliver. Members implementing MessageHooks
// also receive the extended events.
//
// Nil members are dropped; with zero non-nil members MultiHooks returns
// nil (no hooks), and with exactly one it returns that member unchanged,
// so composition adds no overhead in the degenerate cases.
func MultiHooks(hooks ...Hooks) Hooks {
	hs := make([]Hooks, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			hs = append(hs, h)
		}
	}
	switch len(hs) {
	case 0:
		return nil
	case 1:
		return hs[0]
	}
	m := &multiHooks{hooks: hs, shmOK: true}
	var faults []FaultHooks
	var pools poolFan
	for _, h := range hs {
		if mh, ok := h.(MessageHooks); ok {
			m.msg = append(m.msg, mh)
		}
		if fh, ok := h.(FaultHooks); ok {
			faults = append(faults, fh)
		}
		if ph, ok := h.(PoolHooks); ok {
			pools = append(pools, ph)
		}
		if th, ok := h.(TypedHooks); ok {
			m.typed = append(m.typed, th)
		}
		// The composition allows the shared-collective fast path only if
		// every member does: one message-watching member (the hb tracker)
		// vetoes it for the whole world.
		if sh, ok := h.(SharedCollHooks); ok && sh.SharedCollectivesOK() {
			m.shm = append(m.shm, sh)
		} else {
			m.shmOK = false
		}
	}
	// Only the wrapper types assert FaultHooks / PoolHooks, so a
	// composition with no fault-injecting (or pool-watching) member keeps
	// the corresponding nil fast path in the world.
	switch {
	case len(faults) > 0 && len(pools) > 0:
		return &multiFaultPoolHooks{
			multiFaultHooks: multiFaultHooks{multiHooks: m, faults: faults},
			poolFan:         pools,
		}
	case len(faults) > 0:
		return &multiFaultHooks{multiHooks: m, faults: faults}
	case len(pools) > 0:
		return &multiPoolHooks{multiHooks: m, poolFan: pools}
	}
	return m
}

// poolFan fans the PoolHooks events out to every pool-watching member.
type poolFan []PoolHooks

func (p poolFan) OnPoolGet(worldRank, bytes int, hit bool) {
	for _, h := range p {
		h.OnPoolGet(worldRank, bytes, hit)
	}
}

func (p poolFan) OnPoolPut(worldRank, bytes int) {
	for _, h := range p {
		h.OnPoolPut(worldRank, bytes)
	}
}

func (p poolFan) OnMatchProbes(worldRank, probes int) {
	for _, h := range p {
		h.OnMatchProbes(worldRank, probes)
	}
}

// multiPoolHooks extends multiHooks with PoolHooks fan-out.
type multiPoolHooks struct {
	*multiHooks
	poolFan
}

// multiFaultPoolHooks combines both extensions.
type multiFaultPoolHooks struct {
	multiFaultHooks
	poolFan
}

// multiFaultHooks extends multiHooks with FaultP2P fan-out. Members'
// actions merge: delays add up, and any member's drop (or duplicate)
// verdict wins.
type multiFaultHooks struct {
	*multiHooks
	faults []FaultHooks
}

func (m *multiFaultHooks) FaultP2P(worldSrc, worldDst, bytes int, rendezvous bool) FaultAction {
	var act FaultAction
	for _, f := range m.faults {
		a := f.FaultP2P(worldSrc, worldDst, bytes, rendezvous)
		act.Delay += a.Delay
		act.Drop = act.Drop || a.Drop
		act.Duplicate = act.Duplicate || a.Duplicate
	}
	return act
}

type multiHooks struct {
	hooks []Hooks
	msg   []MessageHooks    // the subset implementing MessageHooks
	shm   []SharedCollHooks // the subset that opted into shared collectives
	typed []TypedHooks      // the subset implementing TypedHooks
	shmOK bool              // every member opted in
}

// OnSend implements Hooks, gathering every member's metadata.
func (m *multiHooks) OnSend(worldSrc, worldDst int) any {
	metas := make([]any, len(m.hooks))
	for i, h := range m.hooks {
		metas[i] = h.OnSend(worldSrc, worldDst)
	}
	return metas
}

// OnDeliver implements Hooks, handing each member its own metadata.
func (m *multiHooks) OnDeliver(worldDst int, meta any) {
	metas, _ := meta.([]any)
	for i, h := range m.hooks {
		var mi any
		if i < len(metas) {
			mi = metas[i]
		}
		h.OnDeliver(worldDst, mi)
	}
}

// OnMessage implements MessageHooks.
func (m *multiHooks) OnMessage(worldSrc, worldDst, bytes int, rendezvous bool) {
	for _, h := range m.msg {
		h.OnMessage(worldSrc, worldDst, bytes, rendezvous)
	}
}

// OnCopyElided implements MessageHooks.
func (m *multiHooks) OnCopyElided(worldDst, bytes int) {
	for _, h := range m.msg {
		h.OnCopyElided(worldDst, bytes)
	}
}

// OnCollective implements MessageHooks.
func (m *multiHooks) OnCollective(worldRank int) {
	for _, h := range m.msg {
		h.OnCollective(worldRank)
	}
}

// OnPackElided implements TypedHooks.
func (m *multiHooks) OnPackElided(worldDst, bytes int) {
	for _, h := range m.typed {
		h.OnPackElided(worldDst, bytes)
	}
}

// SharedCollectivesOK implements SharedCollHooks: the composition opts
// into the fast path only when every member did.
func (m *multiHooks) SharedCollectivesOK() bool { return m.shmOK }

// OnSharedCollective implements SharedCollHooks.
func (m *multiHooks) OnSharedCollective(worldRank int, op string) {
	for _, h := range m.shm {
		h.OnSharedCollective(worldRank, op)
	}
}
