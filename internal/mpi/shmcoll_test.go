package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"hls/internal/topology"
)

// runBoth runs the same program under CollShared and CollChannels and
// returns both worlds, failing the test if either errors. The fast path
// must be observationally equivalent to the channel algorithms.
func runBoth(t *testing.T, tasks int, fn func(*Task) error) (shared, channels *World) {
	t.Helper()
	shared, err := Run(Config{NumTasks: tasks, Collectives: CollShared}, fn)
	if err != nil {
		t.Fatalf("CollShared: %v", err)
	}
	channels, err = Run(Config{NumTasks: tasks, Collectives: CollChannels}, fn)
	if err != nil {
		t.Fatalf("CollChannels: %v", err)
	}
	if got := shared.Stats().SharedCollectives; got == 0 {
		t.Errorf("CollShared world completed 0 fast-path collectives")
	}
	if got := channels.Stats().SharedCollectives; got != 0 {
		t.Errorf("CollChannels world completed %d fast-path collectives, want 0", got)
	}
	return shared, channels
}

// TestSharedCollectivesMatchChannels drives every fast-path operation —
// non-zero roots, empty and rendezvous-sized buffers, world and derived
// communicators — under both modes and checks the results agree.
func TestSharedCollectivesMatchChannels(t *testing.T) {
	const n = 8
	const big = DefaultEagerLimit // elements, so bytes >> EagerLimit on the channel path
	runBoth(t, n, func(tk *Task) error {
		r := tk.Rank()

		// Bcast, root 3, small and large.
		small := make([]float64, 5)
		if r == 3 {
			for i := range small {
				small[i] = float64(10 + i)
			}
		}
		Bcast(tk, nil, small, 3)
		for i, v := range small {
			if v != float64(10+i) {
				t.Errorf("rank %d: Bcast small[%d] = %v", r, i, v)
			}
		}
		large := make([]int64, big)
		if r == 3 {
			for i := range large {
				large[i] = int64(i * i)
			}
		}
		Bcast(tk, nil, large, 3)
		if large[big-1] != int64(big-1)*int64(big-1) {
			t.Errorf("rank %d: Bcast large tail = %d", r, large[big-1])
		}

		// Empty buffers are legal everywhere.
		Bcast(tk, nil, []int{}, 0)
		Allreduce(tk, nil, []int{}, []int{}, OpSum)

		// Reduce to a non-zero root.
		send := []int{r + 1, 2 * r}
		recv := make([]int, 2)
		Reduce(tk, nil, send, recv, OpSum, 5)
		if r == 5 {
			wantA, wantB := 0, 0
			for q := 0; q < n; q++ {
				wantA += q + 1
				wantB += 2 * q
			}
			if recv[0] != wantA || recv[1] != wantB {
				t.Errorf("rank %d: Reduce = %v, want [%d %d]", r, recv, wantA, wantB)
			}
		}

		// Allreduce max.
		mx := make([]int, 1)
		Allreduce(tk, nil, []int{r * 7 % 5}, mx, OpMax)
		want := 0
		for q := 0; q < n; q++ {
			if q*7%5 > want {
				want = q * 7 % 5
			}
		}
		if mx[0] != want {
			t.Errorf("rank %d: Allreduce max = %d, want %d", r, mx[0], want)
		}

		// Allgather.
		all := make([]int32, 2*n)
		Allgather(tk, nil, []int32{int32(r), int32(-r)}, all)
		for q := 0; q < n; q++ {
			if all[2*q] != int32(q) || all[2*q+1] != int32(-q) {
				t.Errorf("rank %d: Allgather block %d = %v", r, q, all[2*q:2*q+2])
			}
		}

		// Derived communicators run the same fast path: Dup, then an
		// odd/even Split with reversed rank order.
		dup := Dup(tk, nil)
		sum := make([]int, 1)
		Allreduce(tk, dup, []int{1}, sum, OpSum)
		if sum[0] != n {
			t.Errorf("rank %d: dup Allreduce = %d, want %d", r, sum[0], n)
		}
		sub := Split(tk, nil, r%2, -r)
		subSum := make([]int, 1)
		Allreduce(tk, sub, []int{r}, subSum, OpSum)
		want = 0
		for q := r % 2; q < n; q += 2 {
			want += q
		}
		if subSum[0] != want {
			t.Errorf("rank %d: split Allreduce = %d, want %d", r, subSum[0], want)
		}
		Barrier(tk, sub)
		Barrier(tk, dup)
		Barrier(tk, nil)
		return nil
	})
}

// TestSharedCollectivesSingleTask checks the degenerate world.
func TestSharedCollectivesSingleTask(t *testing.T) {
	runBoth(t, 1, func(tk *Task) error {
		Barrier(tk, nil)
		buf := []int{7}
		Bcast(tk, nil, buf, 0)
		out := make([]int, 1)
		Reduce(tk, nil, buf, out, OpSum, 0)
		if out[0] != 7 {
			t.Errorf("Reduce alone = %d", out[0])
		}
		Allreduce(tk, nil, buf, out, OpProd)
		all := make([]int, 1)
		Allgather(tk, nil, buf, all)
		if all[0] != 7 {
			t.Errorf("Allgather alone = %d", all[0])
		}
		return nil
	})
}

// TestSharedCollectivesTopologyComms runs fast-path collectives on
// SplitScope communicators of a 4-socket machine, so the per-comm
// barrier trees are built over real cache/NUMA sub-hierarchies.
func TestSharedCollectivesTopologyComms(t *testing.T) {
	w, err := Run(Config{
		NumTasks: 32, Machine: topology.NehalemEX4(), Pin: topology.PinCorePerTask,
	}, func(tk *Task) error {
		sub := SplitScope(tk, topology.NUMA)
		sum := make([]int, 1)
		Allreduce(tk, sub, []int{tk.Rank()}, sum, OpSum)
		// Ranks are pinned core-per-task on 4 sockets of 8 cores: the
		// NUMA siblings of rank r are the 8 ranks sharing r/8.
		base := tk.Rank() / 8 * 8
		want := 0
		for q := base; q < base+8; q++ {
			want += q
		}
		if sum[0] != want {
			t.Errorf("rank %d: NUMA Allreduce = %d, want %d", tk.Rank(), sum[0], want)
		}
		Barrier(tk, sub)
		Barrier(tk, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().SharedCollectives == 0 {
		t.Error("no fast-path collectives on a hook-less world")
	}
}

// TestSharedCollectivesGating checks when CollAuto engages the fast path.
func TestSharedCollectivesGating(t *testing.T) {
	countShared := func(cfg Config) int64 {
		t.Helper()
		w, err := Run(cfg, func(tk *Task) error { Barrier(tk, nil); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats().SharedCollectives
	}
	if got := countShared(Config{NumTasks: 4}); got != 4 {
		t.Errorf("hook-less auto: SharedCollectives = %d, want 4", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: noopHooks{}}); got != 0 {
		t.Errorf("non-opted-in hooks: SharedCollectives = %d, want 0", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: optinHooks{}}); got != 4 {
		t.Errorf("opted-in hooks: SharedCollectives = %d, want 4", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: vetoHooks{}}); got != 0 {
		t.Errorf("vetoing hooks: SharedCollectives = %d, want 0", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: faultyHooks{}}); got != 0 {
		t.Errorf("fault hooks: SharedCollectives = %d, want 0", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: noopHooks{}, Collectives: CollShared}); got != 4 {
		t.Errorf("CollShared override: SharedCollectives = %d, want 4", got)
	}
	if got := countShared(Config{NumTasks: 4, Collectives: CollChannels}); got != 0 {
		t.Errorf("CollChannels override: SharedCollectives = %d, want 0", got)
	}
	// Composition: every member must opt in.
	if got := countShared(Config{NumTasks: 4, Hooks: MultiHooks(optinHooks{}, optinHooks{})}); got != 4 {
		t.Errorf("all-opted-in MultiHooks: SharedCollectives = %d, want 4", got)
	}
	if got := countShared(Config{NumTasks: 4, Hooks: MultiHooks(optinHooks{}, noopHooks{})}); got != 0 {
		t.Errorf("mixed MultiHooks: SharedCollectives = %d, want 0", got)
	}
}

type noopHooks struct{}

func (noopHooks) OnSend(worldSrc, worldDst int) any { return nil }
func (noopHooks) OnDeliver(worldDst int, meta any)  {}

type optinHooks struct{ noopHooks }

func (optinHooks) SharedCollectivesOK() bool                   { return true }
func (optinHooks) OnSharedCollective(worldRank int, op string) {}

type vetoHooks struct{ noopHooks }

func (vetoHooks) SharedCollectivesOK() bool                   { return false }
func (vetoHooks) OnSharedCollective(worldRank int, op string) {}

type faultyHooks struct{ noopHooks }

func (faultyHooks) FaultP2P(worldSrc, worldDst, bytes int, rendezvous bool) FaultAction {
	return FaultAction{}
}

// TestSharedCollectiveHookNotifications checks opted-in hooks see one
// OnSharedCollective per task per collective.
func TestSharedCollectiveHookNotifications(t *testing.T) {
	h := &countingShmHooks{}
	_, err := Run(Config{NumTasks: 4, Hooks: h}, func(tk *Task) error {
		Barrier(tk, nil)
		buf := make([]int, 1)
		Bcast(tk, nil, buf, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts["Barrier"] != 4 || h.counts["Bcast"] != 4 {
		t.Errorf("OnSharedCollective counts = %v, want 4 each", h.counts)
	}
}

type countingShmHooks struct {
	noopHooks
	mu     sync.Mutex
	counts map[string]int
}

func (h *countingShmHooks) SharedCollectivesOK() bool { return true }
func (h *countingShmHooks) OnSharedCollective(worldRank int, op string) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make(map[string]int)
	}
	h.counts[op]++
	h.mu.Unlock()
}

// TestSharedCollectiveElision: when every task passes the same shared
// slice to Bcast (the HLS pattern: the buffer is an hls variable), the
// fast path skips all n-1 copies and counts them as elided.
func TestSharedCollectiveElision(t *testing.T) {
	shared := make([]float64, 64)
	w, err := Run(Config{NumTasks: 4}, func(tk *Task) error {
		if tk.Rank() == 2 {
			for i := range shared {
				shared[i] = float64(i)
			}
		}
		Bcast(tk, nil, shared, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().SameAddrSkips; got != 3 {
		t.Errorf("SameAddrSkips = %d, want 3", got)
	}
}

// Mismatch detection: the entry barrier's leader inspects every member's
// published slot, so a desynchronized program fails on all ranks with a
// typed *Error instead of deadlocking or corrupting buffers.

func wantAllErrors(t *testing.T, w *World, substr string) {
	t.Helper()
	for r, err := range w.RankErrors() {
		var me *Error
		if !errors.As(err, &me) {
			t.Errorf("rank %d: error %v, want *Error", r, err)
			continue
		}
		if !strings.Contains(me.Msg, substr) {
			t.Errorf("rank %d: message %q does not mention %q", r, me.Msg, substr)
		}
	}
}

func TestSharedCollectiveMismatchedKinds(t *testing.T) {
	w, _ := NewWorld(Config{NumTasks: 4})
	err := w.Run(func(tk *Task) error {
		if tk.Rank() == 1 {
			buf := make([]int, 1)
			Bcast(tk, nil, buf, 0)
		} else {
			Barrier(tk, nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("mismatched collectives completed")
	}
	wantAllErrors(t, w, "mismatched collectives")
}

func TestSharedCollectiveDatatypeMismatch(t *testing.T) {
	w, _ := NewWorld(Config{NumTasks: 4})
	err := w.Run(func(tk *Task) error {
		if tk.Rank() == 3 {
			Bcast(tk, nil, make([]int32, 4), 0)
		} else {
			Bcast(tk, nil, make([]int64, 4), 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("datatype mismatch completed")
	}
	wantAllErrors(t, w, "datatype mismatch")
}

func TestSharedCollectiveLengthMismatch(t *testing.T) {
	w, _ := NewWorld(Config{NumTasks: 4})
	err := w.Run(func(tk *Task) error {
		Bcast(tk, nil, make([]int, 4+tk.Rank()%2), 0)
		return nil
	})
	if err == nil {
		t.Fatal("length mismatch completed")
	}
	wantAllErrors(t, w, "length mismatch")
}

func TestSharedCollectiveRootMismatch(t *testing.T) {
	w, _ := NewWorld(Config{NumTasks: 4})
	err := w.Run(func(tk *Task) error {
		Bcast(tk, nil, make([]int, 2), tk.Rank()%2)
		return nil
	})
	if err == nil {
		t.Fatal("root mismatch completed")
	}
	wantAllErrors(t, w, "root mismatch")
}

func TestSharedCollectiveUnknownOp(t *testing.T) {
	w, _ := NewWorld(Config{NumTasks: 4})
	err := w.Run(func(tk *Task) error {
		out := make([]int, 1)
		Allreduce(tk, nil, []int{1}, out, Op(99))
		return nil
	})
	if err == nil {
		t.Fatal("unknown op completed")
	}
	wantAllErrors(t, w, "unknown op")
}

// TestSharedCollectiveDeadRankAttribution kills a rank mid-program and
// checks survivors blocked in a fast-path collective unwind with a
// DeadRankError attributed to their own rank and the operation — the
// same contract the channel path keeps via checkReq.
func TestSharedCollectiveDeadRankAttribution(t *testing.T) {
	const n, victim = 8, 5
	w, _ := NewWorld(Config{NumTasks: n})
	err := w.Run(func(tk *Task) error {
		buf := make([]float64, 16)
		out := make([]float64, 16)
		for i := 0; i < 50; i++ {
			if tk.Rank() == victim && i == 7 {
				panic("chaos kill")
			}
			Allreduce(tk, nil, buf, out, OpSum)
		}
		return nil
	})
	if err == nil {
		t.Fatal("world with a killed rank completed")
	}
	for r, rerr := range w.RankErrors() {
		if r == victim {
			continue
		}
		var dre *DeadRankError
		if !errors.As(rerr, &dre) {
			t.Errorf("rank %d: error %v, want *DeadRankError", r, rerr)
			continue
		}
		if dre.Dead != victim || dre.Rank != r || dre.Op != "Allreduce" {
			t.Errorf("rank %d: DeadRankError{Rank:%d Op:%q Dead:%d}, want {Rank:%d Op:\"Allreduce\" Dead:%d}",
				r, dre.Rank, dre.Op, dre.Dead, r, victim)
		}
	}
}

// TestSharedCollectiveZeroAllocs is the fast path's allocation budget:
// small Bcast/Allreduce/Barrier on the steady state allocate nothing, on
// any rank.
func TestSharedCollectiveZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks under -short")
	}
	cases := []struct {
		name string
		fn   func(tk *Task, send, recv []float64)
	}{
		{"Barrier", func(tk *Task, send, recv []float64) { Barrier(tk, nil) }},
		{"Bcast8", func(tk *Task, send, recv []float64) { Bcast(tk, nil, send, 0) }},
		{"Allreduce8", func(tk *Task, send, recv []float64) { Allreduce(tk, nil, send, recv, OpSum) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := testing.Benchmark(func(b *testing.B) {
				benchWorldCollective(b, 4, tc.fn)
			})
			if allocs := res.AllocsPerOp(); allocs != 0 {
				t.Errorf("%s: %d allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// benchWorldCollective runs fn b.N times on every rank of a hook-less
// world, timing (and metering allocations) only the steady-state loop:
// every rank warms up first, and the timer restarts once all are ready.
func benchWorldCollective(b *testing.B, tasks int, fn func(tk *Task, send, recv []float64)) {
	w, err := NewWorld(Config{NumTasks: tasks})
	if err != nil {
		b.Fatal(err)
	}
	var ready sync.WaitGroup
	ready.Add(tasks)
	start := make(chan struct{})
	go func() {
		ready.Wait()
		b.ResetTimer()
		close(start)
	}()
	if err := w.Run(func(tk *Task) error {
		send := make([]float64, 8)
		recv := make([]float64, 8)
		for i := 0; i < 4; i++ {
			fn(tk, send, recv)
		}
		ready.Done()
		<-start
		for i := 0; i < b.N; i++ {
			fn(tk, send, recv)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSharedBarrier(b *testing.B) {
	benchWorldCollective(b, 4, func(tk *Task, send, recv []float64) { Barrier(tk, nil) })
}

func BenchmarkSharedAllreduce8(b *testing.B) {
	benchWorldCollective(b, 4, func(tk *Task, send, recv []float64) {
		Allreduce(tk, nil, send, recv, OpSum)
	})
}
