//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in. Under
// the race detector sync.Pool deliberately drops a fraction of puts, so
// zero-allocation assertions cannot hold and are skipped.
const raceEnabled = true
