package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// killRank panics the given rank with an application error, modelling a
// task crash (what internal/chaos' RankKill fault injects).
func killErr(r int) error { return fmt.Errorf("injected kill of rank %d", r) }

func TestFaultRankKillUnblocksRecv(t *testing.T) {
	w, err := Run(Config{NumTasks: 4, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 1:
			time.Sleep(10 * time.Millisecond)
			panic(killErr(1))
		case 0:
			var buf [4]int
			Recv(tk, nil, buf[:], 1, 0) // blocks, then fails when 1 dies
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error after a rank kill")
	}
	var rf *RankFailure
	if !errors.As(w.RankErrors()[1], &rf) || rf.Rank != 1 {
		t.Fatalf("rank 1 error = %v, want *RankFailure for rank 1", w.RankErrors()[1])
	}
	var dre *DeadRankError
	if !errors.As(w.RankErrors()[0], &dre) || dre.Dead != 1 || dre.Op != "Recv" {
		t.Fatalf("rank 0 error = %v, want *DeadRankError{Op: Recv, Dead: 1}", w.RankErrors()[0])
	}
	if !w.RankDead(1) {
		t.Error("RankDead(1) = false after kill")
	}
	if got := w.FailedRanks(); len(got) == 0 || got[0] != 0 && got[0] != 1 {
		t.Errorf("FailedRanks() = %v", got)
	}
}

func TestFaultRecvPostedAfterDeathFailsFast(t *testing.T) {
	w, err := Run(Config{NumTasks: 2, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 1:
			panic(killErr(1))
		case 0:
			time.Sleep(50 * time.Millisecond) // rank 1 is long dead
			var buf [1]int
			Recv(tk, nil, buf[:], 1, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var dre *DeadRankError
	if !errors.As(w.RankErrors()[0], &dre) || dre.Dead != 1 {
		t.Fatalf("rank 0 error = %v, want *DeadRankError{Dead: 1}", w.RankErrors()[0])
	}
}

func TestFaultSendToDeadRank(t *testing.T) {
	w, err := Run(Config{NumTasks: 2, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 1:
			panic(killErr(1))
		case 0:
			time.Sleep(50 * time.Millisecond)
			buf := make([]int, 4)
			Send(tk, nil, buf, 1, 0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var dre *DeadRankError
	if !errors.As(w.RankErrors()[0], &dre) || dre.Dead != 1 || dre.Op != "Send" {
		t.Fatalf("rank 0 error = %v, want *DeadRankError{Op: Send, Dead: 1}", w.RankErrors()[0])
	}
}

func TestFaultRendezvousSenderUnblocked(t *testing.T) {
	// A rendezvous send parked in the receiver's unexpected queue must
	// fail when the receiver dies without matching it.
	w, err := Run(Config{NumTasks: 2, EagerLimit: 16, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 0:
			buf := make([]int64, 64) // > eager limit: rendezvous
			Send(tk, nil, buf, 1, 0)
		case 1:
			time.Sleep(30 * time.Millisecond) // let the send park
			panic(killErr(1))
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var dre *DeadRankError
	if !errors.As(w.RankErrors()[0], &dre) || dre.Dead != 1 {
		t.Fatalf("rank 0 error = %v, want *DeadRankError{Dead: 1}", w.RankErrors()[0])
	}
}

func TestFaultCollectiveFailsFastOnDeadRank(t *testing.T) {
	w, err := Run(Config{NumTasks: 8, Timeout: 10 * time.Second}, func(tk *Task) error {
		if tk.Rank() == 2 {
			panic(killErr(2))
		}
		for i := 0; i < 100; i++ {
			Barrier(tk, nil)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Fatalf("run timed out instead of failing fast: %v", err)
	}
	for r, re := range w.RankErrors() {
		if r == 2 {
			var rf *RankFailure
			if !errors.As(re, &rf) {
				t.Errorf("rank 2 error = %v, want *RankFailure", re)
			}
			continue
		}
		var dre *DeadRankError
		if !errors.As(re, &dre) {
			t.Errorf("rank %d error = %v, want *DeadRankError", r, re)
			continue
		}
		if dre.Op != "Barrier" {
			t.Errorf("rank %d error op = %q, want Barrier", r, dre.Op)
		}
	}
}

func TestFaultProbeUnblocksOnDeadRank(t *testing.T) {
	w, err := Run(Config{NumTasks: 2, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 1:
			time.Sleep(20 * time.Millisecond)
			panic(killErr(1))
		case 0:
			Probe(tk, nil, 1, 0) // no message will ever come
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var dre *DeadRankError
	if !errors.As(w.RankErrors()[0], &dre) || dre.Op != "Probe" {
		t.Fatalf("rank 0 error = %v, want *DeadRankError{Op: Probe}", w.RankErrors()[0])
	}
}

func TestFault32TaskRankKillTerminates(t *testing.T) {
	// Acceptance shape: 32 tasks iterating a collective, one killed
	// mid-run. Every surviving rank must unwind with a typed error — the
	// run must not reach the timeout backstop.
	const n, victim = 32, 7
	w, err := Run(Config{NumTasks: n, Timeout: 30 * time.Second}, func(tk *Task) error {
		in := []float64{float64(tk.Rank())}
		out := []float64{0}
		for i := 0; i < 50; i++ {
			if i == 3 && tk.Rank() == victim {
				panic(killErr(victim))
			}
			Allreduce(tk, nil, in, out, OpSum)
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil error")
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		t.Fatalf("run hit the timeout backstop instead of failing fast: %v", err)
	}
	for r, re := range w.RankErrors() {
		if re == nil {
			t.Errorf("rank %d finished without error despite the kill", r)
			continue
		}
		if r == victim {
			var rf *RankFailure
			if !errors.As(re, &rf) || rf.Rank != victim {
				t.Errorf("victim error = %v, want *RankFailure", re)
			}
			continue
		}
		var dre *DeadRankError
		var ce *CancelledError
		if !errors.As(re, &dre) && !errors.As(re, &ce) {
			t.Errorf("rank %d error = %T %v, want typed failure", r, re, re)
		}
	}
}

func TestTimeoutCancelsAndDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := Run(Config{NumTasks: 4, Timeout: 100 * time.Millisecond}, func(tk *Task) error {
		var buf [1]int
		Recv(tk, nil, buf[:], (tk.Rank()+1)%4, 99) // nobody sends: stuck
		return nil
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if len(te.Tasks) != 4 {
		t.Errorf("TimeoutError.Tasks has %d entries, want 4", len(te.Tasks))
	}
	// The cancellation must have unwound the blocked tasks: poll until the
	// goroutine count settles back to (about) the baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDeadlockWatchdogDetectsRecvCycle(t *testing.T) {
	w, err := Run(Config{NumTasks: 2, Watchdog: 10 * time.Millisecond, Timeout: 10 * time.Second},
		func(tk *Task) error {
			var buf [1]int
			// Both ranks receive first: a classic exchange deadlock.
			Recv(tk, nil, buf[:], (tk.Rank()+1)%2, 0)
			Send(tk, nil, buf[:], (tk.Rank()+1)%2, 0)
			return nil
		})
	if err == nil {
		t.Fatal("Run returned nil error for a deadlocked program")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Tasks) != 2 {
		t.Fatalf("DeadlockError.Tasks has %d entries, want 2", len(de.Tasks))
	}
	for _, ts := range de.Tasks {
		if ts.BlockedOn == "" {
			t.Errorf("rank %d has empty BlockedOn in deadlock report", ts.Rank)
		}
	}
	for r, re := range w.RankErrors() {
		var ce *CancelledError
		if !errors.As(re, &ce) {
			t.Errorf("rank %d error = %v, want *CancelledError", r, re)
		}
	}
}

func TestDeadlockWatchdogNoFalsePositive(t *testing.T) {
	// A healthy ping-pong across many iterations with an aggressive
	// watchdog interval: progress bumps must suppress detection.
	_, err := Run(Config{NumTasks: 2, Watchdog: 2 * time.Millisecond, Timeout: 30 * time.Second},
		func(tk *Task) error {
			buf := []int{0}
			for i := 0; i < 300; i++ {
				if tk.Rank() == 0 {
					Send(tk, nil, buf, 1, 0)
					Recv(tk, nil, buf, 1, 0)
				} else {
					Recv(tk, nil, buf, 0, 0)
					Send(tk, nil, buf, 0, 0)
				}
				if i%50 == 0 {
					time.Sleep(3 * time.Millisecond) // spans several scans
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("healthy program reported error: %v", err)
	}
}

func TestDeadlockWatchdogIgnoresBusyTasks(t *testing.T) {
	// One rank blocked, one busy in user code (BlockedOn == ""): not a
	// deadlock, must run to the real completion.
	_, err := Run(Config{NumTasks: 2, Watchdog: 5 * time.Millisecond, Timeout: 30 * time.Second},
		func(tk *Task) error {
			buf := []int{0}
			if tk.Rank() == 0 {
				Recv(tk, nil, buf, 1, 0)
				return nil
			}
			time.Sleep(100 * time.Millisecond) // "computing"
			Send(tk, nil, buf, 0, 0)
			return nil
		})
	if err != nil {
		t.Fatalf("healthy program reported error: %v", err)
	}
}

func TestCancelFromOutside(t *testing.T) {
	var w *World
	w, _ = NewWorld(Config{NumTasks: 2})
	go func() {
		time.Sleep(30 * time.Millisecond)
		w.Cancel(errors.New("operator abort"))
	}()
	err := w.Run(func(tk *Task) error {
		var buf [1]int
		Recv(tk, nil, buf[:], (tk.Rank()+1)%2, 0)
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil after external Cancel")
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want to contain *CancelledError", err)
	}
}

func TestRequestErrSurfacesTypedFailure(t *testing.T) {
	w, err := Run(Config{NumTasks: 2, Timeout: 10 * time.Second}, func(tk *Task) error {
		switch tk.Rank() {
		case 1:
			panic(killErr(1))
		case 0:
			var buf [1]int
			req := Irecv(tk, nil, buf[:], 1, 0)
			req.Wait()
			if e := req.Err(); e == nil {
				return errors.New("Err() = nil for a failed request")
			}
			var dre *DeadRankError
			if e := req.Err(); !errors.As(e, &dre) {
				return fmt.Errorf("Err() = %v, want *DeadRankError", e)
			}
			return nil
		}
		return nil
	})
	if w.RankErrors()[0] != nil {
		t.Fatalf("rank 0: %v", w.RankErrors()[0])
	}
	_ = err
}
