package mpi

import (
	"sync"
	"sync/atomic"
)

// failureState is the world's per-rank failure bookkeeping. The fast
// paths only ever touch the dead/finished atomics; the mutex guards the
// slow path taken when a rank actually dies or the world is cancelled.
type failureState struct {
	dead     []atomic.Bool // rank failed (panicked or was killed)
	finished []atomic.Bool // task body returned (normally or not)

	// cancelFlag is the lock-free fast path of Cancelled, checked on
	// every posted receive.
	cancelFlag atomic.Bool

	mu        sync.Mutex
	causes    map[int]error // rank -> what killed it
	handlers  []func(rank int, cause error)
	reporters []func() string
	cancelled error      // non-nil once the world has been cancelled
	shm       []*shmColl // fast-path collective state, aborted on failure
}

func (w *World) initFailure() {
	w.fail.dead = make([]atomic.Bool, w.cfg.NumTasks)
	w.fail.finished = make([]atomic.Bool, w.cfg.NumTasks)
	w.fail.causes = make(map[int]error)
}

// OnFailure registers a handler invoked when a rank dies (rank >= 0) or
// the world is cancelled (rank == -1, e.g. by the deadlock watchdog or
// the Run timeout). Layers holding their own synchronization state (the
// HLS registry's barriers, RMA windows' epoch channels and passive
// locks) register here so their blocked tasks fail fast alongside the
// message layer's. Register before Run; handlers must not block.
func (w *World) OnFailure(h func(rank int, cause error)) {
	w.fail.mu.Lock()
	w.fail.handlers = append(w.fail.handlers, h)
	w.fail.mu.Unlock()
}

// AddBlockReporter registers a callback whose output is appended to
// deadlock diagnostics (e.g. the HLS registry's per-rank directive
// counters). Callbacks run off the critical path, on the watchdog
// goroutine.
func (w *World) AddBlockReporter(f func() string) {
	w.fail.mu.Lock()
	w.fail.reporters = append(w.fail.reporters, f)
	w.fail.mu.Unlock()
}

// rankDead reports whether world rank r has failed. Valid rank required.
func (w *World) rankDead(r int) bool { return w.fail.dead[r].Load() }

// RankDead reports whether world rank r has failed.
func (w *World) RankDead(r int) bool {
	return r >= 0 && r < len(w.fail.dead) && w.fail.dead[r].Load()
}

// FailedRanks returns the world ranks that died, in rank order.
func (w *World) FailedRanks() []int {
	var out []int
	for r := range w.fail.dead {
		if w.fail.dead[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// FailureCause returns what killed rank r, or nil if it is alive.
func (w *World) FailureCause(r int) error {
	w.fail.mu.Lock()
	defer w.fail.mu.Unlock()
	return w.fail.causes[r]
}

// Cancelled returns the cancellation cause, or nil while the world runs
// normally. The nil path is a single atomic load.
func (w *World) Cancelled() error {
	if !w.fail.cancelFlag.Load() {
		return nil
	}
	w.fail.mu.Lock()
	defer w.fail.mu.Unlock()
	return w.fail.cancelled
}

// rankFailed records the death of rank r and unblocks every operation
// that can no longer complete:
//
//   - posted receives (and probes) whose specific source is r complete
//     with a DeadRankError;
//   - rendezvous senders whose message sits unmatched in r's queue have
//     their requests failed, so their blocking Send unwinds;
//   - registered failure handlers run, aborting HLS barriers whose
//     instance contains r and poisoning RMA epochs towards r.
//
// It runs on the dying rank's goroutine, from Run's recover.
func (w *World) rankFailed(r int, cause error) {
	if w.fail.dead[r].Swap(true) {
		return // already recorded
	}
	w.fail.mu.Lock()
	w.fail.causes[r] = cause
	handlers := append([]func(rank int, cause error){}, w.fail.handlers...)
	w.fail.mu.Unlock()

	// Fail the rendezvous senders parked on messages r will never match.
	// The dead flag is already set, so sends racing with this scan either
	// observe it in isend or are failed here (both orderings are covered
	// by ep.mu).
	epDead := w.eps[r]
	epDead.mu.Lock()
	epDead.eachUnexpectedLocked(func(msg *message) {
		if msg.rendezvous && msg.sreq != nil {
			msg.sreq.fail(&DeadRankError{Rank: -1, Op: "Send", Dead: r})
		}
	})
	epDead.mu.Unlock()

	// Fail every pending receive that names r as its source, and wake the
	// probes so they re-check the dead set.
	for dst, ep := range w.eps {
		if dst == r {
			continue
		}
		ep.mu.Lock()
		ep.failRecvsLocked(func(pr *postedRecv) error {
			if pr.worldSrc != r {
				return nil
			}
			return &DeadRankError{Rank: pr.recvRank, Op: "Recv", Dead: r}
		})
		ep.wakeAllLocked()
		ep.mu.Unlock()
	}

	for _, h := range handlers {
		h(r, cause)
	}

	// A distributed world also fails the wire transactions naming r and,
	// when r died here, tells the other processes so they cascade too.
	if w.net != nil {
		w.net.onRankFailed(r, cause)
	}
}

// cancel abandons the world: every pending receive and rendezvous send
// fails with a CancelledError wrapping cause, probes wake, and failure
// handlers run with rank -1 so higher layers (HLS barriers, RMA epochs)
// release their own waiters. Tasks blocked in runtime operations unwind
// with typed errors; tasks blocked outside the runtime (user code) are
// beyond reach and reported as leaked by Run.
func (w *World) cancel(cause error) {
	w.fail.mu.Lock()
	if w.fail.cancelled != nil {
		w.fail.mu.Unlock()
		return
	}
	w.fail.cancelled = cause
	handlers := append([]func(rank int, cause error){}, w.fail.handlers...)
	w.fail.mu.Unlock()
	w.fail.cancelFlag.Store(true)

	for _, ep := range w.eps {
		ep.mu.Lock()
		ep.failRecvsLocked(func(pr *postedRecv) error {
			return &CancelledError{Rank: pr.recvRank, Op: "Recv", Cause: cause}
		})
		ep.eachUnexpectedLocked(func(msg *message) {
			if msg.rendezvous && msg.sreq != nil {
				msg.sreq.fail(&CancelledError{Rank: -1, Op: "Send", Cause: cause})
			}
		})
		ep.wakeAllLocked()
		ep.mu.Unlock()
	}

	for _, h := range handlers {
		h(-1, cause)
	}

	if w.net != nil {
		w.net.failAll(cause)
	}
}

// Cancel aborts a running world with the given cause (nil is replaced by
// a generic cancellation error). Exposed for harnesses that need to tear
// a world down from outside (e.g. on SIGINT).
func (w *World) Cancel(cause error) {
	if cause == nil {
		cause = &Error{Rank: -1, Op: "Cancel", Msg: "world cancelled"}
	}
	w.cancel(cause)
}

// checkReq panics with a typed, rank/op-attributed error if the request
// failed. Called by every blocking wrapper after Wait returns.
func (t *Task) checkReq(op string, r *Request) {
	err := r.err
	if err == nil {
		return
	}
	switch e := err.(type) {
	case *DeadRankError:
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: e.Dead})
	case *CancelledError:
		panic(&CancelledError{Rank: t.rank, Op: op, Cause: e.Cause})
	default:
		panic(err)
	}
}

// checkPeer raises a DeadRankError if the peer world rank is already
// dead, and a CancelledError if the world has been cancelled — the
// fail-fast path for operations started after a failure.
func (t *Task) checkPeer(op string, worldPeer int) {
	w := t.world
	if worldPeer >= 0 && w.rankDead(worldPeer) {
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldPeer})
	}
	if c := w.Cancelled(); c != nil {
		panic(&CancelledError{Rank: t.rank, Op: op, Cause: c})
	}
}

// taskStates snapshots every rank's blocking state for diagnostics.
func (w *World) taskStates() []TaskState {
	out := make([]TaskState, len(w.eps))
	for r, ep := range w.eps {
		st := ep.blockedDesc()
		out[r] = TaskState{
			Rank:      r,
			BlockedOn: st,
			Finished:  w.fail.finished[r].Load(),
			Dead:      w.fail.dead[r].Load(),
			Progress:  ep.progress.Load(),
		}
	}
	return out
}

// blockReports runs the registered diagnostic callbacks.
func (w *World) blockReports() []string {
	w.fail.mu.Lock()
	reporters := append([]func() string(nil), w.fail.reporters...)
	w.fail.mu.Unlock()
	var out []string
	for _, f := range reporters {
		if s := f(); s != "" {
			out = append(out, s)
		}
	}
	return out
}
