package mpi

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Status describes a completed receive.
type Status struct {
	// Source is the rank of the sender within the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the number of elements received.
	Count int
	// Bytes is the payload size in bytes.
	Bytes int
}

// message is an in-flight point-to-point message. Messages are pooled;
// every field is reset when the message is recycled. The payload is not
// a typed slice but a byte view plus an element-type token, so the
// delivery path needs no per-send closure (the former deliver-func
// captured the typed buffer and allocated on every send).
type message struct {
	ctx   int64 // communication context (per communicator, user vs collective)
	src   int   // sender rank within the communicator
	tag   int
	elems int
	bytes int
	seq   uint64 // arrival order within the endpoint, set at enqueue

	// etype is the element type of the sender's buffer, compared against
	// the receiver's on delivery (MPI datatype matching).
	etype reflect.Type

	// sdata is the payload as bytes: a view of the pooled eager buffer
	// once the message is queued unexpected, or of the sender's own
	// buffer while the send call is still on the stack (posted-match
	// delivery, rendezvous).
	sdata []byte
	// sdt, when non-nil, is the strided layout sdata is viewed through
	// (a derived datatype): elems/bytes count the selected elements, and
	// the delivery path runs the strided kernels. Cleared whenever the
	// payload is packed into an intermediate buffer, so sdt != nil
	// always means "sdata is the sender's raw strided buffer".
	sdt *Datatype
	// sptr identifies the sender's buffer for same-address copy elision.
	sptr unsafe.Pointer
	// payload is the pooled eager buffer backing sdata (nil while sdata
	// still views the sender's buffer, and always nil for rendezvous).
	payload *eagerBuf

	// rendezvous marks a synchronizing send: sreq completes only at
	// delivery, and the sender's blocking Send waits for it.
	rendezvous bool
	sreq       *Request

	// kindOnly relaxes datatype matching to reflect.Kind equality: set on
	// messages that crossed the wire, where the concrete Go type cannot
	// travel and only its kind is encoded in the frame header.
	kindOnly bool

	// wireXid, when non-zero, marks a remote rendezvous RTS: the payload
	// has not arrived yet, and matching this message means answering CTS
	// to node wireNode (sender's world rank wireSrc) instead of copying.
	wireXid  uint64
	wireNode int
	wireSrc  int

	meta any // hooks.OnSend payload

	// span / sendNs carry the tracing context (TraceHooks.SpanStart)
	// from send to delivery; zero when tracing is off. For messages that
	// crossed the wire they are recovered from the frame extension.
	span   uint64
	sendNs int64
}

var messagePool = sync.Pool{New: func() any { return new(message) }}

func getMessage() *message { return messagePool.Get().(*message) }

func putMessage(m *message) {
	*m = message{}
	messagePool.Put(m)
}

// postedRecv is a receive waiting for a matching message. Pooled, like
// message, and described in bytes for the same reason.
type postedRecv struct {
	ctx      int64
	src, tag int
	seq      uint64 // post order within the endpoint

	etype  reflect.Type
	rdata  []byte // receiver's buffer as bytes
	relems int
	rptr   unsafe.Pointer
	// rdt, when non-nil, is the strided layout the payload is scattered
	// into on delivery; relems is then the layout's element count.
	rdt *Datatype

	req      *Request
	recvRank int // world rank of the receiver
	worldSrc int // world rank of the expected source (-1 for AnySource),
	// so the failure layer can fail receives from a dead rank without
	// communicator lookups.

	// postNs is when the receive was posted on the tracer's clock (zero
	// when tracing is off): delivery minus post is the receiver's wait.
	postNs int64
}

var postedRecvPool = sync.Pool{New: func() any { return new(postedRecv) }}

func getPostedRecv() *postedRecv { return postedRecvPool.Get().(*postedRecv) }

func putPostedRecv(pr *postedRecv) {
	*pr = postedRecv{}
	postedRecvPool.Put(pr)
}

// bytesOf reinterprets a Scalar slice as its underlying bytes. Scalar
// types carry no pointers, so the view is GC-safe; the view shares the
// slice's backing array and keeps it alive.
func bytesOf[T Scalar](buf []T) []byte {
	if len(buf) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(buf)*int(unsafe.Sizeof(buf[0])))
}

// ptrOf returns the identity of a slice's backing array (nil when empty).
func ptrOf[T Scalar](buf []T) unsafe.Pointer {
	if len(buf) == 0 {
		return nil
	}
	return unsafe.Pointer(&buf[0])
}

// epKey addresses one matching bucket: all traffic of one (communication
// context, source rank) pair.
type epKey struct {
	ctx int64
	src int
}

// epBucket holds the posted receives and unexpected messages of one
// (ctx, src) pair, each a FIFO implemented as a slice with a head index
// whose backing array is reused once drained. cond is created lazily for
// probes blocked on this bucket, so an unexpected arrival wakes only the
// waiters that could match it (plus wildcard waiters) instead of
// broadcasting to every blocked probe on the endpoint.
type epBucket struct {
	recvs []*postedRecv
	rhead int
	msgs  []*message
	mhead int

	cond    *sync.Cond
	waiters int
}

func (b *epBucket) pushRecv(pr *postedRecv) {
	if b.rhead == len(b.recvs) {
		b.recvs = b.recvs[:0]
		b.rhead = 0
	}
	b.recvs = append(b.recvs, pr)
}

func (b *epBucket) pushMsg(m *message) {
	if b.mhead == len(b.msgs) {
		b.msgs = b.msgs[:0]
		b.mhead = 0
	}
	b.msgs = append(b.msgs, m)
}

// takeRecv removes and returns the posted receive at index i.
func (b *epBucket) takeRecv(i int) *postedRecv {
	pr := b.recvs[i]
	if i == b.rhead {
		b.recvs[i] = nil
		b.rhead++
	} else {
		copy(b.recvs[i:], b.recvs[i+1:])
		b.recvs[len(b.recvs)-1] = nil
		b.recvs = b.recvs[:len(b.recvs)-1]
	}
	return pr
}

// takeMsg removes and returns the unexpected message at index i.
func (b *epBucket) takeMsg(i int) *message {
	m := b.msgs[i]
	if i == b.mhead {
		b.msgs[i] = nil
		b.mhead++
	} else {
		copy(b.msgs[i:], b.msgs[i+1:])
		b.msgs[len(b.msgs)-1] = nil
		b.msgs = b.msgs[:len(b.msgs)-1]
	}
	return m
}

// prQueue is the wildcard (AnySource) posted-receive FIFO.
type prQueue struct {
	items []*postedRecv
	head  int
}

func (q *prQueue) push(pr *postedRecv) {
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, pr)
}

func (q *prQueue) take(i int) *postedRecv {
	pr := q.items[i]
	if i == q.head {
		q.items[i] = nil
		q.head++
	} else {
		copy(q.items[i:], q.items[i+1:])
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
	}
	return pr
}

// endpoint is the per-rank message engine. Matching state is bucketed by
// (communication context, source): an incoming message consults exactly
// one bucket plus the wildcard queue, so the common exact-match case is
// O(1) instead of a linear scan of every pending operation on the rank.
type endpoint struct {
	rank int

	mu      sync.Mutex
	buckets map[epKey]*epBucket
	wild    prQueue // posted receives with src == AnySource, any context

	postSeq uint64 // posted-receive sequence, orders bucket vs wildcard
	arrSeq  uint64 // unexpected-arrival sequence, orders AnySource matches

	// wildCond wakes AnySource probes (and, on failure/cancel, every
	// probe; the failure paths broadcast the per-bucket conds too).
	wildCond    *sync.Cond
	wildWaiters int

	// blocked-state publication for the deadlock watchdog and timeout
	// diagnostics. blockLabel holds a pre-boxed static string (hot paths
	// never format); blockPeer/blockTag carry the p2p operands, rendered
	// off the critical path. blockPeer == blockNone means no operands.
	blockLabel atomic.Value
	blockPeer  atomic.Int64
	blockTag   atomic.Int64

	// progress counts blocking-state transitions; the deadlock watchdog
	// samples the world-wide sum to distinguish a stall from slow
	// progress.
	progress atomic.Int64

	// statistics, updated under mu
	unexpectedBytes     int
	peakUnexpectedBytes int
	recvCount           int64
	matchProbes         int64
}

const blockNone = int64(-1 << 62)

func newEndpoint(rank int) *endpoint {
	ep := &endpoint{rank: rank, buckets: make(map[epKey]*epBucket)}
	ep.wildCond = sync.NewCond(&ep.mu)
	ep.blockLabel.Store("")
	ep.blockPeer.Store(blockNone)
	return ep
}

// blockedDesc renders the endpoint's published blocking state. Runs only
// on diagnostic paths (watchdog, timeout).
func (ep *endpoint) blockedDesc() string {
	label, _ := ep.blockLabel.Load().(string)
	if label == "" {
		return ""
	}
	peer := ep.blockPeer.Load()
	if peer == blockNone {
		return label
	}
	tag := ep.blockTag.Load()
	switch label {
	case "Send":
		return fmt.Sprintf("Send(dst=%d, tag=%d) rendezvous", peer, tag)
	default:
		return fmt.Sprintf("%s(src=%d, tag=%d)", label, peer, tag)
	}
}

// bucket returns (creating on first use) the bucket for key.
func (ep *endpoint) bucket(key epKey) *epBucket {
	b := ep.buckets[key]
	if b == nil {
		b = &epBucket{}
		ep.buckets[key] = b
	}
	return b
}

// matchRecvLocked finds, removes and returns the earliest-posted receive
// matching an incoming (ctx, src, tag) message, merging the (ctx, src)
// bucket with the wildcard queue by post sequence — the MPI rule that a
// message matches the first receive, in post order, whose source and tag
// patterns accept it. Returns nil if no posted receive matches. Caller
// holds ep.mu.
func (ep *endpoint) matchRecvLocked(ctx int64, src, tag int) (*postedRecv, int) {
	probes := 0
	b := ep.buckets[epKey{ctx, src}]
	bIdx := -1
	if b != nil {
		for i := b.rhead; i < len(b.recvs); i++ {
			probes++
			pr := b.recvs[i]
			if pr.tag == AnyTag || pr.tag == tag {
				bIdx = i
				break
			}
		}
	}
	wIdx := -1
	for i := ep.wild.head; i < len(ep.wild.items); i++ {
		// Count every entry the scan examines, including wildcard
		// receives of other contexts: MatchProbes measures work done by
		// the matcher, not just candidates that passed the ctx filter.
		probes++
		pr := ep.wild.items[i]
		if pr.ctx != ctx {
			continue
		}
		if pr.tag == AnyTag || pr.tag == tag {
			wIdx = i
			break
		}
	}
	ep.matchProbes += int64(probes)
	switch {
	case bIdx < 0 && wIdx < 0:
		return nil, probes
	case wIdx < 0 || (bIdx >= 0 && b.recvs[bIdx].seq < ep.wild.items[wIdx].seq):
		ep.recvCount++
		return b.takeRecv(bIdx), probes
	default:
		ep.recvCount++
		return ep.wild.take(wIdx), probes
	}
}

// matchUnexpectedLocked finds, removes and returns the earliest-arrived
// unexpected message matching a newly posted receive: the (ctx, src)
// bucket for a specific source, or the minimum arrival sequence across
// the context's buckets for AnySource. Caller holds ep.mu.
func (ep *endpoint) matchUnexpectedLocked(ctx int64, src, tag int) (*message, int) {
	probes := 0
	defer func() { ep.matchProbes += int64(probes) }()
	if src != AnySource {
		b := ep.buckets[epKey{ctx, src}]
		if b == nil {
			return nil, probes
		}
		for i := b.mhead; i < len(b.msgs); i++ {
			probes++
			m := b.msgs[i]
			if tag == AnyTag || tag == m.tag {
				ep.dequeuedUnexpected(m)
				return b.takeMsg(i), probes
			}
		}
		return nil, probes
	}
	// AnySource: the earliest matching arrival across every bucket of
	// this context. Buckets exist only for (ctx, src) pairs that have
	// seen traffic, so the scan is over active sources, not world size.
	var bestB *epBucket
	bestI := -1
	var bestSeq uint64
	for key, b := range ep.buckets {
		if key.ctx != ctx {
			continue
		}
		for i := b.mhead; i < len(b.msgs); i++ {
			probes++
			m := b.msgs[i]
			if tag == AnyTag || tag == m.tag {
				if bestI < 0 || m.seq < bestSeq {
					bestB, bestI, bestSeq = b, i, m.seq
				}
				break // later entries of this bucket arrived later
			}
		}
	}
	if bestI < 0 {
		return nil, probes
	}
	m := bestB.msgs[bestI]
	ep.dequeuedUnexpected(m)
	return bestB.takeMsg(bestI), probes
}

// findUnexpectedLocked is matchUnexpectedLocked without removal: the
// Probe path, returning the Status of the earliest matching unexpected
// message. Caller holds ep.mu.
func (ep *endpoint) findUnexpectedLocked(ctx int64, src, tag int) (Status, bool) {
	probes := 0
	defer func() { ep.matchProbes += int64(probes) }()
	status := func(m *message) Status {
		return Status{Source: m.src, Tag: m.tag, Count: m.elems, Bytes: m.bytes}
	}
	if src != AnySource {
		b := ep.buckets[epKey{ctx, src}]
		if b == nil {
			return Status{}, false
		}
		for i := b.mhead; i < len(b.msgs); i++ {
			probes++
			m := b.msgs[i]
			if tag == AnyTag || tag == m.tag {
				return status(m), true
			}
		}
		return Status{}, false
	}
	var best *message
	for key, b := range ep.buckets {
		if key.ctx != ctx {
			continue
		}
		for i := b.mhead; i < len(b.msgs); i++ {
			probes++
			m := b.msgs[i]
			if tag == AnyTag || tag == m.tag {
				if best == nil || m.seq < best.seq {
					best = m
				}
				break
			}
		}
	}
	if best == nil {
		return Status{}, false
	}
	return status(best), true
}

// eachUnexpectedLocked visits every queued unexpected message — the
// failure layer's scan for parked rendezvous senders. Caller holds ep.mu.
func (ep *endpoint) eachUnexpectedLocked(f func(*message)) {
	for _, b := range ep.buckets {
		for i := b.mhead; i < len(b.msgs); i++ {
			f(b.msgs[i])
		}
	}
}

// failRecvsLocked removes and fails every posted receive for which sel
// returns a non-nil error, across all buckets and the wildcard queue.
// Caller holds ep.mu.
func (ep *endpoint) failRecvsLocked(sel func(*postedRecv) error) {
	for _, b := range ep.buckets {
		kept := b.recvs[:0]
		for i := b.rhead; i < len(b.recvs); i++ {
			pr := b.recvs[i]
			if err := sel(pr); err != nil {
				pr.req.fail(err)
				putPostedRecv(pr)
			} else {
				kept = append(kept, pr)
			}
		}
		b.recvs = kept
		b.rhead = 0
	}
	kept := ep.wild.items[:0]
	for i := ep.wild.head; i < len(ep.wild.items); i++ {
		pr := ep.wild.items[i]
		if err := sel(pr); err != nil {
			pr.req.fail(err)
			putPostedRecv(pr)
		} else {
			kept = append(kept, pr)
		}
	}
	ep.wild.items = kept
	ep.wild.head = 0
}

// enqueueUnexpected queues msg (whose payload must already be stable —
// pooled or rendezvous-pinned) and wakes matching probes. Caller holds
// ep.mu; the bucket is passed in from the failed match.
func (ep *endpoint) enqueueUnexpected(b *epBucket, msg *message) {
	ep.arrSeq++
	msg.seq = ep.arrSeq
	b.pushMsg(msg)
	ep.unexpectedBytes += msg.bytes
	if ep.unexpectedBytes > ep.peakUnexpectedBytes {
		ep.peakUnexpectedBytes = ep.unexpectedBytes
	}
	if b.waiters > 0 {
		b.cond.Broadcast()
	}
	if ep.wildWaiters > 0 {
		ep.wildCond.Broadcast()
	}
}

func (ep *endpoint) dequeuedUnexpected(m *message) {
	ep.unexpectedBytes -= m.bytes
	ep.recvCount++
}

// wakeAllLocked wakes every blocked probe — the failure layer's path, so
// they re-check the dead/cancelled flags. Caller holds ep.mu.
func (ep *endpoint) wakeAllLocked() {
	ep.wildCond.Broadcast()
	for _, b := range ep.buckets {
		if b.waiters > 0 {
			b.cond.Broadcast()
		}
	}
}

type worldStats struct {
	messages            atomic.Int64
	bytes               atomic.Int64
	rendezvous          atomic.Int64
	sameAddrSkips       atomic.Int64
	directDeliveries    atomic.Int64
	packElisions        atomic.Int64
	collectives         atomic.Int64
	sharedCollectives   atomic.Int64
	twoLevelCollectives atomic.Int64
}

// Stats is a snapshot of runtime communication statistics.
type Stats struct {
	Messages      int64 // point-to-point messages delivered
	Bytes         int64 // payload bytes carried
	Rendezvous    int64 // messages that used the rendezvous protocol
	SameAddrSkips int64 // deliveries elided because src and dst buffers were identical
	Collectives   int64 // collective operations started (per task)

	// DirectDeliveries counts eager messages that found their receive
	// already posted and were copied sender-buffer → receiver-buffer in
	// one step, skipping the intermediate pooled payload entirely.
	DirectDeliveries int64

	// PackElisions counts typed (derived-datatype) transfers delivered
	// strided-to-strided between the task buffers, with no intermediate
	// packed copy — the shared-address-space pack-elision fast path.
	PackElisions int64

	// SharedCollectives counts collectives completed (per task) on the
	// shared-address-space fast path, i.e. without point-to-point
	// messages. Zero when the world runs with CollChannels or hooks that
	// did not opt in. In a two-level world the node-local phases run on
	// the fast path, so this also counts once per phase per task.
	SharedCollectives int64

	// TwoLevelCollectives counts collectives completed (per task) via the
	// two-level node-leader decomposition of a distributed world. Zero
	// for single-process worlds and under CollChannels.
	TwoLevelCollectives int64

	// PeakUnexpectedBytes is the maximum, over ranks, of bytes buffered in
	// an unexpected-message queue at any time: the runtime's eager-buffer
	// watermark, used by the memory models. It counts message payload
	// bytes, not the (power-of-two-rounded) pooled capacity behind them.
	PeakUnexpectedBytes int

	// MatchProbes is the total number of queue entries examined by the
	// matching engine, across message injections and receive postings.
	// With bucketed matching it stays close to the message count (one
	// probe per exact match); the linear scans it replaced grew with the
	// number of pending operations.
	MatchProbes int64

	// EagerPoolHits / EagerPoolMisses / EagerPoolRecycledBytes /
	// EagerPoolOutstanding describe the eager-payload pool: acquisitions
	// served from the pool, acquisitions that allocated, bytes of
	// capacity returned for reuse, and buffers currently pinned by
	// in-flight messages (zero once every message has been consumed).
	EagerPoolHits          int64
	EagerPoolMisses        int64
	EagerPoolRecycledBytes int64
	EagerPoolOutstanding   int64
}

// Stats returns a snapshot of the world's communication statistics.
func (w *World) Stats() Stats {
	s := Stats{
		Messages:         w.stats.messages.Load(),
		Bytes:            w.stats.bytes.Load(),
		Rendezvous:       w.stats.rendezvous.Load(),
		SameAddrSkips:    w.stats.sameAddrSkips.Load(),
		DirectDeliveries: w.stats.directDeliveries.Load(),
		PackElisions:     w.stats.packElisions.Load(),
		Collectives:      w.stats.collectives.Load(),

		SharedCollectives:   w.stats.sharedCollectives.Load(),
		TwoLevelCollectives: w.stats.twoLevelCollectives.Load(),

		EagerPoolHits:          w.pool.hits.Load(),
		EagerPoolMisses:        w.pool.misses.Load(),
		EagerPoolRecycledBytes: w.pool.recycled.Load(),
		EagerPoolOutstanding:   w.pool.outstanding(),
	}
	for _, ep := range w.eps {
		ep.mu.Lock()
		if ep.peakUnexpectedBytes > s.PeakUnexpectedBytes {
			s.PeakUnexpectedBytes = ep.peakUnexpectedBytes
		}
		s.MatchProbes += ep.matchProbes
		ep.mu.Unlock()
	}
	return s
}

// inject delivers msg to the endpoint of world rank dstWorld: either it
// matches an already-posted receive — then the payload moves straight
// from the sender's buffer into the receiver's, the single-copy fast
// path — or it is copied once into a pooled eager buffer and queued as
// unexpected (rendezvous messages queue without a payload; the sender's
// buffer is pinned until delivery). It reports false — without
// delivering — when the destination rank is dead, so the sender can fail
// fast; the check is made under ep.mu, which orders it against the
// failure layer's scan of the same endpoint.
//
// inject must run on the sending task's goroutine, while msg.sdata still
// views the sender's live buffer.
func (w *World) inject(msg *message, srcWorld, dstWorld int) bool {
	ep := w.eps[dstWorld]

	ep.mu.Lock()
	if w.rankDead(dstWorld) {
		ep.mu.Unlock()
		return false
	}
	w.stats.messages.Add(1)
	w.stats.bytes.Add(int64(msg.bytes))
	pr, probes := ep.matchRecvLocked(msg.ctx, msg.src, msg.tag)
	if pr != nil {
		ep.mu.Unlock()
		probeHook(w, dstWorld, probes)
		if msg.payload == nil && !msg.rendezvous && msg.bytes > 0 {
			// The intermediate eager copy never happened: count the
			// elision the same way the same-address skip is counted.
			w.stats.directDeliveries.Add(1)
			if w.msgHooks != nil {
				w.msgHooks.OnCopyElided(dstWorld, msg.bytes)
			}
		}
		w.deliverTo(msg, pr)
		return true
	}
	b := ep.bucket(epKey{msg.ctx, msg.src})
	if !msg.rendezvous && msg.payload == nil && msg.bytes > 0 {
		// No receive posted: the payload must outlive the send call.
		// Copy it (once) into a pooled buffer. The copy runs under ep.mu,
		// which keeps enqueue order equal to send order; it is bounded by
		// EagerLimit. A typed message packs here — datapath (1), the
		// generic pack into a pooled intermediate.
		msg.payload = w.pool.get(srcWorld, msg.bytes)
		if msg.sdt != nil {
			dtPack(msg.payload.data, msg.sdata, msg.sdt, int(msg.etype.Size()))
			msg.sdt = nil
		} else {
			copy(msg.payload.data, msg.sdata)
		}
		msg.sdata = msg.payload.data[:msg.bytes]
	}
	ep.enqueueUnexpected(b, msg)
	ep.mu.Unlock()
	probeHook(w, dstWorld, probes)
	return true
}

// probeHook forwards a match-probe count to the PoolHooks extension; the
// exact totals also live in ep.matchProbes (updated under the lock), the
// hook adds rank attribution. Split out so the no-hooks fast path is a
// nil check.
func probeHook(w *World, rank, probes int) {
	if w.poolHooks != nil {
		w.poolHooks.OnMatchProbes(rank, probes)
	}
}

// deliverTo copies the payload into the posted receive's buffer, completes
// the receive request (and the sender's rendezvous request), releases the
// pooled payload, recycles the message and posted receive, and fires the
// delivery hook.
//
// Delivery can run on either side's goroutine: the receiver's when an
// unexpected message is matched at post time, the sender's when inject
// finds an already-posted receive. A payload error (truncation, datatype
// mismatch) is the *receiver's* error, and by the time deliverTo runs the
// posted receive has been removed from the endpoint — if the error
// escaped here on the sender's goroutine, the receiver's request would be
// orphaned (invisible to the failure cascade, never completed) and the
// receiver would hang until the watchdog. So the error is routed into the
// receive request instead, where the receiver's checkReq re-raises it; the
// sender's rendezvous handshake still completes (the payload left the
// sender correctly — the mismatch is on the receiving side).
func (w *World) deliverTo(msg *message, pr *postedRecv) {
	if msg.wireXid != 0 {
		// Remote rendezvous: the payload is still on the sender's node.
		// Hand the matched pair to the wire layer, which validates, sends
		// CTS, and completes the receive when the data frame lands.
		w.net.matchedRTS(msg, pr)
		return
	}
	var err error
	switch {
	case !typesMatch(msg, pr):
		err = &Error{Rank: pr.recvRank, Op: "Recv",
			Msg: fmt.Sprintf("datatype mismatch: receive buffer is []%v, message holds []%v", pr.etype, msg.etype)}
	case msg.elems > pr.relems:
		err = &Error{Rank: pr.recvRank, Op: "Recv",
			Msg: fmt.Sprintf("message truncated: %d elements into buffer of %d", msg.elems, pr.relems)}
	case msg.sptr != nil && msg.sptr == pr.rptr && sameLayout(msg.sdt, pr.rdt):
		// Send and receive buffers are the same memory (and, for typed
		// transfers, the same layout): skip the copy. This is MPC's
		// intra-node optimization that removes Tachyon's rank-0 image
		// copies once the image is an HLS variable.
		w.stats.sameAddrSkips.Add(1)
		if w.msgHooks != nil {
			w.msgHooks.OnCopyElided(pr.recvRank, msg.bytes)
		}
	case msg.sdt == nil && pr.rdt == nil:
		copy(pr.rdata, msg.sdata)
	default:
		// Typed delivery. When the payload still views the sender's raw
		// buffer (no pooled intermediate), this is datapath (2): one
		// strided-to-strided pass between the task buffers — the pack
		// elision the shared address space makes possible. With a packed
		// intermediate (unexpected-queue or wire payloads, msg.sdt
		// already nil) only the unpack side runs.
		dtCopy(pr.rdata, pr.rdt, msg.sdata, msg.sdt, int(pr.etype.Size()))
		if msg.payload == nil && !msg.kindOnly {
			w.notePackElided(pr.recvRank, msg.bytes)
		}
	}
	if msg.rendezvous && msg.sreq != nil {
		msg.sreq.complete(Status{})
	}
	if msg.payload != nil {
		w.pool.release(pr.recvRank, msg.payload)
	}
	if err != nil {
		pr.req.fail(err)
	} else {
		if w.cfg.Hooks != nil {
			w.cfg.Hooks.OnDeliver(pr.recvRank, msg.meta)
		}
		pr.req.complete(Status{Source: msg.src, Tag: msg.tag, Count: msg.elems, Bytes: msg.bytes})
		if w.traceHooks != nil && msg.span != 0 {
			// After complete, not before: the woken receiver (and, for a
			// rendezvous, the already-woken sender) runs concurrently with
			// the tracer's event append instead of behind it. msg and pr
			// are still exclusively ours until the put* calls below.
			// Both local delivery paths read the clock moments ago — the
			// post stamp when a post matched an unexpected message, the
			// send stamp when inject found a posted receive — and delivery
			// is triggered by whichever side arrived second, so its stamp
			// is the match time. Wire-crossed messages (kindOnly) carry a
			// remote-clock sendNs; pass 0 and let the tracer read.
			deliverNs := int64(0)
			if !msg.kindOnly {
				deliverNs = max(msg.sendNs, pr.postNs)
			}
			w.traceHooks.SpanDeliver(pr.recvRank, msg.span, msg.sendNs, pr.postNs, deliverNs, msg.bytes, msg.rendezvous, msg.kindOnly)
		}
	}
	putMessage(msg)
	putPostedRecv(pr)
}

// typesMatch implements MPI datatype matching between a message and a
// posted receive. In process the element types must be identical; for
// messages that crossed the wire only the reflect.Kind travels, so a
// named scalar type matches its underlying kind on the far side.
func typesMatch(msg *message, pr *postedRecv) bool {
	if msg.etype == pr.etype {
		return true
	}
	return msg.kindOnly && msg.etype.Kind() == pr.etype.Kind()
}

// drainEndpoints releases the payloads of every message still queued
// when the world winds down (undelivered chaos duplicates, messages to
// ranks that died, traffic abandoned by a cancel), so pool accounting
// balances after Run returns. Called once, after every task finished.
func (w *World) drainEndpoints() {
	for _, ep := range w.eps {
		ep.mu.Lock()
		for _, b := range ep.buckets {
			for i := b.mhead; i < len(b.msgs); i++ {
				m := b.msgs[i]
				ep.unexpectedBytes -= m.bytes
				if m.payload != nil {
					w.pool.release(ep.rank, m.payload)
				}
				putMessage(m)
				b.msgs[i] = nil
			}
			b.msgs = b.msgs[:0]
			b.mhead = 0
		}
		ep.mu.Unlock()
	}
}
