package mpi

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Status describes a completed receive.
type Status struct {
	// Source is the rank of the sender within the receive's communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the number of elements received.
	Count int
	// Bytes is the payload size in bytes.
	Bytes int
}

// Request is the handle of a nonblocking operation.
type Request struct {
	done   chan struct{}
	status Status
	err    error // non-nil when the operation failed (dead peer, cancel)
	// recvSide is true for receive requests (their Wait returns a Status
	// with meaning).
	recvSide bool

	failOnce sync.Once
}

func newRequest(recvSide bool) *Request {
	return &Request{done: make(chan struct{}), recvSide: recvSide}
}

// Wait blocks until the operation completes and returns its Status (zero
// for send requests). When the operation failed — its peer rank died, or
// the world was cancelled — the Status is zero and Err reports the typed
// failure; the blocking wrappers (Recv, Send, collectives) check it and
// raise, so only explicit Irecv/Isend users need to consult Err.
func (r *Request) Wait() Status {
	<-r.done
	return r.status
}

// Err returns the typed failure of a completed request: a *DeadRankError
// when the peer died, a *CancelledError when the world was cancelled, nil
// on success. Only valid after Wait or a true Test.
func (r *Request) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

// Test reports whether the operation has completed, without blocking.
func (r *Request) Test() (Status, bool) {
	select {
	case <-r.done:
		return r.status, true
	default:
		return Status{}, false
	}
}

func (r *Request) complete(st Status) {
	r.failOnce.Do(func() {
		r.status = st
		close(r.done)
	})
}

// fail completes the request with a typed error instead of a status. The
// failure layer may race a genuine delivery (a message arrives just as
// its sender is declared dead); whichever comes first wins and the other
// is dropped.
func (r *Request) fail(err error) {
	r.failOnce.Do(func() {
		r.err = err
		close(r.done)
	})
}

// Waitall waits for every request in the slice and returns their statuses.
func Waitall(reqs []*Request) []Status {
	out := make([]Status, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait()
	}
	return out
}

// message is an in-flight point-to-point message.
type message struct {
	ctx   int64 // communication context (per communicator, user vs collective)
	src   int   // sender rank within the communicator
	tag   int
	elems int
	bytes int

	// deliver copies the payload into dst (a []T of the receiver) and
	// returns the element count. It panics with *Error on a datatype
	// mismatch or truncation. recvRank is the receiver's world rank, for
	// error attribution.
	deliver func(dst any, recvRank int) int

	// rendezvous marks a synchronizing send: sreq completes only at
	// delivery, and the sender's blocking Send waits for it.
	rendezvous bool
	sreq       *Request

	meta any // hooks.OnSend payload
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	ctx      int64
	src, tag int
	buf      any
	req      *Request
	recvRank int // world rank of the receiver
	worldSrc int // world rank of the expected source (-1 for AnySource),
	// so the failure layer can fail receives from a dead rank without
	// communicator lookups.
}

func (m *message) matches(r *postedRecv) bool {
	return m.ctx == r.ctx &&
		(r.src == AnySource || r.src == m.src) &&
		(r.tag == AnyTag || r.tag == m.tag)
}

// endpoint is the per-rank message engine: a posted-receive list and an
// unexpected-message queue protected by one mutex, with a condition
// variable for Probe.
type endpoint struct {
	rank int

	mu         sync.Mutex
	arrived    *sync.Cond // broadcast whenever unexpected grows
	recvs      []*postedRecv
	unexpected []*message

	// blockedOn holds a human-readable description of what the task is
	// blocked on, for deadlock diagnostics ("" when running).
	blockedOn atomic.Value

	// progress counts blocking-state transitions; the deadlock watchdog
	// samples the world-wide sum to distinguish a stall from slow
	// progress.
	progress atomic.Int64

	// statistics, updated under mu
	unexpectedBytes     int
	peakUnexpectedBytes int
	recvCount           int64
}

func newEndpoint(rank int) *endpoint {
	ep := &endpoint{rank: rank}
	ep.arrived = sync.NewCond(&ep.mu)
	ep.blockedOn.Store("")
	return ep
}

type worldStats struct {
	messages          atomic.Int64
	bytes             atomic.Int64
	rendezvous        atomic.Int64
	sameAddrSkips     atomic.Int64
	collectives       atomic.Int64
	sharedCollectives atomic.Int64
}

// Stats is a snapshot of runtime communication statistics.
type Stats struct {
	Messages      int64 // point-to-point messages delivered
	Bytes         int64 // payload bytes carried
	Rendezvous    int64 // messages that used the rendezvous protocol
	SameAddrSkips int64 // deliveries elided because src and dst buffers were identical
	Collectives   int64 // collective operations started (per task)

	// SharedCollectives counts collectives completed (per task) on the
	// shared-address-space fast path, i.e. without point-to-point
	// messages. Zero when the world runs with CollChannels or hooks that
	// did not opt in.
	SharedCollectives int64

	// PeakUnexpectedBytes is the maximum, over ranks, of bytes buffered in
	// an unexpected-message queue at any time: the runtime's eager-buffer
	// watermark, used by the memory models.
	PeakUnexpectedBytes int
}

// Stats returns a snapshot of the world's communication statistics.
func (w *World) Stats() Stats {
	s := Stats{
		Messages:      w.stats.messages.Load(),
		Bytes:         w.stats.bytes.Load(),
		Rendezvous:    w.stats.rendezvous.Load(),
		SameAddrSkips: w.stats.sameAddrSkips.Load(),
		Collectives:   w.stats.collectives.Load(),

		SharedCollectives: w.stats.sharedCollectives.Load(),
	}
	for _, ep := range w.eps {
		ep.mu.Lock()
		if ep.peakUnexpectedBytes > s.PeakUnexpectedBytes {
			s.PeakUnexpectedBytes = ep.peakUnexpectedBytes
		}
		ep.mu.Unlock()
	}
	return s
}

// inject delivers msg to the endpoint of world rank dstWorld: either it
// matches an already-posted receive (delivery happens on the sender's
// goroutine) or it is queued as unexpected. It reports false — without
// delivering — when the destination rank is dead, so the sender can fail
// fast; the check is made under ep.mu, which orders it against the
// failure layer's scan of the same endpoint.
func (w *World) inject(msg *message, dstWorld int) bool {
	ep := w.eps[dstWorld]

	ep.mu.Lock()
	if w.rankDead(dstWorld) {
		ep.mu.Unlock()
		return false
	}
	w.stats.messages.Add(1)
	w.stats.bytes.Add(int64(msg.bytes))
	for i, pr := range ep.recvs {
		if msg.matches(pr) {
			ep.recvs = append(ep.recvs[:i], ep.recvs[i+1:]...)
			ep.recvCount++
			ep.mu.Unlock()
			w.deliverTo(msg, pr)
			return true
		}
	}
	ep.unexpected = append(ep.unexpected, msg)
	ep.unexpectedBytes += msg.bytes
	if ep.unexpectedBytes > ep.peakUnexpectedBytes {
		ep.peakUnexpectedBytes = ep.unexpectedBytes
	}
	ep.arrived.Broadcast()
	ep.mu.Unlock()
	return true
}

// deliverTo copies the payload into the posted receive's buffer, completes
// the receive request (and the sender's rendezvous request), and fires the
// delivery hook.
//
// Delivery can run on either side's goroutine: the receiver's when an
// unexpected message is matched at post time, the sender's when inject
// finds an already-posted receive. A payload error (truncation, datatype
// mismatch) is the *receiver's* error, and by the time deliver runs the
// posted receive has been removed from the endpoint — if the error
// escaped here on the sender's goroutine, the receiver's request would be
// orphaned (invisible to the failure cascade, never completed) and the
// receiver would hang until the watchdog. So the error is routed into the
// receive request instead, where the receiver's checkReq re-raises it; the
// sender's rendezvous handshake still completes (the payload left the
// sender correctly — the mismatch is on the receiving side).
func (w *World) deliverTo(msg *message, pr *postedRecv) {
	n, err := func() (n int, err error) {
		defer func() {
			if r := recover(); r != nil {
				e, ok := r.(*Error)
				if !ok {
					panic(r)
				}
				err = e
			}
		}()
		return msg.deliver(pr.buf, pr.recvRank), nil
	}()
	if msg.rendezvous && msg.sreq != nil {
		msg.sreq.complete(Status{})
	}
	if err != nil {
		pr.req.fail(err)
		return
	}
	if w.cfg.Hooks != nil {
		w.cfg.Hooks.OnDeliver(pr.recvRank, msg.meta)
	}
	pr.req.complete(Status{Source: msg.src, Tag: msg.tag, Count: n, Bytes: msg.bytes})
}

// matchUnexpected scans the endpoint's unexpected queue (in arrival order)
// for the first message matching pr, removing and returning it. The caller
// must hold ep.mu.
func (ep *endpoint) matchUnexpected(pr *postedRecv) *message {
	for i, msg := range ep.unexpected {
		if msg.matches(pr) {
			ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
			ep.unexpectedBytes -= msg.bytes
			ep.recvCount++
			return msg
		}
	}
	return nil
}

// Waitany blocks until at least one request completes and returns its
// index and status. Completed requests keep reporting done; callers
// typically remove the returned index before waiting again.
func Waitany(reqs []*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: Waitany on an empty request list")
	}
	// Fast path: anything already done?
	for i, r := range reqs {
		if st, ok := r.Test(); ok {
			return i, st
		}
	}
	cases := make([]reflect.SelectCase, len(reqs))
	for i, r := range reqs {
		cases[i] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(r.done)}
	}
	chosen, _, _ := reflect.Select(cases)
	return chosen, reqs[chosen].status
}
