package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestWaitallMixedRequests: Waitall over a mix of already-complete eager
// sends, an in-flight receive, and a rendezvous send that completes only
// when matched — the single-notifier wait must see all three kinds.
func TestWaitallMixedRequests(t *testing.T) {
	const big = DefaultEagerLimit/8 + 16 // rendezvous-sized float64 count
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			small := []float64{1, 2, 3}
			in := make([]float64, 4)
			bigBuf := make([]float64, big)
			reqEager := Isend(task, nil, small, 1, 0) // complete on return
			if _, done := reqEager.Test(); !done {
				return errors.New("eager Isend not complete immediately")
			}
			reqRecv := Irecv(task, nil, in, 1, 1)       // completes mid-wait
			reqRendez := Isend(task, nil, bigBuf, 1, 2) // completes at match
			sts := Waitall([]*Request{reqEager, reqRecv, reqRendez})
			if sts[1].Count != 4 || sts[1].Source != 1 || sts[1].Tag != 1 {
				return fmt.Errorf("recv status = %+v", sts[1])
			}
			if in[3] != 40 {
				return fmt.Errorf("recv payload = %v", in)
			}
			for i, r := range []*Request{reqEager, reqRecv, reqRendez} {
				if err := r.Err(); err != nil {
					return fmt.Errorf("request %d failed: %v", i, err)
				}
			}
			return nil
		}
		buf := make([]float64, 3)
		Recv(task, nil, buf, 0, 0)
		time.Sleep(5 * time.Millisecond) // rank 0 enters Waitall first
		Send(task, nil, []float64{10, 20, 30, 40}, 0, 1)
		bigBuf := make([]float64, big)
		Recv(task, nil, bigBuf, 0, 2)
		return nil
	})
}

// TestWaitallFailedRequest: a Waitall containing a receive whose source
// is chaos-killed must still return, with the typed failure on that
// request and clean completions on the others.
func TestWaitallFailedRequest(t *testing.T) {
	w, err := Run(Config{NumTasks: 3, Timeout: 10 * time.Second}, func(task *Task) error {
		switch task.Rank() {
		case 0:
			okBuf := make([]int, 1)
			deadBuf := make([]int, 1)
			reqOK := Irecv(task, nil, okBuf, 1, 0)
			reqDead := Irecv(task, nil, deadBuf, 2, 0)
			Waitall([]*Request{reqOK, reqDead})
			if err := reqOK.Err(); err != nil {
				return fmt.Errorf("healthy request failed: %v", err)
			}
			if okBuf[0] != 7 {
				return fmt.Errorf("healthy payload = %d", okBuf[0])
			}
			var dre *DeadRankError
			if e := reqDead.Err(); !errors.As(e, &dre) || dre.Dead != 2 {
				return fmt.Errorf("dead-source request Err() = %v, want DeadRankError{Dead: 2}", e)
			}
			return nil
		case 1:
			Send(task, nil, []int{7}, 0, 0)
			return nil
		default:
			time.Sleep(10 * time.Millisecond) // let rank 0 reach Waitall
			panic(killErr(2))
		}
	})
	if err == nil {
		t.Fatal("Run returned nil despite the kill")
	}
	if re := w.RankErrors()[0]; re != nil {
		t.Errorf("rank 0 returned %v, want nil (failure handled via Err)", re)
	}
}

// TestWaitanyMixedRequests: Waitany returns an already-complete request
// immediately, then blocks for eager and rendezvous completions as the
// caller retires indices.
func TestWaitanyMixedRequests(t *testing.T) {
	const big = DefaultEagerLimit/8 + 16
	run(t, 2, func(task *Task) error {
		if task.Rank() == 0 {
			in := make([]float64, 1)
			bigBuf := make([]float64, big)
			reqRecv := Irecv(task, nil, in, 1, 1)
			reqRendez := Isend(task, nil, bigBuf, 1, 2)
			reqEager := Isend(task, nil, []float64{5}, 1, 0)
			reqs := []*Request{reqRecv, reqRendez, reqEager}
			first := true
			for len(reqs) > 0 {
				i, _ := Waitany(reqs)
				if first && reqs[i] != reqEager {
					return fmt.Errorf("first Waitany returned index %d, want the already-complete eager send", i)
				}
				first = false
				// Completed requests keep reporting done, so retire the
				// returned index before waiting again.
				reqs = append(reqs[:i], reqs[i+1:]...)
			}
			if in[0] != 9 {
				return fmt.Errorf("recv payload = %v", in[0])
			}
			return nil
		}
		time.Sleep(5 * time.Millisecond)
		Send(task, nil, []float64{9}, 0, 1)
		bigBuf := make([]float64, big)
		Recv(task, nil, bigBuf, 0, 2)
		return nil
	})
}

// TestWaitanyFailedRequest: Waitany over a single receive from a killed
// rank returns (completion-by-failure), with the typed error on Err.
func TestWaitanyFailedRequest(t *testing.T) {
	w, _ := Run(Config{NumTasks: 2, Timeout: 10 * time.Second}, func(task *Task) error {
		if task.Rank() == 1 {
			time.Sleep(10 * time.Millisecond)
			panic(killErr(1))
		}
		buf := make([]int, 1)
		req := Irecv(task, nil, buf, 1, 0)
		i, _ := Waitany([]*Request{req})
		if i != 0 {
			return fmt.Errorf("Waitany index = %d", i)
		}
		var dre *DeadRankError
		if e := req.Err(); !errors.As(e, &dre) {
			return fmt.Errorf("Err() = %v, want *DeadRankError", e)
		}
		return nil
	})
	if re := w.RankErrors()[0]; re != nil {
		t.Errorf("rank 0: %v", re)
	}
}

// TestWaitallWaitanyCompletionRace: hammer the window between the armed
// scan's state load and its notifier registration. The multi-wait paths
// must register the shared notifier on each request *before* loading its
// state — a completer that publishes reqDone between a state load and a
// later waiter registration would otherwise see a nil waiter, send no
// token, and leave the waiter parked forever. Each round races a burst
// of completer goroutines (staggered so some land mid-scan) against a
// Waitall or Waitany; a lost wakeup shows up as a test timeout.
func TestWaitallWaitanyCompletionRace(t *testing.T) {
	const rounds = 2000
	const nreq = 4
	for round := 0; round < rounds; round++ {
		reqs := make([]*Request, nreq)
		for i := range reqs {
			reqs[i] = newRequest(false)
		}
		var wg sync.WaitGroup
		wg.Add(nreq)
		for i, r := range reqs {
			go func(i int, r *Request) {
				defer wg.Done()
				for s := 0; s < i; s++ {
					runtime.Gosched() // stagger completions across the scan
				}
				r.complete(Status{Count: i + 1})
			}(i, r)
		}
		if round%2 == 0 {
			sts := Waitall(reqs)
			for i, st := range sts {
				if st.Count != i+1 {
					t.Fatalf("round %d: status[%d] = %+v", round, i, st)
				}
			}
		} else {
			// Copy: retiring indices below would otherwise shuffle the
			// reqs backing array under the putRequest loop.
			pending := append([]*Request(nil), reqs...)
			for len(pending) > 0 {
				i, st := Waitany(pending)
				if st.Count < 1 || st.Count > nreq {
					t.Fatalf("round %d: Waitany status = %+v", round, st)
				}
				pending = append(pending[:i], pending[i+1:]...)
			}
		}
		wg.Wait()
		for _, r := range reqs {
			putRequest(r)
		}
	}
}

// TestRequestReuseAcrossBlockingCalls: the blocking wrappers recycle
// their requests through the pool; a long alternating sequence must keep
// statuses straight (a stale pooled request would surface as a wrong
// Source/Tag/Count).
func TestRequestReuseAcrossBlockingCalls(t *testing.T) {
	const rounds = 300
	run(t, 2, func(task *Task) error {
		buf := make([]int, 2)
		for i := 0; i < rounds; i++ {
			if task.Rank() == 0 {
				buf[0], buf[1] = i, i+1
				Send(task, nil, buf, 1, i%7)
			} else {
				st := Recv(task, nil, buf, 0, i%7)
				if st.Source != 0 || st.Tag != i%7 || st.Count != 2 || buf[0] != i {
					return fmt.Errorf("round %d: status %+v payload %v", i, st, buf)
				}
			}
		}
		return nil
	})
}
