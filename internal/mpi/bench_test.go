package mpi

import (
	"fmt"
	"testing"
)

// BenchmarkPingPong measures round-trip latency by payload size, covering
// both the eager and the rendezvous protocol.
func BenchmarkPingPong(b *testing.B) {
	for _, elems := range []int{1, 64, 512, 8192} {
		b.Run(fmt.Sprintf("float64x%d", elems), func(b *testing.B) {
			w, err := NewWorld(Config{NumTasks: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(elems * 8 * 2))
			b.ReportAllocs() // the eager datapath must show 0 allocs/op
			b.ResetTimer()
			err = w.Run(func(task *Task) error {
				buf := make([]float64, elems)
				for i := 0; i < b.N; i++ {
					if task.Rank() == 0 {
						Send(task, nil, buf, 1, 0)
						Recv(task, nil, buf, 1, 1)
					} else {
						Recv(task, nil, buf, 0, 0)
						Send(task, nil, buf, 0, 1)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkEagerRendezvousCrossover sweeps the payload size across the
// per-World eager/rendezvous threshold (Config.EagerLimit) at several
// threshold settings, so the protocol switch — buffered copy vs
// synchronizing handoff — shows up as a latency step inside one sweep.
func BenchmarkEagerRendezvousCrossover(b *testing.B) {
	for _, limit := range []int{512, DefaultEagerLimit, 32 << 10} {
		for _, bytes := range []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10} {
			elems := bytes / 8
			proto := "eager"
			if bytes > limit {
				proto = "rendezvous"
			}
			b.Run(fmt.Sprintf("limit%d/%dB/%s", limit, bytes, proto), func(b *testing.B) {
				w, err := NewWorld(Config{NumTasks: 2, EagerLimit: limit})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(bytes * 2))
				b.ResetTimer()
				err = w.Run(func(task *Task) error {
					buf := make([]float64, elems)
					for i := 0; i < b.N; i++ {
						if task.Rank() == 0 {
							Send(task, nil, buf, 1, 0)
							Recv(task, nil, buf, 1, 1)
						} else {
							Recv(task, nil, buf, 0, 0)
							Send(task, nil, buf, 0, 1)
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				wantRendezvous := bytes > limit
				if gotR := w.Stats().Rendezvous > 0; gotR != wantRendezvous {
					b.Fatalf("rendezvous used = %v, want %v (bytes=%d limit=%d)", gotR, wantRendezvous, bytes, limit)
				}
			})
		}
	}
}

// BenchmarkBarrierScaling measures the dissemination barrier by world
// size.
func BenchmarkBarrierScaling(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("tasks%d", n), func(b *testing.B) {
			w, err := NewWorld(Config{NumTasks: n})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(task *Task) error {
				for i := 0; i < b.N; i++ {
					Barrier(task, nil)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkBcastTree measures the binomial broadcast of a 1 KiB payload.
func BenchmarkBcastTree(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("tasks%d", n), func(b *testing.B) {
			w, err := NewWorld(Config{NumTasks: n})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(task *Task) error {
				buf := make([]float64, 128)
				for i := 0; i < b.N; i++ {
					Bcast(task, nil, buf, 0)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
