package mpi

// Typed point-to-point operations: the Send/Recv family taking a derived
// Datatype that selects which elements of the buffer travel (send side)
// or where the payload lands (receive side). A nil datatype means the
// whole buffer, contiguously — SendTyped(t, c, buf, nil, dst, tag) is
// exactly Send. Matching, tags, wildcards, protocols and error semantics
// are identical to the contiguous operations; Status.Count reports the
// packed element count.

// SendTyped sends the elements dt selects in buf to rank dst of comm.
// Blocking semantics follow Send: eager payloads (by packed size) return
// immediately, rendezvous sends block until the receiver matches.
func SendTyped[T Scalar](t *Task, comm *Comm, buf []T, dt *Datatype, dst, tag int) {
	comm = t.commOrWorld(comm)
	req := isendDT(t, comm, comm.ctxUser, buf, dt, dst, tag, "SendTyped")
	if req != nil {
		if _, done := req.Test(); done {
			t.checkReq("SendTyped", req)
			putRequest(req)
			return
		}
		t.blockOnP2P(labelSend, dst, tag)
		req.Wait()
		if th := t.world.traceHooks; th != nil {
			th.SpanWait(t.rank, "send", req.span, req.sendNs)
		}
		t.unblock()
		t.checkReq("SendTyped", req)
		putRequest(req)
	}
}

// IsendTyped starts a nonblocking typed send and returns its Request.
func IsendTyped[T Scalar](t *Task, comm *Comm, buf []T, dt *Datatype, dst, tag int) *Request {
	comm = t.commOrWorld(comm)
	req := isendDT(t, comm, comm.ctxUser, buf, dt, dst, tag, "IsendTyped")
	if req == nil {
		req = newRequest(false)
		req.complete(Status{})
	}
	return req
}

// RecvTyped receives a message from rank src (or AnySource) with the
// given tag (or AnyTag), scattering the payload into the elements dt
// selects in buf, and returns the Status.
func RecvTyped[T Scalar](t *Task, comm *Comm, buf []T, dt *Datatype, src, tag int) Status {
	comm = t.commOrWorld(comm)
	req := irecvDT(t, comm, comm.ctxUser, buf, dt, src, tag, "RecvTyped")
	t.blockOnP2P(labelRecv, src, tag)
	st := req.Wait()
	t.unblock()
	t.checkReq("RecvTyped", req)
	putRequest(req)
	return st
}

// IrecvTyped posts a nonblocking typed receive and returns its Request.
func IrecvTyped[T Scalar](t *Task, comm *Comm, buf []T, dt *Datatype, src, tag int) *Request {
	comm = t.commOrWorld(comm)
	return irecvDT(t, comm, comm.ctxUser, buf, dt, src, tag, "IrecvTyped")
}

// SendrecvTyped performs a combined typed send and typed receive, safe
// against the exchange deadlocks of two blocking calls — the halo-
// exchange primitive.
func SendrecvTyped[T Scalar](t *Task, comm *Comm, sendBuf []T, sdt *Datatype, dst, sendTag int, recvBuf []T, rdt *Datatype, src, recvTag int) Status {
	rr := IrecvTyped(t, comm, recvBuf, rdt, src, recvTag)
	SendTyped(t, comm, sendBuf, sdt, dst, sendTag)
	t.blockOnP2P(labelSendrecvRecv, src, recvTag)
	st := rr.Wait()
	t.unblock()
	t.checkReq("SendrecvTyped", rr)
	putRequest(rr)
	return st
}
