package mpi

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"

	"hls/internal/spin"
)

// Shared-address-space collective fast path. MPI tasks are goroutines in
// one process, so a collective does not need per-step channel messages:
// every member publishes its buffer pointers in a per-communicator slot
// array, a hierarchical spin barrier (the same tree the HLS directives
// use, built over the members' hardware threads) orders the publication
// against the reads, and the data moves with direct memory copies — or
// no copy at all when a rank's buffer is the shared HLS storage itself.
//
// Per collective the protocol is one or two tree barriers:
//
//	publish own slot -> entry barrier (leader verifies the slots agree
//	and, for reductions, folds every send buffer into the target recv
//	buffer) -> members copy what they need from peer buffers -> exit
//	barrier (only for ops where members read after release, so no buffer
//	is reused while a peer still copies from it).
//
// The fast path is selected per world (see CollectiveMode): it engages
// only when no hooks are installed or the installed hooks opt in via
// SharedCollHooks, and never when fault-injection hooks are present —
// chaos must keep seeing the per-step messages it perturbs. Rank
// failures are still honored: the world's failure layer aborts the trees
// of every communicator containing a dead rank, so members blocked in a
// collective unwind with the same typed errors the channel path raises.
//
// The steady-state path is allocation-free: slots hold raw pointers, the
// blocked-on descriptions are pre-boxed, and the verification/fold body
// is built once per communicator.

// CollectiveMode selects how a world executes collective operations.
type CollectiveMode int

const (
	// CollAuto (the default) uses the shared-address-space fast path for
	// Barrier/Bcast/Reduce/Allreduce/Allgather when it is safe: no hooks,
	// or hooks that opt in through SharedCollHooks, and no fault
	// injection. Everything else uses the channel algorithms.
	CollAuto CollectiveMode = iota
	// CollChannels forces the point-to-point algorithms for every
	// collective (the ablation baseline of hlsbench -exp sync).
	CollChannels
	// CollShared forces the fast path regardless of hooks (testing).
	CollShared
	// CollTwoLevel forces the hierarchy-aware two-level decomposition in
	// distributed worlds: Barrier/Bcast/Reduce/Allreduce/Allgather run
	// their node-local phase on the fast path over a per-node
	// sub-communicator and only one leader per process crosses the wire
	// (see twolevel.go). In a single-process world — where every rank is
	// already node-local — it is equivalent to CollShared.
	CollTwoLevel
)

// SharedCollHooks is an optional extension of Hooks: implementations
// that also satisfy it can allow the shared-memory collective fast path,
// which completes collectives without the per-step point-to-point
// messages OnSend/OnDeliver would otherwise observe. Hooks that derive
// correctness from message edges (the happens-before tracker) must not
// implement it; pure accounting hooks (internal/metrics) do.
type SharedCollHooks interface {
	Hooks
	// SharedCollectivesOK reports whether these hooks stay correct when
	// collectives bypass the message layer.
	SharedCollectivesOK() bool
	// OnSharedCollective is called by each task completing a collective
	// on the fast path (op is "Barrier", "Bcast", ...).
	OnSharedCollective(worldRank int, op string)
}

// Collective kinds published in the slots, so mismatched collectives are
// detected instead of silently exchanging buffers.
const (
	shmKindBarrier uint8 = iota + 1
	shmKindBcast
	shmKindReduce
	shmKindAllreduce
	shmKindAllgather
)

func shmOpName(kind uint8) string {
	switch kind {
	case shmKindBarrier:
		return "Barrier"
	case shmKindBcast:
		return "Bcast"
	case shmKindReduce:
		return "Reduce"
	case shmKindAllreduce:
		return "Allreduce"
	case shmKindAllgather:
		return "Allgather"
	}
	return "collective"
}

// opCopy is the fold-function sentinel for a plain copy (no operator).
const opCopy Op = -1

// shmFoldFn is the type-recovering bridge between the type-erased slots
// and the generic reduction kernels: each rank publishes its element
// type's instance, the (dynamically elected) leader calls it.
type shmFoldFn func(op Op, dst, src unsafe.Pointer, n int)

// shmFolds caches one shmFold instantiation per element type: taking a
// generic function's value allocates its dictionary closure, which would
// put one allocation on every fast-path Reduce/Allreduce call.
var shmFolds sync.Map // reflect.Type -> shmFoldFn

func shmFoldFor[T Scalar](typ reflect.Type) shmFoldFn {
	if f, ok := shmFolds.Load(typ); ok {
		return f.(shmFoldFn)
	}
	f, _ := shmFolds.LoadOrStore(typ, shmFoldFn(shmFold[T]))
	return f.(shmFoldFn)
}

func shmFold[T Scalar](op Op, dst, src unsafe.Pointer, n int) {
	d := unsafe.Slice((*T)(dst), n)
	s := unsafe.Slice((*T)(src), n)
	if op == opCopy {
		copy(d, s)
		return
	}
	apply(-1, op, d, s)
}

// shmType returns the comparable identity of T (allocation-free).
func shmType[T any]() reflect.Type {
	return reflect.TypeOf((*T)(nil)).Elem()
}

// shmSlot is one member's publication record. The written fields fit in
// the first two cache lines and the trailing pad keeps neighbouring
// slots' hot fields off each other's lines.
type shmSlot struct {
	send    unsafe.Pointer // first element of the send buffer (nil if empty)
	sendLen int
	recv    unsafe.Pointer // first element of the receive buffer, when published
	recvLen int
	typ     reflect.Type
	fold    shmFoldFn
	elem    int // element size in bytes
	seq     int // collective identity (the base tag)
	kind    uint8
	op      Op
	root    int
	_       [64]byte
}

// shmColl is the fast-path state of one communicator: the barrier tree
// over its members' hardware threads and one publication slot per member.
type shmColl struct {
	w     *World
	comm  *Comm
	tree  *spin.Tree
	slots []shmSlot

	// parent, when non-nil, is the communicator this fast-path state
	// serves a node-local phase of (the two-level decomposition): a rank
	// failure anywhere in the parent must abort the local tree too, or
	// members parked in the intra-node phase would only learn of a remote
	// death after their leader's cross-node traffic unwinds.
	parent *Comm

	// verifyErr is written by the entry barrier's leader body and read by
	// every member after release; the tree's atomics order the accesses.
	verifyErr *Error
	// verifyFn is the entry-barrier body, built once so the hot path
	// creates no closure.
	verifyFn func()
}

// newShmColl builds the fast-path state for comm and registers it with
// the failure layer; state built after a failure is born aborted. parent
// is the enclosing communicator when comm is a two-level node-local
// sub-communicator (nil otherwise); see shmColl.parent.
func newShmColl(w *World, c, parent *Comm) *shmColl {
	threads := make([]int, len(c.group))
	for i, wr := range c.group {
		threads[i] = w.pin.Thread(wr)
	}
	sc := &shmColl{
		w:      w,
		comm:   c,
		parent: parent,
		tree:   spin.NewAdaptiveTree(w.machine.SyncPathsAll(threads)),
		slots:  make([]shmSlot, len(c.group)),
	}
	sc.verifyFn = sc.verifyAndFold
	w.fail.mu.Lock()
	w.fail.shm = append(w.fail.shm, sc)
	if w.fail.cancelled != nil {
		sc.tree.Abort(&CancelledError{Rank: -1, Op: "collective", Cause: w.fail.cancelled})
	}
	for r := range w.fail.causes {
		if sc.involves(r) {
			sc.tree.Abort(&DeadRankError{Rank: -1, Op: "collective", Dead: r})
			break
		}
	}
	w.fail.mu.Unlock()
	return sc
}

// involves reports whether a failure of world rank r must abort this
// tree: r is a member, or a member of the parent communicator this tree
// runs the node-local phase for.
func (sc *shmColl) involves(r int) bool {
	if sc.comm.rankOf(r) >= 0 {
		return true
	}
	return sc.parent != nil && sc.parent.rankOf(r) >= 0
}

// abortShmColls is the failure handler registered by worlds running the
// fast path: a dead rank aborts the tree of every communicator containing
// it; cancellation (rank -1) aborts them all.
func (w *World) abortShmColls(rank int, cause error) {
	var err error
	if rank >= 0 {
		err = &DeadRankError{Rank: -1, Op: "collective", Dead: rank}
	} else {
		err = &CancelledError{Rank: -1, Op: "collective", Cause: cause}
	}
	w.fail.mu.Lock()
	colls := append([]*shmColl(nil), w.fail.shm...)
	w.fail.mu.Unlock()
	for _, sc := range colls {
		if rank < 0 || sc.involves(rank) {
			sc.tree.Abort(err)
		}
	}
}

// verifyAndFold is the entry barrier's leader body: with every member
// arrived and published (and none released), it checks that the slots
// describe the same collective and, for reductions, folds every send
// buffer into the target receive buffer. It must not panic — a panic here
// would strand the other members — so violations are recorded in
// verifyErr for every member to raise after release.
func (sc *shmColl) verifyAndFold() {
	sc.verifyErr = nil
	slots := sc.slots
	s0 := &slots[0]
	n := len(slots)
	op := shmOpName(s0.kind)
	for i := 1; i < n; i++ {
		s := &slots[i]
		switch {
		case s.seq != s0.seq:
			sc.verifyErr = shmErr(op, "collective sequence mismatch: rank 0 at #%d, rank %d at #%d", s0.seq, i, s.seq)
		case s.kind != s0.kind:
			sc.verifyErr = shmErr(op, "mismatched collectives: rank 0 in %s, rank %d in %s", op, i, shmOpName(s.kind))
		case s.typ != s0.typ:
			sc.verifyErr = shmErr(op, "datatype mismatch: rank 0 has %v, rank %d has %v", s0.typ, i, s.typ)
		case s.op != s0.op:
			sc.verifyErr = shmErr(op, "reduction op mismatch: rank 0 used %v, rank %d used %v", s0.op, i, s.op)
		case s.root != s0.root:
			sc.verifyErr = shmErr(op, "root mismatch: rank 0 named %d, rank %d named %d", s0.root, i, s.root)
		case s.sendLen != s0.sendLen:
			sc.verifyErr = shmErr(op, "buffer length mismatch: rank 0 has %d elements, rank %d has %d", s0.sendLen, i, s.sendLen)
		}
		if sc.verifyErr != nil {
			return
		}
	}
	if s0.kind != shmKindReduce && s0.kind != shmKindAllreduce {
		return
	}
	if s0.op < OpSum || s0.op > OpMin {
		sc.verifyErr = shmErr(op, "unknown op %v", s0.op)
		return
	}
	k := s0.sendLen
	if k == 0 {
		return
	}
	target := 0
	if s0.kind == shmKindReduce {
		target = s0.root
	}
	dst := slots[target].recv
	fold := s0.fold
	if dst != s0.send {
		fold(opCopy, dst, s0.send, k)
	} else {
		sc.w.shmElided(sc.comm.group[target], k*s0.elem)
	}
	for i := 1; i < n; i++ {
		fold(s0.op, dst, slots[i].send, k)
	}
}

func shmErr(op, format string, args ...any) *Error {
	return &Error{Rank: -1, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// await runs one tree barrier, translating an abort panic into a typed
// error attributed to this rank and operation (the shape checkReq gives
// channel-path failures).
func (sc *shmColl) await(t *Task, op string, member int, body func()) {
	err := sc.awaitErr(member, body)
	if err == nil {
		return
	}
	switch e := err.(type) {
	case *DeadRankError:
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: e.Dead})
	case *CancelledError:
		panic(&CancelledError{Rank: t.rank, Op: op, Cause: e.Cause})
	default:
		panic(err)
	}
}

func (sc *shmColl) awaitErr(member int, body func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			e, ok := p.(error)
			if !ok {
				panic(p)
			}
			err = e
		}
	}()
	sc.tree.Await(member, body)
	return nil
}

// check raises the leader's verification verdict on every member.
func (sc *shmColl) check(t *Task, op string) {
	if e := sc.verifyErr; e != nil {
		panic(&Error{Rank: t.rank, Op: op, Msg: e.Msg})
	}
}

// done counts a completed fast-path collective.
func (sc *shmColl) done(t *Task, op string) {
	t.world.stats.sharedCollectives.Add(1)
	if h := t.world.shmHooks; h != nil {
		h.OnSharedCollective(t.rank, op)
	}
}

// shmElided counts a copy skipped because source and destination were
// the same memory — the same accounting the p2p delivery path uses, so
// internal/metrics' existing adapters see fast-path elisions too.
func (w *World) shmElided(dstWorld, bytes int) {
	w.stats.sameAddrSkips.Add(1)
	if w.msgHooks != nil {
		w.msgHooks.OnCopyElided(dstWorld, bytes)
	}
}

// Pre-boxed blocked-on descriptions: publishing them costs no allocation.
var (
	boxShmBarrier   any = "Barrier (shm)"
	boxShmBcast     any = "Bcast (shm)"
	boxShmReduce    any = "Reduce (shm)"
	boxShmAllreduce any = "Allreduce (shm)"
	boxShmAllgather any = "Allgather (shm)"
)

func shmBarrier(t *Task, c *Comm, seq int) {
	sc := c.shm
	me := c.Rank(t)
	s := &sc.slots[me]
	*s = shmSlot{seq: seq, kind: shmKindBarrier}
	t.BlockOnBoxed(boxShmBarrier)
	sc.await(t, "Barrier", me, sc.verifyFn)
	t.unblock()
	sc.check(t, "Barrier")
	sc.done(t, "Barrier")
}

func shmBcast[T Scalar](t *Task, c *Comm, buf []T, root, seq int) {
	sc := c.shm
	me := c.Rank(t)
	s := &sc.slots[me]
	*s = shmSlot{
		send: unsafe.Pointer(unsafe.SliceData(buf)), sendLen: len(buf),
		typ: shmType[T](), elem: elemSize[T](),
		seq: seq, kind: shmKindBcast, root: root,
	}
	t.BlockOnBoxed(boxShmBcast)
	sc.await(t, "Bcast", me, sc.verifyFn)
	sc.check(t, "Bcast")
	if me != root && len(buf) > 0 {
		src := sc.slots[root].send
		if s.send == src {
			t.world.shmElided(t.rank, len(buf)*s.elem)
		} else {
			copy(buf, unsafe.Slice((*T)(src), len(buf)))
		}
	}
	sc.await(t, "Bcast", me, nil) // nobody reuses buf while peers copy
	t.unblock()
	sc.done(t, "Bcast")
}

func shmReduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, root, seq int) {
	sc := c.shm
	me := c.Rank(t)
	if me == root && len(recvBuf) < len(sendBuf) {
		raise(t.rank, "Reduce", "receive buffer too small: %d < %d", len(recvBuf), len(sendBuf))
	}
	typ := shmType[T]()
	s := &sc.slots[me]
	*s = shmSlot{
		send: unsafe.Pointer(unsafe.SliceData(sendBuf)), sendLen: len(sendBuf),
		typ: typ, fold: shmFoldFor[T](typ), elem: elemSize[T](),
		seq: seq, kind: shmKindReduce, op: op, root: root,
	}
	if me == root {
		s.recv = unsafe.Pointer(unsafe.SliceData(recvBuf))
		s.recvLen = len(recvBuf)
	}
	t.BlockOnBoxed(boxShmReduce)
	// The leader folds inside the entry barrier, so when it releases the
	// result is complete and every send buffer is free: no exit barrier.
	sc.await(t, "Reduce", me, sc.verifyFn)
	t.unblock()
	sc.check(t, "Reduce")
	sc.done(t, "Reduce")
}

func shmAllreduce[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, op Op, seq int) {
	sc := c.shm
	me := c.Rank(t)
	typ := shmType[T]()
	s := &sc.slots[me]
	*s = shmSlot{
		send: unsafe.Pointer(unsafe.SliceData(sendBuf)), sendLen: len(sendBuf),
		recv: unsafe.Pointer(unsafe.SliceData(recvBuf)), recvLen: len(recvBuf),
		typ: typ, fold: shmFoldFor[T](typ), elem: elemSize[T](),
		seq: seq, kind: shmKindAllreduce, op: op,
	}
	t.BlockOnBoxed(boxShmAllreduce)
	sc.await(t, "Allreduce", me, sc.verifyFn) // leader folds into rank 0's recv
	sc.check(t, "Allreduce")
	k := len(sendBuf)
	if me != 0 && k > 0 {
		src := sc.slots[0].recv
		if s.recv == src {
			t.world.shmElided(t.rank, k*s.elem)
		} else {
			copy(recvBuf[:k], unsafe.Slice((*T)(src), k))
		}
	}
	sc.await(t, "Allreduce", me, nil) // rank 0's recv stays stable until all copied
	t.unblock()
	sc.done(t, "Allreduce")
}

func shmAllgather[T Scalar](t *Task, c *Comm, sendBuf, recvBuf []T, seq int) {
	sc := c.shm
	me := c.Rank(t)
	n := c.Size()
	k := len(sendBuf)
	s := &sc.slots[me]
	*s = shmSlot{
		send: unsafe.Pointer(unsafe.SliceData(sendBuf)), sendLen: k,
		recv: unsafe.Pointer(unsafe.SliceData(recvBuf)), recvLen: len(recvBuf),
		typ: shmType[T](), elem: elemSize[T](),
		seq: seq, kind: shmKindAllgather,
	}
	t.BlockOnBoxed(boxShmAllgather)
	sc.await(t, "Allgather", me, sc.verifyFn)
	sc.check(t, "Allgather")
	if k > 0 {
		for r := 0; r < n; r++ {
			dst := recvBuf[r*k : (r+1)*k]
			src := sc.slots[r].send
			if unsafe.Pointer(unsafe.SliceData(dst)) == src {
				t.world.shmElided(t.rank, k*s.elem)
			} else {
				copy(dst, unsafe.Slice((*T)(src), k))
			}
		}
	}
	sc.await(t, "Allgather", me, nil) // send buffers stay stable until all copied
	t.unblock()
	sc.done(t, "Allgather")
}
