package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"hls/internal/wire"
)

// WireConfig attaches an inter-node transport to a world, so one MPI
// world spans one process per node: each process runs the tasks pinned
// to its node (Config.Machine + Config.Pin decide which), delivers
// same-node messages through the in-process datapath as before, and
// routes messages to ranks on other nodes over the transport.
type WireConfig struct {
	// Transport connects this process to the other nodes. Its Self() is
	// this process's node, and Peers() must equal Machine.Nodes(). Build
	// one with wire.NewTCP; the world binds and, at the end of Run,
	// closes it.
	Transport wire.Transport
}

// wirePendingSend is a rendezvous send parked on its CTS.
type wirePendingSend struct {
	msg      *message
	src, dst int // world ranks
}

// wirePendingRecv is a matched remote rendezvous waiting for its data
// frame; the payload is read off the socket directly into pr's buffer.
type wirePendingRecv struct {
	xid     uint64
	pr      *postedRecv
	src     int // world rank of the sender
	srcComm int // sender's rank in the message's communicator
	tag     int
	elems   int
	bytes   int

	// got counts the packed elements received so far on the pipelined
	// segment path (TypeDataSeg). Segments of one transfer arrive on one
	// transport goroutine (per-peer delivery is serialized), so plain
	// increments suffice; the transfer completes when got reaches elems.
	got int

	// span / sendNs from the RTS frame, reported to TraceHooks when the
	// data frame completes the receive.
	span   uint64
	sendNs int64
}

// netLayer implements wire.Sink and owns the world's distributed state:
// rank→node routing, the rendezvous transaction tables, and the
// failure-frame protocol. Lock order: endpoint/recv locks are always
// taken before netLayer.mu, which is always taken before transport
// internals — netLayer methods never call back into the endpoint layer
// while holding mu.
type netLayer struct {
	w      *World
	tr     wire.Transport
	self   int   // this process's node
	nodeOf []int // world rank -> node

	mu       sync.Mutex
	xidSeq   uint64
	sends    map[uint64]*wirePendingSend
	recvs    map[uint64]*wirePendingRecv
	draining bool
}

func (w *World) initWire(cfg *WireConfig) error {
	tr := cfg.Transport
	if tr == nil {
		return fmt.Errorf("mpi: WireConfig.Transport is nil")
	}
	if got, want := tr.Peers(), w.machine.Nodes(); got != want {
		return fmt.Errorf("mpi: transport spans %d nodes, machine has %d", got, want)
	}
	if tr.Self() < 0 || tr.Self() >= w.machine.Nodes() {
		return fmt.Errorf("mpi: transport self %d out of range [0,%d)", tr.Self(), w.machine.Nodes())
	}
	n := &netLayer{
		w:      w,
		tr:     tr,
		self:   tr.Self(),
		nodeOf: w.pin.NodeOf(),
		sends:  make(map[uint64]*wirePendingSend),
		recvs:  make(map[uint64]*wirePendingRecv),
	}
	local := 0
	for _, node := range n.nodeOf {
		if node == n.self {
			local++
		}
	}
	if local == 0 {
		return fmt.Errorf("mpi: no rank is pinned to node %d under this machine/pin policy", n.self)
	}
	w.net = n
	return nil
}

// localRank reports whether world rank r runs in this process.
func (n *netLayer) localRank(r int) bool { return n.nodeOf[r] == n.self }

// localRanks returns the world ranks this process runs, all of them for
// a single-process world.
func (w *World) localRanks() []int {
	if w.net == nil {
		out := make([]int, w.cfg.NumTasks)
		for r := range out {
			out[r] = r
		}
		return out
	}
	var out []int
	for r, node := range w.net.nodeOf {
		if node == w.net.self {
			out = append(out, r)
		}
	}
	return out
}

// WireStats snapshots the transport counters of a distributed world; ok
// is false for single-process worlds.
func (w *World) WireStats() (wire.Stats, bool) {
	if w.net == nil {
		return wire.Stats{}, false
	}
	return w.net.tr.Stats(), true
}

// kindTypes maps each wire-encodable reflect.Kind to its canonical Go
// type, the element type under which remote messages enter the matching
// engine (kind-only matching; see typesMatch). int and uint are 64-bit
// on every supported platform.
var kindTypes = map[reflect.Kind]reflect.Type{
	reflect.Int:     reflect.TypeOf(int(0)),
	reflect.Int8:    reflect.TypeOf(int8(0)),
	reflect.Int16:   reflect.TypeOf(int16(0)),
	reflect.Int32:   reflect.TypeOf(int32(0)),
	reflect.Int64:   reflect.TypeOf(int64(0)),
	reflect.Uint:    reflect.TypeOf(uint(0)),
	reflect.Uint8:   reflect.TypeOf(uint8(0)),
	reflect.Uint16:  reflect.TypeOf(uint16(0)),
	reflect.Uint32:  reflect.TypeOf(uint32(0)),
	reflect.Uint64:  reflect.TypeOf(uint64(0)),
	reflect.Float32: reflect.TypeOf(float32(0)),
	reflect.Float64: reflect.TypeOf(float64(0)),
}

// isendRemote is isend's over-the-wire tail: the destination rank runs
// in another process. Eager messages are encoded into a frame (the
// transport copies the payload before Send returns, so the message is
// complete immediately, like the in-process eager path); rendezvous
// sends park in the transaction table and the frame exchange
// RTS → CTS → Data completes sreq once the receiver has matched.
func (n *netLayer) isendRemote(t *Task, msg *message, worldDst int, op string) *Request {
	w := n.w
	sreq := msg.sreq
	dup := false
	if w.faultHooks != nil {
		act := w.faultHooks.FaultP2P(t.rank, worldDst, msg.bytes, msg.rendezvous)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
			t.checkPeer(op, worldDst)
		}
		if act.Drop {
			if sreq != nil {
				sreq.complete(Status{})
			}
			putMessage(msg)
			return sreq
		}
		// Duplicate applies to eager frames; a duplicated RTS would open
		// a second rendezvous transaction nobody answers.
		dup = act.Duplicate && !msg.rendezvous && msg.bytes > 0
	}
	w.stats.messages.Add(1)
	w.stats.bytes.Add(int64(msg.bytes))
	node := n.nodeOf[worldDst]
	h := wire.Header{
		Kind:     uint8(msg.etype.Kind()),
		Ctx:      msg.ctx,
		SrcComm:  int32(msg.src),
		SrcWorld: int32(t.rank),
		DstWorld: int32(worldDst),
		Tag:      int32(msg.tag),
		Elems:    int32(msg.elems),
		// Trace context rides the frame extension (v2 connections only;
		// zero when tracing is off, which elides the extension entirely).
		Span:   msg.span,
		SendTS: msg.sendNs,
	}
	if msg.rendezvous {
		h.Type = wire.TypeRTS
		n.mu.Lock()
		// The dead check shares mu with onRankFailed's table scan: either
		// the scan already ran (the death is visible here) or it runs
		// after this registration and fails the parked send. Checked
		// outside the mutex, a death could slip between check and
		// registration and the send would park forever.
		if w.rankDead(worldDst) {
			n.mu.Unlock()
			putMessage(msg)
			panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
		}
		n.xidSeq++
		// Xids carry the sending node in the high bits so transactions
		// from different processes can never collide at the receiver.
		xid := uint64(n.self+1)<<48 | n.xidSeq
		h.Xid = xid
		n.sends[xid] = &wirePendingSend{msg: msg, src: t.rank, dst: worldDst}
		n.mu.Unlock()
		if err := n.tr.Send(node, &h, nil); err != nil {
			n.mu.Lock()
			delete(n.sends, xid)
			n.mu.Unlock()
			putMessage(msg)
			panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
		}
		return sreq
	}
	h.Type = wire.TypeEager
	// A typed eager message packs into a pooled buffer before framing:
	// the wire carries dense payloads only, and the transport copies the
	// frame before Send returns, so the scratch is released immediately.
	var pb *eagerBuf
	if msg.sdt != nil {
		pb = w.pool.get(t.rank, msg.bytes)
		dtPack(pb.data[:msg.bytes], msg.sdata, msg.sdt, int(msg.etype.Size()))
		msg.sdata = pb.data[:msg.bytes]
		msg.sdt = nil
	}
	err := n.tr.Send(node, &h, msg.sdata)
	if err == nil && dup {
		err = n.tr.Send(node, &h, msg.sdata)
	}
	if pb != nil {
		w.pool.release(t.rank, pb)
	}
	putMessage(msg)
	if err != nil {
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
	}
	return nil
}

// sink implementation ------------------------------------------------

// Alloc supplies receive buffers so payloads are read off the socket
// with no intermediate copy: eager payloads land in a pooled eager
// buffer (acquired without rank identity — the progress goroutine has
// none), rendezvous data frames land directly in the posted receive's
// buffer, claimed from the transaction table. A claim is undone by Free
// if the read fails mid-payload, so the retransmitted frame can claim
// again.
func (n *netLayer) Alloc(peer int, h *wire.Header) ([]byte, any) {
	switch h.Type {
	case wire.TypeEager:
		if h.PayloadLen == 0 {
			return nil, nil
		}
		b := n.w.pool.get(poolNoRank, int(h.PayloadLen))
		return b.data[:h.PayloadLen], b
	case wire.TypeData:
		n.mu.Lock()
		wr := n.recvs[h.Xid]
		// A strided receive (rdt != nil) must not let packed bytes land
		// raw in its buffer: the claim is refused and the payload arrives
		// in a pooled scratch instead, unpacked by onData.
		if wr != nil && wr.bytes == int(h.PayloadLen) && wr.pr.rdt == nil {
			delete(n.recvs, h.Xid)
			n.mu.Unlock()
			return wr.pr.rdata[:h.PayloadLen], wr
		}
		n.mu.Unlock()
		if h.PayloadLen == 0 {
			return nil, nil
		}
		b := n.w.pool.get(poolNoRank, int(h.PayloadLen))
		return b.data[:h.PayloadLen], b
	case wire.TypeDataSeg:
		if h.PayloadLen == 0 {
			return nil, nil
		}
		b := n.w.pool.get(poolNoRank, int(h.PayloadLen))
		return b.data[:h.PayloadLen], b
	}
	return nil, nil
}

// Free returns a buffer whose frame was dropped by the transport.
func (n *netLayer) Free(peer int, token any) {
	switch v := token.(type) {
	case *eagerBuf:
		n.w.pool.release(poolNoRank, v)
	case *wirePendingRecv:
		n.mu.Lock()
		n.recvs[v.xid] = v // un-claim: the data frame will be retransmitted
		n.mu.Unlock()
	}
}

// Frame routes one delivered frame. Runs on a transport progress
// goroutine; per-peer delivery is serialized by the transport, so
// injection order equals the sender's send order (non-overtaking across
// the wire).
func (n *netLayer) Frame(peer int, f *wire.Frame) {
	switch f.Type {
	case wire.TypeEager:
		n.onEager(f)
	case wire.TypeRTS:
		n.onRTS(peer, f)
	case wire.TypeCTS:
		n.onCTS(f)
	case wire.TypeData:
		n.onData(f)
	case wire.TypeDataSeg:
		n.onDataSeg(f)
	case wire.TypeFailure:
		n.onFailure(f)
	}
}

// frameDst validates the destination rank of a frame; returns -1 for
// frames this process must drop (malformed or mis-routed).
func (n *netLayer) frameDst(f *wire.Frame) int {
	dst := int(f.DstWorld)
	if dst < 0 || dst >= len(n.nodeOf) || !n.localRank(dst) {
		return -1
	}
	return dst
}

func (n *netLayer) onEager(f *wire.Frame) {
	w := n.w
	buf, _ := f.Token.(*eagerBuf)
	release := func() {
		if buf != nil {
			w.pool.release(poolNoRank, buf)
		}
	}
	dst := n.frameDst(f)
	etype := kindTypes[reflect.Kind(f.Kind)]
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	if dst < 0 || etype == nil || draining {
		release()
		return
	}
	m := getMessage()
	m.ctx = f.Ctx
	m.src = int(f.SrcComm)
	m.tag = int(f.Tag)
	m.elems = int(f.Elems)
	m.bytes = int(f.PayloadLen)
	m.etype = etype
	m.kindOnly = true
	m.sdata = f.Payload
	m.payload = buf
	m.span = f.Span
	m.sendNs = f.SendTS
	if !w.inject(m, int(f.SrcWorld), dst) {
		release()
		putMessage(m)
	}
}

func (n *netLayer) onRTS(peer int, f *wire.Frame) {
	w := n.w
	dst := n.frameDst(f)
	etype := kindTypes[reflect.Kind(f.Kind)]
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	if dst < 0 || etype == nil || draining {
		return
	}
	m := getMessage()
	m.ctx = f.Ctx
	m.src = int(f.SrcComm)
	m.tag = int(f.Tag)
	m.elems = int(f.Elems)
	m.bytes = int(f.Elems) * int(etype.Size())
	m.etype = etype
	m.kindOnly = true
	m.rendezvous = true
	m.wireXid = f.Xid
	m.wireNode = peer
	m.wireSrc = int(f.SrcWorld)
	m.span = f.Span
	m.sendNs = f.SendTS
	if !w.inject(m, int(f.SrcWorld), dst) {
		putMessage(m)
	}
}

// matchedRTS runs when the matching engine pairs a remote RTS with a
// posted receive (from deliverTo, on either a task or a progress
// goroutine). It performs the receiver-side validation deliverTo would,
// registers the transaction, and answers CTS. On a validation error the
// receive fails locally but CTS is still sent — the payload left the
// sender correctly, so its handshake completes and the data frame is
// discarded on arrival (no transaction to claim).
func (n *netLayer) matchedRTS(msg *message, pr *postedRecv) {
	w := n.w
	var err error
	switch {
	case !typesMatch(msg, pr):
		err = &Error{Rank: pr.recvRank, Op: "Recv",
			Msg: fmt.Sprintf("datatype mismatch: receive buffer is []%v, message holds []%v", pr.etype, msg.etype)}
	case msg.elems > pr.relems:
		err = &Error{Rank: pr.recvRank, Op: "Recv",
			Msg: fmt.Sprintf("message truncated: %d elements into buffer of %d", msg.elems, pr.relems)}
	}
	h := wire.Header{
		Type:     wire.TypeCTS,
		Xid:      msg.wireXid,
		SrcWorld: int32(pr.recvRank),
		DstWorld: int32(msg.wireSrc),
	}
	node := msg.wireNode
	if err != nil {
		n.tr.Send(node, &h, nil) //nolint:errcheck // receive already failed
		pr.req.fail(err)
		putMessage(msg)
		// No transaction was registered, so the arriving data frame finds
		// nothing to claim and is discarded — pr's buffer is never touched
		// and can be recycled now.
		putPostedRecv(pr)
		return
	}
	wr := &wirePendingRecv{
		xid:     msg.wireXid,
		pr:      pr,
		src:     msg.wireSrc,
		srcComm: msg.src,
		tag:     msg.tag,
		elems:   msg.elems,
		bytes:   msg.bytes,
		span:    msg.span,
		sendNs:  msg.sendNs,
	}
	n.mu.Lock()
	if n.draining || w.rankDead(wr.src) {
		n.mu.Unlock()
		pr.req.fail(&DeadRankError{Rank: pr.recvRank, Op: "Recv", Dead: wr.src})
		putMessage(msg)
		return
	}
	n.recvs[wr.xid] = wr
	n.mu.Unlock()
	putMessage(msg)
	if serr := n.tr.Send(node, &h, nil); serr != nil {
		n.mu.Lock()
		if n.recvs[wr.xid] == wr {
			delete(n.recvs, wr.xid)
			n.mu.Unlock()
			pr.req.fail(&DeadRankError{Rank: pr.recvRank, Op: "Recv", Dead: wr.src})
			return
		}
		n.mu.Unlock()
	}
}

func (n *netLayer) onCTS(f *wire.Frame) {
	n.mu.Lock()
	ps := n.sends[f.Xid]
	delete(n.sends, f.Xid)
	n.mu.Unlock()
	if ps == nil {
		return // transaction already failed (peer death, cancel)
	}
	msg := ps.msg
	if th := n.w.traceHooks; th != nil && msg.span != 0 {
		// The receiver matched: from here on the sender's wait is wire
		// transfer time, not late-receiver time.
		th.SpanCts(ps.src, msg.span)
	}
	if msg.sdt != nil {
		n.sendTypedData(ps, msg, f.Xid)
		return
	}
	h := wire.Header{
		Type:     wire.TypeData,
		Kind:     uint8(msg.etype.Kind()),
		Xid:      f.Xid,
		Ctx:      msg.ctx,
		SrcComm:  int32(msg.src),
		SrcWorld: int32(ps.src),
		DstWorld: int32(ps.dst),
		Tag:      int32(msg.tag),
		Elems:    int32(msg.elems),
	}
	// msg.sdata still views the sender's buffer: the sending task is
	// blocked on sreq, which completes only below, after the transport
	// has copied the payload into its frame.
	err := n.tr.Send(n.nodeOf[ps.dst], &h, msg.sdata)
	if err != nil {
		msg.sreq.fail(&DeadRankError{Rank: ps.src, Op: "Send", Dead: ps.dst})
	} else {
		msg.sreq.complete(Status{})
	}
	putMessage(msg)
}

// wireTypedChunk is the packed segment size of the pipelined typed
// rendezvous datapath: the sender packs this many bytes at a time into
// one reused scratch buffer and streams them as DataSeg frames, so a
// large strided transfer never exists fully packed on either side.
const wireTypedChunk = 64 << 10

// sendTypedData is onCTS's tail for a typed rendezvous send. Against a
// v4 peer the payload streams as pipelined packed segments; against an
// older peer (or under Config.ForcePack, the ablation knob) it is packed
// whole into a pooled buffer and shipped as a single Data frame, exactly
// like a contiguous send.
func (n *netLayer) sendTypedData(ps *wirePendingSend, msg *message, xid uint64) {
	w := n.w
	node := n.nodeOf[ps.dst]
	esz := int(msg.etype.Size())
	var err error
	if w.cfg.ForcePack || n.peerVersion(node) < 4 {
		b := w.pool.get(poolNoRank, msg.bytes)
		dtPack(b.data[:msg.bytes], msg.sdata, msg.sdt, esz)
		h := wire.Header{
			Type:     wire.TypeData,
			Kind:     uint8(msg.etype.Kind()),
			Xid:      xid,
			Ctx:      msg.ctx,
			SrcComm:  int32(msg.src),
			SrcWorld: int32(ps.src),
			DstWorld: int32(ps.dst),
			Tag:      int32(msg.tag),
			Elems:    int32(msg.elems),
		}
		err = n.tr.Send(node, &h, b.data[:msg.bytes])
		w.pool.release(poolNoRank, b)
	} else {
		chunkElems := wireTypedChunk / esz
		if chunkElems < 1 {
			chunkElems = 1
		}
		scratch := w.pool.get(poolNoRank, chunkElems*esz)
		for off := 0; off < msg.elems; off += chunkElems {
			nel := min(chunkElems, msg.elems-off)
			seg := scratch.data[:nel*esz]
			dtPackRange(seg, msg.sdata, msg.sdt, esz, off, off+nel)
			h := wire.Header{
				Type:     wire.TypeDataSeg,
				Kind:     uint8(msg.etype.Kind()),
				Xid:      xid,
				Ctx:      msg.ctx,
				SrcComm:  int32(msg.src),
				SrcWorld: int32(ps.src),
				DstWorld: int32(ps.dst),
				Tag:      int32(msg.tag),
				// Elems carries the segment's element offset within the
				// packed message; the total rode the RTS.
				Elems: int32(off),
			}
			if err = n.tr.Send(node, &h, seg); err != nil {
				break
			}
		}
		w.pool.release(poolNoRank, scratch)
	}
	if err != nil {
		msg.sreq.fail(&DeadRankError{Rank: ps.src, Op: "Send", Dead: ps.dst})
	} else {
		msg.sreq.complete(Status{})
	}
	putMessage(msg)
}

// peerVersion reports the negotiated frame version toward node via the
// transport's optional PeerVersion extension. Transports without it —
// and links still handshaking — report MinVersion, the conservative
// answer: typed payloads then fall back to whole-pack Data frames the
// peer certainly understands.
func (n *netLayer) peerVersion(node int) uint8 {
	if pv, ok := n.tr.(interface{ PeerVersion(int) uint8 }); ok {
		return pv.PeerVersion(node)
	}
	return wire.MinVersion
}

func (n *netLayer) onData(f *wire.Frame) {
	w := n.w
	if wr, ok := f.Token.(*wirePendingRecv); ok {
		// The payload was read directly into wr.pr.rdata by the transport.
		n.completeWireRecv(wr)
		return
	}
	// The payload arrived packed in a pooled scratch: either the receive
	// is strided (the Alloc claim was refused so raw packed bytes never
	// touch the user buffer) or there is no transaction to claim
	// (validation failed at RTS time) and the frame is dropped.
	buf, _ := f.Token.(*eagerBuf)
	n.mu.Lock()
	wr := n.recvs[f.Xid]
	if wr != nil && wr.bytes == int(f.PayloadLen) && wr.pr.rdt != nil {
		delete(n.recvs, f.Xid)
	} else {
		wr = nil
	}
	n.mu.Unlock()
	if wr != nil {
		dtUnpack(wr.pr.rdata, f.Payload, wr.pr.rdt, int(wr.pr.etype.Size()))
	}
	if buf != nil {
		w.pool.release(poolNoRank, buf)
	}
	if wr != nil {
		n.completeWireRecv(wr)
	}
}

// onDataSeg applies one packed segment of a pipelined typed rendezvous
// transfer and completes the receive when the element count announced by
// the RTS has fully arrived.
func (n *netLayer) onDataSeg(f *wire.Frame) {
	w := n.w
	buf, _ := f.Token.(*eagerBuf)
	release := func() {
		if buf != nil {
			w.pool.release(poolNoRank, buf)
		}
	}
	n.mu.Lock()
	wr := n.recvs[f.Xid]
	n.mu.Unlock()
	if wr == nil {
		release()
		return
	}
	pr := wr.pr
	esz := int(pr.etype.Size())
	off := int(f.Elems)
	nel := len(f.Payload) / esz
	if off < 0 || nel <= 0 || off+nel > wr.elems || len(f.Payload) != nel*esz {
		release()
		return
	}
	if pr.rdt != nil {
		dtUnpackRange(pr.rdata, f.Payload, pr.rdt, esz, off, off+nel)
	} else {
		copy(pr.rdata[off*esz:], f.Payload)
	}
	release()
	wr.got += nel
	if wr.got < wr.elems {
		return
	}
	// Transfer complete: claim the transaction. It may have been failed
	// concurrently (onRankFailed, failAll), so re-check identity under
	// the lock — a failed receive must not complete twice.
	n.mu.Lock()
	if n.recvs[f.Xid] != wr {
		n.mu.Unlock()
		return
	}
	delete(n.recvs, f.Xid)
	n.mu.Unlock()
	n.completeWireRecv(wr)
}

// completeWireRecv is the shared completion tail of the three wire
// rendezvous datapaths (direct landing, whole-pack unpack, segments).
func (n *netLayer) completeWireRecv(wr *wirePendingRecv) {
	w := n.w
	pr := wr.pr
	if w.cfg.Hooks != nil {
		w.cfg.Hooks.OnDeliver(pr.recvRank, nil)
	}
	pr.req.complete(Status{Source: wr.srcComm, Tag: wr.tag, Count: wr.elems, Bytes: wr.bytes})
	if w.traceHooks != nil && wr.span != 0 {
		w.traceHooks.SpanDeliver(pr.recvRank, wr.span, wr.sendNs, pr.postNs, 0, wr.bytes, true, true)
	}
	putPostedRecv(pr)
}

func (n *netLayer) onFailure(f *wire.Frame) {
	r := int(f.SrcWorld)
	if r < 0 || r >= len(n.nodeOf) || n.localRank(r) {
		return
	}
	msg := "remote rank failed"
	if len(f.Payload) > 0 {
		msg = string(f.Payload)
	}
	n.w.rankFailed(r, &RankFailure{Rank: r, Cause: errors.New(msg)})
}

// PeerDown turns a permanently lost node into a ULFM-style failure of
// every rank that lived on it.
func (n *netLayer) PeerDown(peer int, err error) {
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	if draining {
		return
	}
	for r, node := range n.nodeOf {
		if node == peer {
			n.w.rankFailed(r, &RankFailure{Rank: r, Cause: err})
		}
	}
}

// failure/cancel integration ------------------------------------------

// onRankFailed runs at the tail of rankFailed: it fails the wire
// transactions that involve the dead rank, and — when the rank died in
// this process — broadcasts a failure frame so the other nodes cascade
// too. Failure frames for remotely-learned deaths are not rebroadcast.
func (n *netLayer) onRankFailed(r int, cause error) {
	n.mu.Lock()
	var failSends []*wirePendingSend
	for xid, ps := range n.sends {
		if ps.dst == r {
			failSends = append(failSends, ps)
			delete(n.sends, xid)
		}
	}
	var failRecvs []*wirePendingRecv
	for xid, wr := range n.recvs {
		if wr.src == r {
			failRecvs = append(failRecvs, wr)
			delete(n.recvs, xid)
		}
	}
	n.mu.Unlock()
	for _, ps := range failSends {
		ps.msg.sreq.fail(&DeadRankError{Rank: ps.src, Op: "Send", Dead: r})
		putMessage(ps.msg)
	}
	for _, wr := range failRecvs {
		wr.pr.req.fail(&DeadRankError{Rank: wr.pr.recvRank, Op: "Recv", Dead: r})
		// pr is not recycled: a data frame already in flight may still be
		// read into its buffer by the transport before the stream carries
		// the failure news; leaking one pooled object is the safe choice.
	}
	if !n.localRank(r) {
		return
	}
	h := wire.Header{Type: wire.TypeFailure, SrcWorld: int32(r)}
	payload := []byte(cause.Error())
	for node := 0; node < n.tr.Peers(); node++ {
		if node == n.self {
			continue
		}
		n.tr.Send(node, &h, payload) //nolint:errcheck // dead peers are already handled
	}
}

// failAll fails every parked wire transaction with a CancelledError —
// the cancel path (timeout, explicit Cancel).
func (n *netLayer) failAll(cause error) {
	n.mu.Lock()
	sends := n.sends
	recvs := n.recvs
	n.sends = make(map[uint64]*wirePendingSend)
	n.recvs = make(map[uint64]*wirePendingRecv)
	n.mu.Unlock()
	for _, ps := range sends {
		ps.msg.sreq.fail(&CancelledError{Rank: ps.src, Op: "Send", Cause: cause})
		putMessage(ps.msg)
	}
	for _, wr := range recvs {
		wr.pr.req.fail(&CancelledError{Rank: wr.pr.recvRank, Op: "Recv", Cause: cause})
	}
}

// shutdown runs after every local task finished: late frames are
// discarded from here on (their buffers released, keeping pool
// accounting balanced), sent-but-unacked frames get a short grace period
// to reach their peers, then the transport closes.
func (n *netLayer) shutdown() {
	n.mu.Lock()
	n.draining = true
	sends := n.sends
	n.sends = make(map[uint64]*wirePendingSend)
	n.recvs = make(map[uint64]*wirePendingRecv)
	n.mu.Unlock()
	for _, ps := range sends {
		putMessage(ps.msg) // rank died mid-rendezvous; nobody waits on sreq
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && n.tr.Stats().Inflight > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	n.tr.Close() //nolint:errcheck
}
