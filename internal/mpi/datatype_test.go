package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hls/internal/topology"
	"hls/internal/wire"
)

// expectTypedError runs fn expecting a fatal *Error whose message
// contains want.
func expectTypedError(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no error; want one containing %q", want)
		}
		e, ok := r.(*Error)
		if !ok {
			panic(r)
		}
		if !strings.Contains(e.Msg, want) {
			t.Fatalf("error %q does not contain %q", e.Msg, want)
		}
	}()
	fn()
}

func TestDatatypeConstructors(t *testing.T) {
	v := TypeVector(4, 2, 8).Commit()
	if v.Size() != 8 || v.Extent() != 3*8+2 {
		t.Errorf("vector: size %d extent %d", v.Size(), v.Extent())
	}
	if !v.strided() {
		t.Error("vector with stride > blocklen should be strided")
	}
	// stride == blocklen degenerates to contiguous, as does count == 1.
	if TypeVector(4, 2, 2).strided() || TypeVector(1, 16, 100).strided() {
		t.Error("contiguous vectors not normalized")
	}
	c := TypeContiguous(10)
	if c.Size() != 10 || c.Extent() != 10 || c.strided() {
		t.Errorf("contiguous: size %d extent %d strided %v", c.Size(), c.Extent(), c.strided())
	}
	s := TypeSubarray([]int{4, 6}, []int{2, 3}, []int{1, 2}).Commit()
	if s.Size() != 6 || s.Extent() != 24 {
		t.Errorf("subarray: size %d extent %d", s.Size(), s.Extent())
	}
	// A full-array subarray at offset zero is contiguous.
	if TypeSubarray([]int{4, 6}, []int{4, 6}, []int{0, 0}).strided() {
		t.Error("whole-array subarray not normalized")
	}
	// The same region at a nonzero offset is not (one run, shifted).
	if !TypeSubarray([]int{24}, []int{6}, []int{3}).strided() {
		t.Error("offset subarray wrongly normalized")
	}
	if !TypeVector(3, 2, 5).Commit().Committed() || TypeVector(3, 2, 5).Committed() {
		t.Error("Commit bookkeeping wrong")
	}
}

func TestDatatypeZeroSize(t *testing.T) {
	// Zero-length blocks and zero counts are legal and transfer nothing.
	for _, d := range []*Datatype{
		TypeVector(3, 0, 5),
		TypeVector(0, 4, 5),
		TypeContiguous(0),
		TypeSubarray([]int{4, 4}, []int{0, 2}, []int{1, 1}),
	} {
		if d.Size() != 0 || d.Extent() != 0 {
			t.Errorf("%s: size %d extent %d, want 0/0", d.kind, d.Size(), d.Extent())
		}
		if d.strided() {
			t.Errorf("%s: empty layout should normalize to contiguous", d.kind)
		}
	}
	run(t, 2, func(task *Task) error {
		dt := TypeVector(3, 0, 5).Commit()
		if task.Rank() == 0 {
			SendTyped(task, nil, make([]float64, 16), dt, 1, 0)
		} else {
			buf := make([]float64, 16)
			st := RecvTyped(task, nil, buf, dt, 0, 0)
			if st.Count != 0 || st.Bytes != 0 {
				return fmt.Errorf("empty typed message: status %+v", st)
			}
		}
		return nil
	})
}

func TestDatatypeErrors(t *testing.T) {
	expectTypedError(t, "blocks overlap", func() { TypeVector(3, 4, 2) })
	expectTypedError(t, "negative count", func() { TypeVector(-1, 1, 1) })
	expectTypedError(t, "negative element count", func() { TypeContiguous(-1) })
	expectTypedError(t, "out of range", func() { TypeSubarray(nil, nil, nil) })
	expectTypedError(t, "exceeds size", func() {
		TypeSubarray([]int{4}, []int{3}, []int{2})
	})

	// Using an uncommitted datatype is a usage error.
	err := runErr(2, func(task *Task) error {
		dt := TypeVector(2, 1, 4)
		if task.Rank() == 0 {
			SendTyped(task, nil, make([]int32, 8), dt, 1, 0)
		} else {
			RecvTyped(task, nil, make([]int32, 8), dt, 0, 0)
		}
		return nil
	})
	var e *Error
	if !errors.As(err, &e) || !strings.Contains(e.Msg, "not committed") {
		t.Fatalf("uncommitted datatype: %v", err)
	}

	// A buffer shorter than the datatype extent is a usage error.
	err = runErr(1, func(task *Task) error {
		IsendTyped(task, nil, make([]int32, 7), TypeVector(2, 1, 8).Commit(), 0, 0)
		return nil
	})
	if !errors.As(err, &e) || !strings.Contains(e.Msg, "shorter than datatype extent") {
		t.Fatalf("short buffer: %v", err)
	}
}

// fillSeq numbers a buffer so corruption and misplacement are visible.
func fillSeq(b []float64) {
	for i := range b {
		b[i] = float64(i + 1)
	}
}

func TestDatatypePackKernels(t *testing.T) {
	src := make([]float64, 64)
	fillSeq(src)
	sb := bytesOf(src)
	dt := TypeSubarray([]int{4, 16}, []int{3, 5}, []int{1, 7}).Commit()
	packed := make([]float64, dt.Size())
	dtPack(bytesOf(packed), sb, dt, 8)
	want := []float64{
		24, 25, 26, 27, 28,
		40, 41, 42, 43, 44,
		56, 57, 58, 59, 60,
	}
	for i, w := range want {
		if packed[i] != w {
			t.Fatalf("packed[%d] = %v, want %v (%v)", i, packed[i], w, packed)
		}
	}
	// Unpack scatters it back.
	back := make([]float64, 64)
	dtUnpack(bytesOf(back), bytesOf(packed), dt, 8)
	for i, w := range want {
		if back[int(w)-1] != w {
			t.Fatalf("unpacked element %d missing: %v", i, back)
		}
	}
	// Range pack over any chunking must equal the whole pack.
	for _, chunk := range []int{1, 2, 4, 7, 15} {
		got := make([]float64, dt.Size())
		for lo := 0; lo < dt.Size(); lo += chunk {
			hi := min(lo+chunk, dt.Size())
			dtPackRange(bytesOf(got[lo:hi]), sb, dt, 8, lo, hi)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: packed[%d] = %v, want %v", chunk, i, got[i], want[i])
			}
		}
		// And the inverse chunked unpack.
		rb := make([]float64, 64)
		for lo := 0; lo < dt.Size(); lo += chunk {
			hi := min(lo+chunk, dt.Size())
			dtUnpackRange(bytesOf(rb), bytesOf(got[lo:hi]), dt, 8, lo, hi)
		}
		for i := range back {
			if rb[i] != back[i] {
				t.Fatalf("chunk %d: unpack diverges at %d", chunk, i)
			}
		}
	}
	// dtCopy strided-to-strided must agree with pack-then-unpack.
	ddt := TypeVector(15, 1, 4).Commit()
	direct := make([]float64, ddt.Extent())
	dtCopy(bytesOf(direct), ddt, sb, dt, 8)
	viaPack := make([]float64, ddt.Extent())
	dtUnpack(bytesOf(viaPack), bytesOf(packed), ddt, 8)
	for i := range direct {
		if direct[i] != viaPack[i] {
			t.Fatalf("dtCopy diverges from pack+unpack at %d: %v vs %v", i, direct[i], viaPack[i])
		}
	}
}

func TestTypedSendRecvInProcess(t *testing.T) {
	// A strided vector lands contiguously; a contiguous payload scatters
	// into a subarray; strided-to-strided exchanges elide packing in both
	// directions. Sizes beyond the eager limit exercise rendezvous.
	for _, elems := range []int{8, 4096} {
		elems := elems
		t.Run(fmt.Sprintf("elems=%d", elems), func(t *testing.T) {
			w := run(t, 2, func(task *Task) error {
				sdt := TypeVector(elems, 1, 2).Commit() // every other element
				src := make([]float64, sdt.Extent())
				fillSeq(src)
				if task.Rank() == 0 {
					SendTyped(task, nil, src, sdt, 1, 0)
					// Typed receive of a contiguous reply.
					back := make([]float64, sdt.Extent())
					RecvTyped(task, nil, back, sdt, 1, 1)
					for i := 0; i < elems; i++ {
						if back[2*i] != src[2*i]+0.5 {
							return fmt.Errorf("back[%d] = %v", 2*i, back[2*i])
						}
					}
				} else {
					flat := make([]float64, elems)
					st := RecvTyped(task, nil, flat, nil, 0, 0)
					if st.Count != elems {
						return fmt.Errorf("count %d, want %d", st.Count, elems)
					}
					for i := range flat {
						if flat[i] != float64(2*i+1) {
							return fmt.Errorf("flat[%d] = %v", i, flat[i])
						}
					}
					for i := range flat {
						flat[i] += 0.5
					}
					SendTyped(task, nil, flat, nil, 0, 1)
				}
				return nil
			})
			if w.Stats().PackElisions != 0 {
				// One side contiguous still needs a single strided pass, but
				// an intermediate only exists when the message was packed:
				// posted-receive delivery elides it.
				t.Logf("pack elisions: %d", w.Stats().PackElisions)
			}
		})
	}
}

func TestTypedStridedToStridedElision(t *testing.T) {
	const n = 2048 // 16 KiB packed: rendezvous, no eager intermediate
	w := run(t, 2, func(task *Task) error {
		sdt := TypeSubarray([]int{64, 64}, []int{32, 64}, []int{16, 0}).Commit()
		rdt := TypeSubarray([]int{64, 64}, []int{64, 32}, []int{0, 16}).Commit()
		if sdt.Size() != n || rdt.Size() != n {
			return fmt.Errorf("layout sizes %d/%d", sdt.Size(), rdt.Size())
		}
		if task.Rank() == 0 {
			src := make([]float64, 64*64)
			fillSeq(src)
			// Let the receiver post first so delivery runs strided-to-strided.
			time.Sleep(10 * time.Millisecond)
			SendTyped(task, nil, src, sdt, 1, 0)
		} else {
			dst := make([]float64, 64*64)
			req := IrecvTyped(task, nil, dst, rdt, 0, 0)
			st := req.Wait()
			putRequest(req)
			if st.Count != n {
				return fmt.Errorf("count %d", st.Count)
			}
			// Element k of the packed stream is src[(16+k/64)*64 + k%64],
			// landing at dst[(k/32)*64 + 16 + k%32].
			for k := 0; k < n; k++ {
				want := float64((16+k/64)*64 + k%64 + 1)
				got := dst[(k/32)*64+16+k%32]
				if got != want {
					return fmt.Errorf("element %d: got %v want %v", k, got, want)
				}
			}
		}
		return nil
	})
	if w.Stats().PackElisions == 0 {
		t.Error("strided-to-strided rendezvous delivery did not elide packing")
	}
}

func TestTypedForcePackBitwiseIdentical(t *testing.T) {
	// The ablation knob must not change results: run the same exchange
	// with elision enabled and with forced packing, compare buffers.
	exchange := func(force bool) []float64 {
		out := make([]float64, 48*48)
		w, err := Run(Config{NumTasks: 2, Timeout: 30 * time.Second, ForcePack: force}, func(task *Task) error {
			sdt := TypeSubarray([]int{48, 48}, []int{24, 24}, []int{12, 12}).Commit()
			if task.Rank() == 0 {
				src := make([]float64, 48*48)
				fillSeq(src)
				SendTyped(task, nil, src, sdt, 1, 0)
			} else {
				RecvTyped(task, nil, out, sdt, 0, 0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if force && w.Stats().PackElisions != 0 {
			t.Fatalf("ForcePack still elided %d packs", w.Stats().PackElisions)
		}
		return out
	}
	a, b := exchange(false), exchange(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ablation changed results at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTypedWildcardSource(t *testing.T) {
	run(t, 3, func(task *Task) error {
		rdt := TypeVector(4, 2, 4).Commit()
		switch task.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]int64, rdt.Extent())
				st := RecvTyped(task, nil, buf, rdt, AnySource, AnyTag)
				if st.Count != 8 {
					return fmt.Errorf("count %d", st.Count)
				}
				for k := 0; k < 8; k++ {
					if got := buf[(k/2)*4+k%2]; got != int64(st.Source*100+k) {
						return fmt.Errorf("from %d: element %d = %d", st.Source, k, got)
					}
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources: %v", seen)
			}
		default:
			vals := make([]int64, 8)
			for k := range vals {
				vals[k] = int64(task.Rank()*100 + k)
			}
			Send(task, nil, vals, 0, task.Rank())
		}
		return nil
	})
}

func TestTypedTruncation(t *testing.T) {
	// A typed receive selecting fewer elements than the message carries
	// fails like the contiguous truncation error.
	err := runErr(2, func(task *Task) error {
		if task.Rank() == 0 {
			Send(task, nil, make([]int32, 16), 1, 0)
		} else {
			rdt := TypeVector(4, 2, 4).Commit() // selects 8 < 16
			RecvTyped(task, nil, make([]int32, rdt.Extent()), rdt, 0, 0)
		}
		return nil
	})
	var e *Error
	if !errors.As(err, &e) || !strings.Contains(e.Msg, "truncated") {
		t.Fatalf("typed truncation: %v", err)
	}
}

func TestTypedSendrecvSameBufferDifferentLayouts(t *testing.T) {
	// Sendrecv between two disjoint subarrays of one buffer: the
	// same-address skip must not trigger (layouts differ), the strided
	// copy must run.
	run(t, 1, func(task *Task) error {
		buf := make([]float64, 8*8)
		fillSeq(buf)
		left := TypeSubarray([]int{8, 8}, []int{8, 2}, []int{0, 0}).Commit()
		right := TypeSubarray([]int{8, 8}, []int{8, 2}, []int{0, 6}).Commit()
		SendrecvTyped(task, nil, buf, left, 0, 0, buf, right, 0, 0)
		for r := 0; r < 8; r++ {
			for c := 0; c < 2; c++ {
				if buf[r*8+6+c] != buf[r*8+c] {
					return fmt.Errorf("row %d col %d: %v != %v", r, c, buf[r*8+6+c], buf[r*8+c])
				}
			}
		}
		return nil
	})
}

func TestTypedMixedTrafficStress(t *testing.T) {
	// Typed and contiguous traffic interleaved on one communicator across
	// eager and rendezvous sizes; run under -race this doubles as the
	// concurrency check on the typed datapaths.
	const rounds = 40
	w := run(t, 4, func(task *Task) error {
		rng := rand.New(rand.NewSource(int64(task.Rank()) + 7))
		partner := task.Rank() ^ 1
		dt := TypeVector(96, 4, 8).Commit() // 384 elems, extent 764
		for i := 0; i < rounds; i++ {
			typed := rng.Intn(2) == 0
			reqs := make([]*Request, 0, 2)
			src := make([]int64, dt.Extent())
			dst := make([]int64, dt.Extent())
			for k := range src {
				src[k] = int64(task.Rank()*1000 + i)
			}
			if typed {
				reqs = append(reqs, IrecvTyped(task, nil, dst, dt, partner, i))
				reqs = append(reqs, IsendTyped(task, nil, src, dt, partner, i))
			} else {
				reqs = append(reqs, Irecv(task, nil, dst[:dt.Size()], partner, i))
				reqs = append(reqs, Isend(task, nil, src[:dt.Size()], partner, i))
			}
			Waitall(reqs)
			// Element 0 of the packed stream lands at offset 0 under both
			// the contiguous receive and the vector's first block.
			want := int64(partner*1000 + i)
			if dst[0] != want {
				return fmt.Errorf("rank %d round %d: got %d want %d", task.Rank(), i, dst[0], want)
			}
		}
		return nil
	})
	if w.Stats().EagerPoolOutstanding != 0 {
		t.Errorf("%d eager buffers leaked", w.Stats().EagerPoolOutstanding)
	}
}

func TestTypedCopyAndApply(t *testing.T) {
	run(t, 1, func(task *Task) error {
		src := make([]float64, 32)
		fillSeq(src)
		sdt := TypeVector(8, 2, 4).Commit()
		dst := make([]float64, 16)
		if n := TypedCopy(task, dst, nil, src, sdt, "test"); n != 16 {
			return fmt.Errorf("copied %d", n)
		}
		for i := 0; i < 16; i++ {
			want := float64((i/2)*4 + i%2 + 1)
			if dst[i] != want {
				return fmt.Errorf("dst[%d] = %v, want %v", i, dst[i], want)
			}
		}
		// TypedApply folds with an operator instead of overwriting.
		acc := make([]float64, 16)
		TypedApply(task, acc, nil, src, sdt, OpSum, "test")
		TypedApply(task, acc, nil, src, sdt, OpSum, "test")
		for i := range acc {
			if acc[i] != 2*dst[i] {
				return fmt.Errorf("acc[%d] = %v, want %v", i, acc[i], 2*dst[i])
			}
		}
		return nil
	})
}

func TestTypedOverWire(t *testing.T) {
	// Typed traffic across the loopback transport: an eager typed send
	// (packs into a pooled frame), a rendezvous one large enough to
	// stream as multiple DataSeg chunks, and a typed receive of each.
	const big = 16384 // 128 KiB packed float64 > wireTypedChunk
	fn := func(task *Task) error {
		switch task.Rank() {
		case 0:
			sdt := TypeVector(32, 1, 3).Commit()
			src := make([]float64, sdt.Extent())
			fillSeq(src)
			SendTyped(task, nil, src, sdt, 2, 1) // eager over the wire
			bdt := TypeVector(big, 1, 2).Commit()
			bsrc := make([]float64, bdt.Extent())
			fillSeq(bsrc)
			SendTyped(task, nil, bsrc, bdt, 2, 2) // pipelined rendezvous
		case 2:
			flat := make([]float64, 32)
			st := RecvTyped(task, nil, flat, nil, 0, 1)
			if st.Count != 32 {
				return fmt.Errorf("eager count %d", st.Count)
			}
			for i := range flat {
				if flat[i] != float64(3*i+1) {
					return fmt.Errorf("eager flat[%d] = %v", i, flat[i])
				}
			}
			rdt := TypeVector(big, 1, 2).Commit() // scatter back out strided
			dst := make([]float64, rdt.Extent())
			st = RecvTyped(task, nil, dst, rdt, 0, 2)
			if st.Count != big {
				return fmt.Errorf("rendezvous count %d", st.Count)
			}
			for k := 0; k < big; k++ {
				if dst[2*k] != float64(2*k+1) {
					return fmt.Errorf("rendezvous dst[%d] = %v", 2*k, dst[2*k])
				}
			}
		}
		return nil
	}
	w0, w1, err0, err1 := runWirePair(t, 2, fn)
	if err0 != nil || err1 != nil {
		t.Fatalf("err0=%v err1=%v", err0, err1)
	}
	for i, w := range []*World{w0, w1} {
		if out := w.Stats().EagerPoolOutstanding; out != 0 {
			t.Errorf("world %d: %d eager buffers leaked", i, out)
		}
	}
}

// runWirePairForcePack is runWirePair with Config.ForcePack set in both
// worlds, pinning the whole-pack wire fallback.
func runWirePairForcePack(t *testing.T, perNode int, fn func(*Task) error) (err0, err1 error) {
	t.Helper()
	m, err := topology.New(topology.Spec{
		Name:           "wiretest",
		Nodes:          2,
		SocketsPerNode: 1,
		CoresPerSocket: perNode,
		ThreadsPerCore: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	mk := func(self int, ln net.Listener) *World {
		tr, err := wire.NewTCP(wire.Config{Addrs: addrs, Self: self, WorldKey: 42}, ln)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(Config{
			NumTasks:  2 * perNode,
			Machine:   m,
			Wire:      &WireConfig{Transport: tr},
			ForcePack: true,
			Timeout:   20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w0, w1 := mk(0, ln0), mk(1, ln1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); err0 = w0.Run(fn) }()
	go func() { defer wg.Done(); err1 = w1.Run(fn) }()
	wg.Wait()
	return err0, err1
}

func TestTypedOverWireForcePack(t *testing.T) {
	// With ForcePack the wire rendezvous falls back to one whole-pack
	// Data frame; results must be identical.
	const n = 4096
	fn := func(task *Task) error {
		dt := TypeVector(n, 1, 2).Commit()
		switch task.Rank() {
		case 0:
			src := make([]float64, dt.Extent())
			fillSeq(src)
			SendTyped(task, nil, src, dt, 2, 0)
		case 2:
			dst := make([]float64, dt.Extent())
			if st := RecvTyped(task, nil, dst, dt, 0, 0); st.Count != n {
				return fmt.Errorf("count %d", st.Count)
			}
			for k := 0; k < n; k++ {
				if dst[2*k] != float64(2*k+1) {
					return fmt.Errorf("dst[%d] = %v", 2*k, dst[2*k])
				}
			}
		}
		return nil
	}
	err0, err1 := runWirePairForcePack(t, 2, fn)
	if err0 != nil || err1 != nil {
		t.Fatalf("err0=%v err1=%v", err0, err1)
	}
}
