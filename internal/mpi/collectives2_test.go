package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestSsendSynchronizes(t *testing.T) {
	// A small Ssend must not complete before the receiver matches it.
	var order []string
	done := make(chan struct{})
	_, err := Run(Config{NumTasks: 2, Timeout: 30 * time.Second}, func(task *Task) error {
		if task.Rank() == 0 {
			Ssend(task, nil, []int{7}, 1, 0)
			order = append(order, "send-complete")
			close(done)
		} else {
			time.Sleep(50 * time.Millisecond)
			select {
			case <-done:
				return fmt.Errorf("small Ssend completed before the receive was posted")
			default:
			}
			buf := make([]int, 1)
			RecvSsend(task, nil, buf, 0, 0)
			if buf[0] != 7 {
				return fmt.Errorf("payload %d", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSsendLargeUsesRendezvous(t *testing.T) {
	_, err := Run(Config{NumTasks: 2, Timeout: 30 * time.Second}, func(task *Task) error {
		big := make([]float64, 4096)
		if task.Rank() == 0 {
			Ssend(task, nil, big, 1, 0)
		} else {
			RecvSsend(task, nil, big, 0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	const n = 5
	run(t, n, func(task *Task) error {
		r := task.Rank()
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			counts[i] = i + 1
			displs[i] = total
			total += counts[i]
		}
		send := make([]int, counts[r])
		for i := range send {
			send[i] = r*10 + i
		}
		recv := make([]int, total)
		Allgatherv(task, nil, send, recv, counts, displs)
		for src := 0; src < n; src++ {
			for i := 0; i < counts[src]; i++ {
				if recv[displs[src]+i] != src*10+i {
					return fmt.Errorf("rank %d: recv[%d] = %d", r, displs[src]+i, recv[displs[src]+i])
				}
			}
		}
		return nil
	})
}

func TestAllgathervValidation(t *testing.T) {
	if err := runErr(2, func(task *Task) error {
		Allgatherv(task, nil, []int{1}, make([]int, 2), []int{1}, []int{0, 1})
		return nil
	}); err == nil {
		t.Error("bad counts length accepted")
	}
	if err := runErr(2, func(task *Task) error {
		Allgatherv(task, nil, []int{1, 2}, make([]int, 2), []int{1, 1}, []int{0, 1})
		return nil
	}); err == nil {
		t.Error("send length != counts[rank] accepted")
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	run(t, n, func(task *Task) error {
		r := task.Rank()
		// Rank r sends (dst+1) elements of value r*100+dst to each dst.
		sendCounts := make([]int, n)
		sendDispls := make([]int, n)
		total := 0
		for dst := 0; dst < n; dst++ {
			sendCounts[dst] = dst + 1
			sendDispls[dst] = total
			total += dst + 1
		}
		send := make([]int, total)
		for dst := 0; dst < n; dst++ {
			for i := 0; i < sendCounts[dst]; i++ {
				send[sendDispls[dst]+i] = r*100 + dst
			}
		}
		// Everyone sends me (r+1) elements.
		recvCounts := make([]int, n)
		recvDispls := make([]int, n)
		total = 0
		for src := 0; src < n; src++ {
			recvCounts[src] = r + 1
			recvDispls[src] = total
			total += r + 1
		}
		recv := make([]int, total)
		Alltoallv(task, nil, send, sendCounts, sendDispls, recv, recvCounts, recvDispls)
		for src := 0; src < n; src++ {
			for i := 0; i < recvCounts[src]; i++ {
				if got := recv[recvDispls[src]+i]; got != src*100+r {
					return fmt.Errorf("rank %d: from %d got %d", r, src, got)
				}
			}
		}
		return nil
	})
}

func TestReduceScatterBlock(t *testing.T) {
	const n, block = 4, 3
	run(t, n, func(task *Task) error {
		r := task.Rank()
		send := make([]float64, n*block)
		for i := range send {
			send[i] = float64(r + 1) // sum over ranks = n(n+1)/2
		}
		recv := make([]float64, block)
		ReduceScatterBlock(task, nil, send, recv, OpSum)
		want := float64(n * (n + 1) / 2)
		for i, v := range recv {
			if v != want {
				return fmt.Errorf("rank %d: recv[%d] = %v, want %v", r, i, v, want)
			}
		}
		return nil
	})
}

func TestReduceScatterBlockValidation(t *testing.T) {
	if err := runErr(2, func(task *Task) error {
		ReduceScatterBlock(task, nil, make([]float64, 3), make([]float64, 2), OpSum)
		return nil
	}); err == nil {
		t.Error("indivisible send buffer accepted")
	}
}

func TestAllreduceRDAllSizes(t *testing.T) {
	// Recursive doubling must agree with the straightforward algorithm
	// for power-of-two and non-power-of-two sizes alike.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16} {
		run(t, n, func(task *Task) error {
			send := []float64{float64(task.Rank() + 1), float64(task.Rank() * task.Rank())}
			rd := make([]float64, 2)
			plain := make([]float64, 2)
			AllreduceRD(task, nil, send, rd, OpSum)
			Allreduce(task, nil, send, plain, OpSum)
			if rd[0] != plain[0] || rd[1] != plain[1] {
				return fmt.Errorf("n=%d rank=%d: RD %v != plain %v", n, task.Rank(), rd, plain)
			}
			return nil
		})
	}
}

func TestAllreduceRDOps(t *testing.T) {
	for _, op := range []Op{OpSum, OpMax, OpMin, OpProd} {
		run(t, 6, func(task *Task) error {
			send := []float64{float64(task.Rank() + 1)}
			rd := make([]float64, 1)
			plain := make([]float64, 1)
			AllreduceRD(task, nil, send, rd, op)
			Allreduce(task, nil, send, plain, op)
			if rd[0] != plain[0] {
				return fmt.Errorf("op %v: RD %v != plain %v", op, rd[0], plain[0])
			}
			return nil
		})
	}
}

func TestAllreduceRDRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n, k = 7, 9
	inputs := make([][]float64, n)
	want := make([]float64, k)
	for r := range inputs {
		inputs[r] = make([]float64, k)
		for i := range inputs[r] {
			inputs[r][i] = float64(rng.Intn(100))
			want[i] += inputs[r][i]
		}
	}
	run(t, n, func(task *Task) error {
		recv := make([]float64, k)
		AllreduceRD(task, nil, inputs[task.Rank()], recv, OpSum)
		for i := range recv {
			if recv[i] != want[i] {
				return fmt.Errorf("recv[%d] = %v, want %v", i, recv[i], want[i])
			}
		}
		return nil
	})
}
