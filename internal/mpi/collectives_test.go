package mpi

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestBarrierOrdering(t *testing.T) {
	// No task may leave the barrier before every task has entered it.
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		var entered atomic.Int32
		run(t, n, func(task *Task) error {
			entered.Add(1)
			Barrier(task, nil)
			if got := entered.Load(); got != int32(n) {
				return fmt.Errorf("n=%d: left barrier with %d entered", n, got)
			}
			return nil
		})
	}
}

func TestBarrierRepeated(t *testing.T) {
	// Phase counter: every task must observe every phase completely.
	const n, phases = 5, 20
	counts := make([]atomic.Int32, phases)
	run(t, n, func(task *Task) error {
		for p := 0; p < phases; p++ {
			counts[p].Add(1)
			Barrier(task, nil)
			if got := counts[p].Load(); got != int32(n) {
				return fmt.Errorf("phase %d: %d/%d", p, got, n)
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < n; root += max(1, n/3) {
			run(t, n, func(task *Task) error {
				buf := make([]float64, 10)
				if task.Rank() == root {
					for i := range buf {
						buf[i] = float64(root*100 + i)
					}
				}
				Bcast(task, nil, buf, root)
				for i := range buf {
					if buf[i] != float64(root*100+i) {
						return fmt.Errorf("n=%d root=%d rank=%d: buf[%d]=%v", n, root, task.Rank(), i, buf[i])
					}
				}
				return nil
			})
		}
	}
}

func TestBcastLarge(t *testing.T) {
	// Rendezvous-sized broadcast payload.
	const k = 10000
	run(t, 6, func(task *Task) error {
		buf := make([]float64, k)
		if task.Rank() == 2 {
			for i := range buf {
				buf[i] = float64(i)
			}
		}
		Bcast(task, nil, buf, 2)
		if buf[k-1] != float64(k-1) {
			return fmt.Errorf("rank %d: tail %v", task.Rank(), buf[k-1])
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 9} {
		run(t, n, func(task *Task) error {
			send := []int{task.Rank() + 1, task.Rank() * 2}
			recv := make([]int, 2)
			Reduce(task, nil, send, recv, OpSum, 0)
			if task.Rank() == 0 {
				wantA := n * (n + 1) / 2
				wantB := n * (n - 1) // sum of 2r
				if recv[0] != wantA || recv[1] != wantB {
					return fmt.Errorf("n=%d: reduce = %v, want [%d %d]", n, recv, wantA, wantB)
				}
			}
			return nil
		})
	}
}

func TestReduceOps(t *testing.T) {
	const n = 6
	cases := []struct {
		op   Op
		want float64
	}{
		{OpSum, 15}, // 0+1+..+5
		{OpProd, 0}, // contains 0
		{OpMax, 5},
		{OpMin, 0},
	}
	for _, c := range cases {
		run(t, n, func(task *Task) error {
			recv := make([]float64, 1)
			Reduce(task, nil, []float64{float64(task.Rank())}, recv, c.op, n-1)
			if task.Rank() == n-1 && recv[0] != c.want {
				return fmt.Errorf("op %v = %v, want %v", c.op, recv[0], c.want)
			}
			return nil
		})
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		run(t, n, func(task *Task) error {
			recv := make([]float64, 1)
			Allreduce(task, nil, []float64{1}, recv, OpSum)
			if recv[0] != float64(n) {
				return fmt.Errorf("n=%d rank=%d: allreduce = %v", n, task.Rank(), recv[0])
			}
			return nil
		})
	}
}

func TestGatherScatter(t *testing.T) {
	const n, k = 5, 3
	run(t, n, func(task *Task) error {
		r := task.Rank()
		send := make([]int, k)
		for i := range send {
			send[i] = r*10 + i
		}
		recv := make([]int, n*k)
		Gather(task, nil, send, recv, 1)
		if r == 1 {
			for src := 0; src < n; src++ {
				for i := 0; i < k; i++ {
					if recv[src*k+i] != src*10+i {
						return fmt.Errorf("gather[%d][%d] = %d", src, i, recv[src*k+i])
					}
				}
			}
			// Scatter it back doubled.
			for i := range recv {
				recv[i] *= 2
			}
		}
		back := make([]int, k)
		Scatter(task, nil, recv, back, 1)
		for i := 0; i < k; i++ {
			if back[i] != 2*(r*10+i) {
				return fmt.Errorf("scatter rank %d: %v", r, back)
			}
		}
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	const n = 4
	run(t, n, func(task *Task) error {
		r := task.Rank()
		// Rank r contributes r+1 elements.
		send := make([]float64, r+1)
		for i := range send {
			send[i] = float64(r)
		}
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for i := 0; i < n; i++ {
			counts[i] = i + 1
			displs[i] = total
			total += counts[i]
		}
		recv := make([]float64, total)
		Gatherv(task, nil, send, recv, counts, displs, 0)
		if r == 0 {
			idx := 0
			for src := 0; src < n; src++ {
				for i := 0; i < counts[src]; i++ {
					if recv[idx] != float64(src) {
						return fmt.Errorf("gatherv[%d] = %v, want %d", idx, recv[idx], src)
					}
					idx++
				}
			}
		}
		out := make([]float64, counts[r])
		Scatterv(task, nil, recv, counts, displs, out, 0)
		for _, v := range out {
			if v != float64(r) {
				return fmt.Errorf("scatterv rank %d got %v", r, out)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		run(t, n, func(task *Task) error {
			r := task.Rank()
			recv := make([]int, n*2)
			Allgather(task, nil, []int{r, r * r}, recv)
			for src := 0; src < n; src++ {
				if recv[2*src] != src || recv[2*src+1] != src*src {
					return fmt.Errorf("n=%d rank=%d: allgather = %v", n, r, recv)
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		run(t, n, func(task *Task) error {
			r := task.Rank()
			send := make([]int, n)
			for j := range send {
				send[j] = r*100 + j // destined to rank j
			}
			recv := make([]int, n)
			Alltoall(task, nil, send, recv)
			for src := 0; src < n; src++ {
				if recv[src] != src*100+r {
					return fmt.Errorf("n=%d rank=%d: alltoall = %v", n, r, recv)
				}
			}
			return nil
		})
	}
}

func TestScan(t *testing.T) {
	const n = 7
	run(t, n, func(task *Task) error {
		r := task.Rank()
		recv := make([]int, 1)
		Scan(task, nil, []int{r + 1}, recv, OpSum)
		want := (r + 1) * (r + 2) / 2
		if recv[0] != want {
			return fmt.Errorf("rank %d: scan = %d, want %d", r, recv[0], want)
		}
		return nil
	})
}

func TestCollectiveSequencePipelining(t *testing.T) {
	// Back-to-back collectives must not confuse each other's traffic even
	// when some ranks race ahead.
	const n = 4
	run(t, n, func(task *Task) error {
		for i := 0; i < 25; i++ {
			buf := []int{0}
			if task.Rank() == i%n {
				buf[0] = i
			}
			Bcast(task, nil, buf, i%n)
			if buf[0] != i {
				return fmt.Errorf("iteration %d: got %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestReduceRandomized(t *testing.T) {
	// Property: Reduce(OpSum) equals the serial sum for random inputs.
	rng := rand.New(rand.NewSource(7))
	const n, k = 6, 17
	inputs := make([][]float64, n)
	want := make([]float64, k)
	for r := range inputs {
		inputs[r] = make([]float64, k)
		for i := range inputs[r] {
			inputs[r][i] = float64(rng.Intn(1000))
			want[i] += inputs[r][i]
		}
	}
	run(t, n, func(task *Task) error {
		recv := make([]float64, k)
		Allreduce(task, nil, inputs[task.Rank()], recv, OpSum)
		for i := range recv {
			if recv[i] != want[i] {
				return fmt.Errorf("allreduce[%d] = %v, want %v", i, recv[i], want[i])
			}
		}
		return nil
	})
}

func TestCommDup(t *testing.T) {
	run(t, 4, func(task *Task) error {
		dup := Dup(task, nil)
		if dup.Size() != 4 || dup.Rank(task) != task.Rank() {
			return fmt.Errorf("dup size/rank wrong")
		}
		// Traffic on dup must not match traffic on world.
		if task.Rank() == 0 {
			Send(task, dup, []int{1}, 1, 0)
			Send(task, nil, []int{2}, 1, 0)
		} else if task.Rank() == 1 {
			buf := make([]int, 1)
			Recv(task, nil, buf, 0, 0)
			if buf[0] != 2 {
				return fmt.Errorf("world recv got dup message: %d", buf[0])
			}
			Recv(task, dup, buf, 0, 0)
			if buf[0] != 1 {
				return fmt.Errorf("dup recv got %d", buf[0])
			}
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	const n = 6
	run(t, n, func(task *Task) error {
		r := task.Rank()
		// Even/odd split, reverse rank order via key.
		sub := Split(task, nil, r%2, -r)
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// key=-r means higher world rank first.
		wantRank := map[int]int{0: 2, 2: 1, 4: 0, 1: 2, 3: 1, 5: 0}[r]
		if got := sub.Rank(task); got != wantRank {
			return fmt.Errorf("world rank %d has sub rank %d, want %d", r, got, wantRank)
		}
		// Collectives work inside the sub-communicator.
		recv := make([]int, 1)
		Allreduce(task, sub, []int{r}, recv, OpSum)
		want := 0 + 2 + 4
		if r%2 == 1 {
			want = 1 + 3 + 5
		}
		if recv[0] != want {
			return fmt.Errorf("sub allreduce = %d, want %d", recv[0], want)
		}
		return nil
	})
}

func TestCommSplitUndefined(t *testing.T) {
	run(t, 4, func(task *Task) error {
		color := 0
		if task.Rank() == 3 {
			color = Undefined
		}
		sub := Split(task, nil, color, 0)
		if task.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("undefined rank got a communicator")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			return fmt.Errorf("sub = %v", sub)
		}
		return nil
	})
}

func TestInvalidRootFatal(t *testing.T) {
	err := runErr(2, func(task *Task) error {
		Bcast(task, nil, []int{1}, 7)
		return nil
	})
	if err == nil {
		t.Error("invalid root accepted")
	}
}

func TestOpString(t *testing.T) {
	for _, op := range []Op{OpSum, OpProd, OpMax, OpMin} {
		if op.String() == "" {
			t.Errorf("empty name for op %d", op)
		}
	}
}
