package mpi

// TraceHooks is the runtime's tracing extension point (Config.Trace): a
// tracer that allocates per-message span ids, timestamps the send/post/
// deliver corners of every transfer, and brackets blocking waits — the
// raw material for cross-process flow graphs and wait attribution
// (internal/obs implements it).
//
// It is deliberately separate from Hooks: the message hooks family grows
// by interface extension on one value, while tracing wants its own
// single nil check on the datapath — a world with tracing disabled pays
// one predictable branch per send and nothing else.
//
// Timestamps are nanoseconds on the tracer's own clock (Now), so all
// runtime events share one time base with the tracer's recorder.
// Implementations are called from task goroutines and from wire
// progress goroutines concurrently; they must be safe and fast.
type TraceHooks interface {
	// Now returns the current time on the tracer's clock, in ns.
	Now() int64
	// SpanStart is called once per message send, after validation and
	// protocol selection. It returns the span id to stamp on the message
	// and the send timestamp. remote is true when the destination lives
	// in another process (the message will cross the wire).
	SpanStart(worldSrc, worldDst, bytes int, rendezvous, remote bool) (span uint64, sendNs int64)
	// SpanDeliver is called when the message has landed in the receiver's
	// buffer and its receive request has completed (completion happens
	// first, so the woken receiver's progress overlaps the tracer's
	// bookkeeping instead of waiting behind it). postNs is when the
	// receive was posted (0 if unknown — e.g. the receiver's world has
	// tracing off but the sender's frame carried a span). deliverNs is
	// the match timestamp when the caller just read one — an in-process
	// delivery is triggered by the send or the post, both of which were
	// stamped nanoseconds earlier, so re-reading the clock would only
	// add cost on the handoff path; 0 means "read it yourself" (the
	// wire delivery path, where the last read is a socket round old).
	// The flow end therefore marks when the transfer unblocked, not
	// when the copy finished — copy time is work, not wait. bytes and
	// rendezvous describe the message, so the tracer can tag the flow
	// pair (analysis reconstructs slice-less send waits from it).
	SpanDeliver(worldDst int, span uint64, sendNs, postNs, deliverNs int64, bytes int, rendezvous, remote bool)
	// SpanWait brackets a blocking rendezvous-send wait that began at
	// beginNs and is ending now (after the caller's park, so the slice
	// includes scheduler wake-up latency the flow pair cannot see). op
	// is a static label ("send").
	SpanWait(worldRank int, op string, span uint64, beginNs int64)
	// SpanCts is called on the sender's node when the receiver's
	// clear-to-send for span arrives (remote rendezvous only): the
	// moment the sender's wait stops being the receiver's fault.
	SpanCts(worldSrc int, span uint64)
	// SpanCollective marks rank's entry into a collective operation,
	// identified by the world-agreed (communication context, sequence)
	// pair — every member of the communicator reports the same id. alg
	// names the algorithm family the world selected for the communicator:
	// "chan" (point-to-point algorithms), "shm" (shared-address-space
	// fast path), or "2l" (two-level node-leader decomposition).
	SpanCollective(worldRank int, ctx, seq int64, alg string)
}
