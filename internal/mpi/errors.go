package mpi

import (
	"fmt"
	"strings"
)

// This file defines the typed failure vocabulary of the runtime. The
// baseline error model is MPI_ERRORS_ARE_FATAL per rank: misuse panics
// with *Error and Run recovers it. The fault-tolerance layer extends the
// model ULFM-style (errors-return, no revoke/shrink): the death of one
// task is recovered into a *RankFailure, and every surviving rank whose
// pending or future operations can no longer complete fails fast with a
// *DeadRankError naming the dead peer and the operation, instead of
// blocking forever and tripping the global timeout.

// RankFailure is the recovered death of one task: a panic in the task
// body (application bug or injected chaos kill), an MPI usage error, or
// a propagated peer failure. Run marks the rank dead and unblocks its
// communication partners before returning it.
type RankFailure struct {
	Rank  int   // world rank that died
	Cause error // what killed it
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Cause)
}

// Unwrap exposes the original panic payload to errors.Is/As.
func (e *RankFailure) Unwrap() error { return e.Cause }

// DeadRankError reports that an operation could not complete because a
// peer rank failed: a receive or probe whose source died, a send whose
// destination died, a collective with a dead member, or an RMA epoch
// whose partner died. This is the ULFM errors-return discipline — the
// surviving rank learns which rank failed and in which operation, and
// terminates instead of hanging.
type DeadRankError struct {
	Rank int    // surviving world rank that observed the failure (-1 if unknown)
	Op   string // operation that could not complete, e.g. "Recv", "Barrier"
	Dead int    // world rank that failed
}

func (e *DeadRankError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s: peer rank %d failed", e.Rank, e.Op, e.Dead)
}

// CancelledError reports that a blocked operation was abandoned because
// the world was cancelled — by the deadlock watchdog, the Run timeout,
// or an explicit Cancel. Cause carries the reason (e.g. *DeadlockError).
type CancelledError struct {
	Rank  int    // world rank that was unblocked (-1 if unknown)
	Op    string // operation that was cancelled
	Cause error
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s cancelled: %v", e.Rank, e.Op, e.Cause)
}

// Unwrap exposes the cancellation reason to errors.Is/As.
func (e *CancelledError) Unwrap() error { return e.Cause }

// TaskState is one rank's position in a deadlock or timeout diagnostic.
type TaskState struct {
	Rank      int
	BlockedOn string // what the rank is blocked on ("" = running)
	Finished  bool   // the task body returned
	Dead      bool   // the task failed (see World.FailedRanks)
	Progress  int64  // blocking-operation transitions observed so far
}

// DeadlockError is raised by the watchdog (or the Run timeout) when every
// unfinished task has been blocked with no progress across consecutive
// scans: a true cycle or stall. It carries the per-rank states plus any
// extra diagnostics registered with World.AddBlockReporter (e.g. the HLS
// registry's directive counters).
type DeadlockError struct {
	Tasks []TaskState
	Extra []string // reports from AddBlockReporter callbacks
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	b.WriteString("mpi: deadlock detected; task states:\n")
	for _, ts := range e.Tasks {
		st := ts.BlockedOn
		switch {
		case ts.Finished:
			st = "finished"
		case ts.Dead:
			st = "dead"
		case st == "":
			st = "running"
		}
		fmt.Fprintf(&b, "  rank %d: %s (progress %d)\n", ts.Rank, st, ts.Progress)
	}
	for _, x := range e.Extra {
		b.WriteString(strings.TrimRight(x, "\n"))
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// TimeoutError is returned by Run when the configured Timeout expires.
// It wraps the same per-rank diagnostic as a deadlock report; unlike the
// pre-fault-tolerance runtime, the timed-out world is cancelled, so task
// goroutines blocked in runtime operations unwind instead of leaking.
type TimeoutError struct {
	After string // the configured timeout, rendered
	Tasks []TaskState
}

func (e *TimeoutError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: timeout after %s; task states:\n", e.After)
	for _, ts := range e.Tasks {
		st := ts.BlockedOn
		switch {
		case ts.Finished:
			st = "finished"
		case ts.Dead:
			st = "dead"
		case st == "":
			st = "running"
		}
		fmt.Fprintf(&b, "  rank %d: %s\n", ts.Rank, st)
	}
	return strings.TrimRight(b.String(), "\n")
}
