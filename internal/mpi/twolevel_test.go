package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectiveWorkload drives every two-level operation over a 2-node
// world and records per-rank results, so runs under different collective
// modes can be compared bitwise.
func collectiveWorkload(results [][]int64, resultsMu *sync.Mutex) func(*Task) error {
	return func(task *Task) error {
		n := task.Size()
		r := task.Rank()
		var out []int64

		Barrier(task, nil)

		buf := []int64{0}
		if r == 1 {
			buf[0] = 4242 // root is a non-leader on node 0
		}
		Bcast(task, nil, buf, 1)
		out = append(out, buf[0])

		red := []int64{0}
		Reduce(task, nil, []int64{int64(r + 1)}, red, OpSum, 3)
		if r == 3 {
			out = append(out, red[0])
		} else {
			out = append(out, -1)
		}

		all := []int64{0}
		Allreduce(task, nil, []int64{int64(2*r + 1)}, all, OpMax)
		out = append(out, all[0])

		gath := make([]int64, n)
		Allgather(task, nil, []int64{int64(r * r)}, gath)
		out = append(out, gath...)

		Barrier(task, nil)

		resultsMu.Lock()
		results[r] = out
		resultsMu.Unlock()
		return nil
	}
}

func runCollectiveWorkload(t *testing.T, perNode int, mode CollectiveMode) ([][]int64, *World, *World) {
	t.Helper()
	results := make([][]int64, 2*perNode)
	var mu sync.Mutex
	w0, w1, err0, err1 := runWirePairMode(t, perNode, mode, collectiveWorkload(results, &mu))
	if err0 != nil || err1 != nil {
		t.Fatalf("mode %v: err0=%v err1=%v", mode, err0, err1)
	}
	return results, w0, w1
}

// TestTwoLevelCollectivesMatchFlat runs the same collective workload
// under the flat channel algorithms and the two-level decomposition and
// demands bitwise-identical per-rank results, plus evidence that the
// two-level path actually engaged and cut cross-node frames.
func TestTwoLevelCollectivesMatchFlat(t *testing.T) {
	const perNode = 4
	flat, f0, _ := runCollectiveWorkload(t, perNode, CollChannels)
	two, t0, t1 := runCollectiveWorkload(t, perNode, CollTwoLevel)

	for r := range flat {
		if fmt.Sprint(flat[r]) != fmt.Sprint(two[r]) {
			t.Errorf("rank %d: flat %v, two-level %v", r, flat[r], two[r])
		}
	}
	for i, w := range []*World{t0, t1} {
		if got := w.Stats().TwoLevelCollectives; got == 0 {
			t.Errorf("world %d: TwoLevelCollectives = 0, want > 0", i)
		}
		if got := w.Stats().SharedCollectives; got == 0 {
			t.Errorf("world %d: SharedCollectives = 0, want > 0 (local phases)", i)
		}
	}
	if got := f0.Stats().TwoLevelCollectives; got != 0 {
		t.Errorf("flat world: TwoLevelCollectives = %d, want 0", got)
	}
	fs, _ := f0.WireStats()
	ts, _ := t0.WireStats()
	if ts.FramesSent >= fs.FramesSent {
		t.Errorf("two-level sent %d frames, flat sent %d; want strictly fewer", ts.FramesSent, fs.FramesSent)
	}
}

// TestTwoLevelAutoEngages checks that CollAuto selects the two-level
// path in a hook-less distributed world.
func TestTwoLevelAutoEngages(t *testing.T) {
	fn := func(task *Task) error {
		out := []int64{0}
		Allreduce(task, nil, []int64{int64(task.Rank() + 1)}, out, OpSum)
		n := int64(task.Size())
		if want := n * (n + 1) / 2; out[0] != want {
			return fmt.Errorf("rank %d: allreduce %d, want %d", task.Rank(), out[0], want)
		}
		return nil
	}
	w0, w1, err0, err1 := runWirePair(t, 2, fn)
	if err0 != nil || err1 != nil {
		t.Fatalf("err0=%v err1=%v", err0, err1)
	}
	for i, w := range []*World{w0, w1} {
		if got := w.Stats().TwoLevelCollectives; got == 0 {
			t.Errorf("world %d: CollAuto did not engage two-level (count 0)", i)
		}
	}
}

// TestTwoLevelDerivedComms runs collectives on Split communicators under
// the two-level mode: a parity split leaves one member per node (leaders
// only), and a halves split leaves single-node communicators — both
// degenerate decompositions must still produce correct results.
func TestTwoLevelDerivedComms(t *testing.T) {
	const perNode = 4
	fn := func(task *Task) error {
		r := task.Rank()
		// Parity split: members alternate nodes.
		c := Split(task, nil, r%2, r)
		got := make([]int, c.Size())
		Allgather(task, c, []int{r}, got)
		for i, v := range got {
			if v%2 != r%2 || (i > 0 && got[i-1] >= v) {
				return fmt.Errorf("rank %d: parity split gathered %v", r, got)
			}
		}
		sum := []int64{0}
		Allreduce(task, c, []int64{int64(r)}, sum, OpSum)
		// Halves split: each communicator is confined to one node.
		h := Split(task, nil, r/perNode, r)
		hb := []int64{int64(r)}
		Bcast(task, h, hb, 0)
		if want := int64((r / perNode) * perNode); hb[0] != want {
			return fmt.Errorf("rank %d: halves bcast %d, want %d", r, hb[0], want)
		}
		Barrier(task, c)
		return nil
	}
	_, _, err0, err1 := runWirePairMode(t, perNode, CollTwoLevel, fn)
	if err0 != nil || err1 != nil {
		t.Fatalf("err0=%v err1=%v", err0, err1)
	}
}

// TestTwoLevelDeadLeaderCascades kills the leader of node 1 mid-
// collective: its local ranks must unwind through the aborted node-local
// tree, and every rank on node 0 — parked in its own node-local phase or
// in the cross-node leaders exchange — must cascade to typed errors
// instead of hanging (the shmColl.parent extension of the PR 4 abort
// integration).
func TestTwoLevelDeadLeaderCascades(t *testing.T) {
	const perNode = 2
	leader := perNode // lowest world rank on node 1
	fn := func(task *Task) error {
		if task.Rank() == leader {
			time.Sleep(50 * time.Millisecond) // let the others park in the collective
			panic("chaos: leader killed")
		}
		out := []int64{0}
		Allreduce(task, nil, []int64{1}, out, OpSum)
		return fmt.Errorf("rank %d: allreduce with dead leader completed", task.Rank())
	}
	_, _, err0, err1 := runWirePairMode(t, perNode, CollTwoLevel, fn)
	var dead *DeadRankError
	if !errors.As(err0, &dead) || dead.Dead != leader {
		t.Fatalf("world 0: want DeadRankError{Dead: %d}, got %v", leader, err0)
	}
	var rf *RankFailure
	if !errors.As(err1, &rf) || rf.Rank != leader {
		t.Fatalf("world 1: want RankFailure{Rank: %d}, got %v", leader, err1)
	}
	dead = nil
	if !errors.As(err1, &dead) || dead.Dead != leader {
		t.Fatalf("world 1: surviving local rank: want DeadRankError{Dead: %d}, got %v", leader, err1)
	}
}

// TestTwoLevelSingleProcessIdentity checks that CollTwoLevel in a
// single-process world behaves exactly like the shared fast path — the
// "single-process path stays byte-identical" guarantee.
func TestTwoLevelSingleProcessIdentity(t *testing.T) {
	run := func(mode CollectiveMode) ([]int64, int64) {
		out := make([]int64, 4)
		w, err := Run(Config{NumTasks: 4, Collectives: mode, Timeout: 10 * time.Second}, func(task *Task) error {
			v := []int64{0}
			Allreduce(task, nil, []int64{int64(task.Rank() + 1)}, v, OpSum)
			out[task.Rank()] = v[0]
			return nil
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		return out, w.Stats().SharedCollectives
	}
	shared, sharedN := run(CollShared)
	two, twoN := run(CollTwoLevel)
	if fmt.Sprint(shared) != fmt.Sprint(two) || sharedN != twoN {
		t.Fatalf("CollTwoLevel single-process: results %v/%v, shared count %d/%d", shared, two, sharedN, twoN)
	}
}
