package mpi

import (
	"reflect"
	"sync"
	"time"
)

// Scalar is the set of element types the runtime can transfer. It covers
// the MPI basic datatypes relevant to numerical codes.
type Scalar interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// elemSize returns unsafe.Sizeof(T) without importing unsafe.
func elemSize[T any]() int {
	return int(reflect.TypeOf((*T)(nil)).Elem().Size())
}

// Pre-boxed blocking-state labels: the hot paths publish these via
// blockOnP2P, which stores an already-boxed any plus two atomic ints, so
// entering a blocking wait performs no allocation. The full diagnostic
// string ("Recv(src=1, tag=0)") is rendered by endpoint.blockedDesc only
// on the watchdog/timeout path.
var (
	labelRecv         any = "Recv"
	labelProbe        any = "Probe"
	labelSend         any = "Send"
	labelSendrecvRecv any = "Sendrecv recv"
	labelEmpty        any = ""
)

// Send sends buf to rank dst of comm with the given tag. Messages at most
// EagerLimit bytes are buffered and Send returns immediately; larger
// messages use the rendezvous protocol and Send blocks until the receiver
// has matched the message (synchronizing semantics, like MPI_Ssend).
func Send[T Scalar](t *Task, comm *Comm, buf []T, dst, tag int) {
	comm = t.commOrWorld(comm)
	req := isend(t, comm, comm.ctxUser, buf, dst, tag, "Send")
	if req != nil {
		if _, done := req.Test(); done {
			// The receiver had already posted: the rendezvous completed
			// inside isend and there is no wait to publish or trace.
			t.checkReq("Send", req)
			putRequest(req)
			return
		}
		t.blockOnP2P(labelSend, dst, tag)
		req.Wait()
		if th := t.world.traceHooks; th != nil {
			// The wait effectively began at the send timestamp: isend
			// returns within nanoseconds of stamping it. The end is read
			// here, after the park — under load the scheduler wake-up is
			// a real part of the caller's blocked time, and only this
			// slice can see it (the flow pair ends at delivery).
			th.SpanWait(t.rank, "send", req.span, req.sendNs)
		}
		t.unblock()
		t.checkReq("Send", req)
		putRequest(req)
	}
}

// Isend starts a nonblocking send and returns its Request. Eager sends
// complete immediately; rendezvous sends complete when matched.
func Isend[T Scalar](t *Task, comm *Comm, buf []T, dst, tag int) *Request {
	comm = t.commOrWorld(comm)
	req := isend(t, comm, comm.ctxUser, buf, dst, tag, "Isend")
	if req == nil {
		req = newRequest(false)
		req.complete(Status{})
	}
	return req
}

// isend implements Send/Isend on an explicit context. It returns a non-nil
// request only for rendezvous sends (eager sends are already complete).
func isend[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, dst, tag int, op string) *Request {
	return isendDT(t, comm, ctx, buf, nil, dst, tag, op)
}

// isendDT is isend with a derived datatype describing which elements of
// buf to send (nil = all of it, contiguously). Non-strided datatypes are
// normalized to the contiguous datapath here, so they cost nothing
// downstream.
func isendDT[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, dt *Datatype, dst, tag int, op string) *Request {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if dst < 0 || dst >= comm.Size() {
		raise(t.rank, op, "destination rank %d out of range [0,%d)", dst, comm.Size())
	}
	if ctx == comm.ctxUser && tag < 0 {
		raise(t.rank, op, "negative tag %d", tag)
	}
	myCommRank := comm.rankOf(t.rank)
	if myCommRank < 0 {
		raise(t.rank, op, "task is not a member of the communicator")
	}
	worldDst := comm.group[dst]
	t.checkPeer(op, worldDst)
	esz := elemSize[T]()
	elems := len(buf)
	sdata := bytesOf(buf)
	var sdt *Datatype
	if dt != nil {
		dt.check(t.rank, op, len(buf))
		elems = dt.Size()
		if dt.strided() {
			sdt = dt
		} else {
			sdata = sdata[:elems*esz]
		}
	}
	bytes := elems * esz

	msg := getMessage()
	msg.ctx = ctx
	msg.src = myCommRank
	msg.tag = tag
	msg.elems = elems
	msg.bytes = bytes
	msg.etype = reflect.TypeFor[T]()
	// No payload copy here: sdata views the caller's buffer, which stays
	// live for the duration of this call. inject either copies it straight
	// into a posted receive (single copy) or, unmatched, into a pooled
	// eager buffer — so by the time isend returns, an eager message no
	// longer references the caller's memory.
	msg.sdata = sdata
	msg.sdt = sdt
	msg.sptr = ptrOf(buf)
	if w.cfg.Hooks != nil {
		msg.meta = w.cfg.Hooks.OnSend(t.rank, worldDst)
	}

	var sreq *Request
	if bytes > w.cfg.EagerLimit {
		// Rendezvous: the message keeps viewing the sender's buffer; the
		// sender's request completes at delivery time and Send blocks on it.
		msg.rendezvous = true
		sreq = newRequest(false)
		msg.sreq = sreq
		w.stats.rendezvous.Add(1)
	}
	if w.traceHooks != nil {
		remote := w.net != nil && !w.net.localRank(worldDst)
		msg.span, msg.sendNs = w.traceHooks.SpanStart(t.rank, worldDst, bytes, msg.rendezvous, remote)
		if sreq != nil {
			sreq.span = msg.span
			sreq.sendNs = msg.sendNs
		}
	}
	if w.msgHooks != nil {
		w.msgHooks.OnMessage(t.rank, worldDst, bytes, msg.rendezvous)
	}
	if w.net != nil && !w.net.localRank(worldDst) {
		// The destination runs in another process: hand the message to
		// the wire layer (which applies its own fault actions — the block
		// below must not run twice).
		return w.net.isendRemote(t, msg, worldDst, op)
	}
	if msg.sdt != nil && w.cfg.ForcePack {
		// Ablation (Config.ForcePack): route the typed payload through a
		// packed intermediate even on the shared address space, so the
		// halo benchmark can measure exactly what the elision saves.
		msg.payload = w.pool.get(t.rank, bytes)
		dtPack(msg.payload.data, msg.sdata, msg.sdt, esz)
		msg.sdata = msg.payload.data[:bytes]
		msg.sdt = nil
		msg.sptr = nil
	}
	if w.faultHooks != nil {
		act := w.faultHooks.FaultP2P(t.rank, worldDst, bytes, msg.rendezvous)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
			t.checkPeer(op, worldDst) // the peer may have died during the delay
		}
		if act.Drop {
			// The message is lost. A rendezvous sender's handshake is
			// deemed complete (the payload is what was lost), so the
			// stall surfaces at the receiver, where the watchdog can
			// attribute it.
			if sreq != nil {
				sreq.complete(Status{})
			}
			if msg.payload != nil {
				w.pool.release(t.rank, msg.payload)
			}
			putMessage(msg)
			return sreq
		}
		if act.Duplicate && bytes > 0 {
			dup := getMessage()
			*dup = *msg
			dup.rendezvous = false // only the original completes the send
			dup.sreq = nil
			dup.meta = nil
			// The duplicate can outlive this call (it may sit unexpected
			// after the original was consumed), so it cannot view the
			// caller's buffer: give it a pooled payload now. For an eager
			// original, pin the same buffer under both messages — the
			// refcount holds it until the last copy is consumed.
			dup.payload = w.pool.get(t.rank, bytes)
			if msg.sdt != nil {
				// A typed duplicate packs now: its pooled payload must be
				// dense, and the original's strided view of the caller's
				// buffer cannot be shared beyond this call.
				dtPack(dup.payload.data, msg.sdata, msg.sdt, esz)
				dup.sdt = nil
			} else {
				copy(dup.payload.data, msg.sdata)
			}
			dup.sdata = dup.payload.data[:bytes]
			if !msg.rendezvous {
				dup.payload.refs.Add(1)
				msg.payload = dup.payload
				msg.sdata = dup.sdata
				msg.sdt = nil
			} else {
				dup.sptr = nil
			}
			if !w.inject(dup, t.rank, worldDst) {
				w.pool.release(t.rank, dup.payload)
				putMessage(dup)
				if msg.payload != nil {
					w.pool.release(t.rank, msg.payload)
				}
				putMessage(msg)
				panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
			}
		}
	}
	if !w.inject(msg, t.rank, worldDst) {
		if msg.payload != nil {
			w.pool.release(t.rank, msg.payload)
		}
		putMessage(msg)
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
	}
	return sreq
}

// Recv receives a message from rank src (or AnySource) with the given tag
// (or AnyTag) into buf, blocking until delivery, and returns the Status.
// The buffer must be at least as long as the incoming message.
func Recv[T Scalar](t *Task, comm *Comm, buf []T, src, tag int) Status {
	comm = t.commOrWorld(comm)
	req := irecv(t, comm, comm.ctxUser, buf, src, tag, "Recv")
	t.blockOnP2P(labelRecv, src, tag)
	st := req.Wait()
	t.unblock()
	t.checkReq("Recv", req)
	putRequest(req)
	return st
}

// Irecv posts a nonblocking receive and returns its Request.
func Irecv[T Scalar](t *Task, comm *Comm, buf []T, src, tag int) *Request {
	comm = t.commOrWorld(comm)
	return irecv(t, comm, comm.ctxUser, buf, src, tag, "Irecv")
}

func irecv[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, src, tag int, op string) *Request {
	return irecvDT(t, comm, ctx, buf, nil, src, tag, op)
}

// irecvDT is irecv with a derived datatype describing where in buf the
// payload lands (nil = contiguously, filling the buffer from the start).
// Non-strided datatypes are normalized to the contiguous datapath.
func irecvDT[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, dt *Datatype, src, tag int, op string) *Request {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if src != AnySource && (src < 0 || src >= comm.Size()) {
		raise(t.rank, op, "source rank %d out of range [0,%d)", src, comm.Size())
	}
	if ctx == comm.ctxUser && tag != AnyTag && tag < 0 {
		raise(t.rank, op, "negative tag %d", tag)
	}
	if comm.rankOf(t.rank) < 0 {
		raise(t.rank, op, "task is not a member of the communicator")
	}
	worldSrc := -1
	if src != AnySource {
		worldSrc = comm.group[src]
	}
	relems := len(buf)
	rdata := bytesOf(buf)
	var rdt *Datatype
	if dt != nil {
		dt.check(t.rank, op, len(buf))
		relems = dt.Size()
		if dt.strided() {
			rdt = dt
		} else {
			rdata = rdata[:relems*elemSize[T]()]
		}
	}
	req := newRequest(true)
	pr := getPostedRecv()
	pr.ctx = ctx
	pr.src = src
	pr.tag = tag
	pr.etype = reflect.TypeFor[T]()
	pr.rdata = rdata
	pr.relems = relems
	pr.rdt = rdt
	pr.rptr = ptrOf(buf)
	pr.req = req
	pr.recvRank = t.rank
	pr.worldSrc = worldSrc
	if w.traceHooks != nil {
		pr.postNs = w.traceHooks.Now()
	}
	ep := w.eps[t.rank]
	ep.mu.Lock()
	if msg, probes := ep.matchUnexpectedLocked(ctx, src, tag); msg != nil {
		ep.mu.Unlock()
		if w.poolHooks != nil {
			w.poolHooks.OnMatchProbes(t.rank, probes)
		}
		w.deliverTo(msg, pr)
		return req
	}
	// Under ep.mu the dead/cancelled flags are ordered against the
	// failure layer's scan of this endpoint: either we observe the flag
	// here and fail the request immediately, or the scan observes our
	// posted receive and fails it.
	if worldSrc >= 0 && w.rankDead(worldSrc) {
		ep.mu.Unlock()
		putPostedRecv(pr)
		req.fail(&DeadRankError{Rank: t.rank, Op: op, Dead: worldSrc})
		return req
	}
	if c := w.Cancelled(); c != nil {
		ep.mu.Unlock()
		putPostedRecv(pr)
		req.fail(&CancelledError{Rank: t.rank, Op: op, Cause: c})
		return req
	}
	ep.postSeq++
	pr.seq = ep.postSeq
	if src == AnySource {
		ep.wild.push(pr)
	} else {
		ep.bucket(epKey{ctx, src}).pushRecv(pr)
	}
	ep.mu.Unlock()
	return req
}

// Probe blocks until a message from src (or AnySource) with tag (or
// AnyTag) is available on comm, and returns its Status without receiving
// it.
func Probe(t *Task, comm *Comm, src, tag int) Status {
	st, _ := probe(t, comm, src, tag, true)
	return st
}

// Iprobe reports whether a matching message is available, without
// blocking.
func Iprobe(t *Task, comm *Comm, src, tag int) (Status, bool) {
	return probe(t, comm, src, tag, false)
}

func probe(t *Task, comm *Comm, src, tag int, block bool) (Status, bool) {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if src != AnySource && (src < 0 || src >= comm.Size()) {
		raise(t.rank, "Probe", "source rank %d out of range [0,%d)", src, comm.Size())
	}
	worldSrc := -1
	if src != AnySource {
		worldSrc = comm.group[src]
	}
	ctx := comm.ctxUser
	ep := w.eps[t.rank]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if st, ok := ep.findUnexpectedLocked(ctx, src, tag); ok {
			return st, true
		}
		// The failure layer wakes blocked probes when a rank dies or the
		// world is cancelled, so they re-check here and fail fast instead
		// of waiting for a message that cannot come.
		if worldSrc >= 0 && w.rankDead(worldSrc) {
			panic(&DeadRankError{Rank: t.rank, Op: "Probe", Dead: worldSrc})
		}
		if c := w.Cancelled(); c != nil {
			panic(&CancelledError{Rank: t.rank, Op: "Probe", Cause: c})
		}
		if !block {
			return Status{}, false
		}
		// Park on the narrowest condition that can satisfy this probe: the
		// (ctx, src) bucket's cond for a specific source, the endpoint-wide
		// wildcard cond for AnySource. An arrival broadcasts a bucket cond
		// only when it has waiters, so unrelated traffic no longer wakes
		// every blocked probe on the endpoint.
		t.blockOnP2P(labelProbe, src, tag)
		if src == AnySource {
			ep.wildWaiters++
			ep.wildCond.Wait()
			ep.wildWaiters--
		} else {
			b := ep.bucket(epKey{ctx, src})
			if b.cond == nil {
				b.cond = sync.NewCond(&ep.mu)
			}
			b.waiters++
			b.cond.Wait()
			b.waiters--
		}
		t.unblock()
	}
}

// Sendrecv performs a combined send and receive, safe against the
// exchange deadlocks of two blocking calls.
func Sendrecv[T Scalar](t *Task, comm *Comm, sendBuf []T, dst, sendTag int, recvBuf []T, src, recvTag int) Status {
	rr := Irecv(t, comm, recvBuf, src, recvTag)
	Send(t, comm, sendBuf, dst, sendTag)
	t.blockOnP2P(labelSendrecvRecv, src, recvTag)
	st := rr.Wait()
	t.unblock()
	t.checkReq("Sendrecv", rr)
	putRequest(rr)
	return st
}

// blockOnP2P publishes a point-to-point blocking state without
// allocating: label is a pre-boxed static string, the peer rank and tag
// ride in atomic ints and are formatted only if a diagnostic needs them.
func (t *Task) blockOnP2P(label any, peer, tag int) {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockPeer.Store(int64(peer))
	ep.blockTag.Store(int64(tag))
	ep.blockLabel.Store(label)
}

func (t *Task) blockOn(s string) {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockPeer.Store(blockNone)
	ep.blockLabel.Store(s)
}

func (t *Task) unblock() {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockPeer.Store(blockNone)
	ep.blockLabel.Store(labelEmpty)
}

// BlockOn publishes a human-readable description of what the task is
// about to block on, for the deadlock watchdog and timeout diagnostics.
// Layers built on the runtime (internal/hls barriers, internal/rma
// epochs) bracket their own blocking waits with BlockOn/Unblock so their
// stalls are attributed like message-layer ones.
func (t *Task) BlockOn(what string) { t.blockOn(what) }

// Unblock clears the description published by BlockOn.
func (t *Task) Unblock() { t.unblock() }

// BlockOnBoxed is BlockOn for hot paths: what must be a string already
// boxed into an any (typically a package- or structure-level constant
// built once), so publishing it does not re-box and therefore does not
// allocate per call.
func (t *Task) BlockOnBoxed(what any) {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockPeer.Store(blockNone)
	ep.blockLabel.Store(what)
}

// commOrWorld substitutes the world communicator for a nil comm argument.
func (t *Task) commOrWorld(c *Comm) *Comm {
	if c == nil {
		return t.world.world
	}
	return c
}
