package mpi

import (
	"fmt"
	"reflect"
	"time"
)

// Scalar is the set of element types the runtime can transfer. It covers
// the MPI basic datatypes relevant to numerical codes.
type Scalar interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// elemSize returns unsafe.Sizeof(T) without importing unsafe.
func elemSize[T any]() int {
	return int(reflect.TypeOf((*T)(nil)).Elem().Size())
}

// Send sends buf to rank dst of comm with the given tag. Messages at most
// EagerLimit bytes are buffered and Send returns immediately; larger
// messages use the rendezvous protocol and Send blocks until the receiver
// has matched the message (synchronizing semantics, like MPI_Ssend).
func Send[T Scalar](t *Task, comm *Comm, buf []T, dst, tag int) {
	comm = t.commOrWorld(comm)
	req := isend(t, comm, comm.ctxUser, buf, dst, tag, "Send")
	if req != nil {
		t.blockOn(fmt.Sprintf("Send(dst=%d, tag=%d) rendezvous", dst, tag))
		req.Wait()
		t.unblock()
		t.checkReq("Send", req)
	}
}

// Isend starts a nonblocking send and returns its Request. Eager sends
// complete immediately; rendezvous sends complete when matched.
func Isend[T Scalar](t *Task, comm *Comm, buf []T, dst, tag int) *Request {
	comm = t.commOrWorld(comm)
	req := isend(t, comm, comm.ctxUser, buf, dst, tag, "Isend")
	if req == nil {
		req = newRequest(false)
		req.complete(Status{})
	}
	return req
}

// isend implements Send/Isend on an explicit context. It returns a non-nil
// request only for rendezvous sends (eager sends are already complete).
func isend[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, dst, tag int, op string) *Request {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if dst < 0 || dst >= comm.Size() {
		raise(t.rank, op, "destination rank %d out of range [0,%d)", dst, comm.Size())
	}
	if ctx == comm.ctxUser && tag < 0 {
		raise(t.rank, op, "negative tag %d", tag)
	}
	myCommRank := comm.rankOf(t.rank)
	if myCommRank < 0 {
		raise(t.rank, op, "task is not a member of the communicator")
	}
	worldDst := comm.group[dst]
	t.checkPeer(op, worldDst)
	bytes := len(buf) * elemSize[T]()

	msg := &message{
		ctx:   ctx,
		src:   myCommRank,
		tag:   tag,
		elems: len(buf),
		bytes: bytes,
	}
	if w.cfg.Hooks != nil {
		msg.meta = w.cfg.Hooks.OnSend(t.rank, worldDst)
	}

	var origPtr *T
	if len(buf) > 0 {
		origPtr = &buf[0]
	}
	var src []T
	var sreq *Request
	if bytes > w.cfg.EagerLimit {
		// Rendezvous: keep a reference; the sender's request completes at
		// delivery time.
		msg.rendezvous = true
		sreq = newRequest(false)
		msg.sreq = sreq
		src = buf
		w.stats.rendezvous.Add(1)
	} else {
		src = append([]T(nil), buf...)
	}
	if w.msgHooks != nil {
		w.msgHooks.OnMessage(t.rank, worldDst, bytes, msg.rendezvous)
	}
	msg.deliver = func(dst any, recvRank int) int {
		d, ok := dst.([]T)
		if !ok {
			raise(recvRank, "Recv", "datatype mismatch: receive buffer is %T, message holds %T", dst, src)
		}
		if len(d) < len(src) {
			raise(recvRank, "Recv", "message truncated: %d elements into buffer of %d", len(src), len(d))
		}
		if len(src) > 0 && len(d) > 0 && origPtr == &d[0] {
			// Send and receive buffers are the same memory: skip the copy.
			// This is MPC's intra-node optimization that removes Tachyon's
			// rank-0 image copies once the image is an HLS variable.
			w.stats.sameAddrSkips.Add(1)
			if w.msgHooks != nil {
				w.msgHooks.OnCopyElided(recvRank, bytes)
			}
		} else {
			copy(d, src)
		}
		return len(src)
	}
	if w.faultHooks != nil {
		act := w.faultHooks.FaultP2P(t.rank, worldDst, bytes, msg.rendezvous)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
			t.checkPeer(op, worldDst) // the peer may have died during the delay
		}
		if act.Drop {
			// The message is lost. A rendezvous sender's handshake is
			// deemed complete (the payload is what was lost), so the
			// stall surfaces at the receiver, where the watchdog can
			// attribute it.
			if sreq != nil {
				sreq.complete(Status{})
			}
			return sreq
		}
		if act.Duplicate {
			dup := *msg
			dup.rendezvous = false // only the original completes the send
			dup.sreq = nil
			if !w.inject(&dup, worldDst) {
				panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
			}
		}
	}
	if !w.inject(msg, worldDst) {
		panic(&DeadRankError{Rank: t.rank, Op: op, Dead: worldDst})
	}
	return sreq
}

// Recv receives a message from rank src (or AnySource) with the given tag
// (or AnyTag) into buf, blocking until delivery, and returns the Status.
// The buffer must be at least as long as the incoming message.
func Recv[T Scalar](t *Task, comm *Comm, buf []T, src, tag int) Status {
	comm = t.commOrWorld(comm)
	req := irecv(t, comm, comm.ctxUser, buf, src, tag, "Recv")
	t.blockOn(fmt.Sprintf("Recv(src=%d, tag=%d)", src, tag))
	st := req.Wait()
	t.unblock()
	t.checkReq("Recv", req)
	return st
}

// Irecv posts a nonblocking receive and returns its Request.
func Irecv[T Scalar](t *Task, comm *Comm, buf []T, src, tag int) *Request {
	comm = t.commOrWorld(comm)
	return irecv(t, comm, comm.ctxUser, buf, src, tag, "Irecv")
}

func irecv[T Scalar](t *Task, comm *Comm, ctx int64, buf []T, src, tag int, op string) *Request {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if src != AnySource && (src < 0 || src >= comm.Size()) {
		raise(t.rank, op, "source rank %d out of range [0,%d)", src, comm.Size())
	}
	if ctx == comm.ctxUser && tag != AnyTag && tag < 0 {
		raise(t.rank, op, "negative tag %d", tag)
	}
	if comm.rankOf(t.rank) < 0 {
		raise(t.rank, op, "task is not a member of the communicator")
	}
	worldSrc := -1
	if src != AnySource {
		worldSrc = comm.group[src]
	}
	req := newRequest(true)
	pr := &postedRecv{ctx: ctx, src: src, tag: tag, buf: buf, req: req, recvRank: t.rank, worldSrc: worldSrc}
	ep := w.eps[t.rank]
	ep.mu.Lock()
	if msg := ep.matchUnexpected(pr); msg != nil {
		ep.mu.Unlock()
		w.deliverTo(msg, pr)
		return req
	}
	// Under ep.mu the dead/cancelled flags are ordered against the
	// failure layer's scan of this endpoint: either we observe the flag
	// here and fail the request immediately, or the scan observes our
	// posted receive and fails it.
	if worldSrc >= 0 && w.rankDead(worldSrc) {
		ep.mu.Unlock()
		req.fail(&DeadRankError{Rank: t.rank, Op: op, Dead: worldSrc})
		return req
	}
	if c := w.Cancelled(); c != nil {
		ep.mu.Unlock()
		req.fail(&CancelledError{Rank: t.rank, Op: op, Cause: c})
		return req
	}
	ep.recvs = append(ep.recvs, pr)
	ep.mu.Unlock()
	return req
}

// Probe blocks until a message from src (or AnySource) with tag (or
// AnyTag) is available on comm, and returns its Status without receiving
// it.
func Probe(t *Task, comm *Comm, src, tag int) Status {
	st, _ := probe(t, comm, src, tag, true)
	return st
}

// Iprobe reports whether a matching message is available, without
// blocking.
func Iprobe(t *Task, comm *Comm, src, tag int) (Status, bool) {
	return probe(t, comm, src, tag, false)
}

func probe(t *Task, comm *Comm, src, tag int, block bool) (Status, bool) {
	w := t.world
	if comm == nil {
		comm = w.world
	}
	if src != AnySource && (src < 0 || src >= comm.Size()) {
		raise(t.rank, "Probe", "source rank %d out of range [0,%d)", src, comm.Size())
	}
	worldSrc := -1
	if src != AnySource {
		worldSrc = comm.group[src]
	}
	pr := &postedRecv{ctx: comm.ctxUser, src: src, tag: tag}
	ep := w.eps[t.rank]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		for _, msg := range ep.unexpected {
			if msg.matches(pr) {
				return Status{Source: msg.src, Tag: msg.tag, Count: msg.elems, Bytes: msg.bytes}, true
			}
		}
		// The failure layer broadcasts `arrived` when a rank dies or the
		// world is cancelled, so blocked probes re-check here and fail
		// fast instead of waiting for a message that cannot come.
		if worldSrc >= 0 && w.rankDead(worldSrc) {
			panic(&DeadRankError{Rank: t.rank, Op: "Probe", Dead: worldSrc})
		}
		if c := w.Cancelled(); c != nil {
			panic(&CancelledError{Rank: t.rank, Op: "Probe", Cause: c})
		}
		if !block {
			return Status{}, false
		}
		t.blockOn(fmt.Sprintf("Probe(src=%d, tag=%d)", src, tag))
		ep.arrived.Wait()
		t.unblock()
	}
}

// Sendrecv performs a combined send and receive, safe against the
// exchange deadlocks of two blocking calls.
func Sendrecv[T Scalar](t *Task, comm *Comm, sendBuf []T, dst, sendTag int, recvBuf []T, src, recvTag int) Status {
	rr := Irecv(t, comm, recvBuf, src, recvTag)
	Send(t, comm, sendBuf, dst, sendTag)
	t.blockOn(fmt.Sprintf("Sendrecv recv(src=%d, tag=%d)", src, recvTag))
	st := rr.Wait()
	t.unblock()
	t.checkReq("Sendrecv", rr)
	return st
}

func (t *Task) blockOn(s string) {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockedOn.Store(s)
}

func (t *Task) unblock() {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockedOn.Store("")
}

// BlockOn publishes a human-readable description of what the task is
// about to block on, for the deadlock watchdog and timeout diagnostics.
// Layers built on the runtime (internal/hls barriers, internal/rma
// epochs) bracket their own blocking waits with BlockOn/Unblock so their
// stalls are attributed like message-layer ones.
func (t *Task) BlockOn(what string) { t.blockOn(what) }

// Unblock clears the description published by BlockOn.
func (t *Task) Unblock() { t.unblock() }

// BlockOnBoxed is BlockOn for hot paths: what must be a string already
// boxed into an any (typically a package- or structure-level constant
// built once), so publishing it does not re-box and therefore does not
// allocate per call.
func (t *Task) BlockOnBoxed(what any) {
	ep := t.world.eps[t.rank]
	ep.progress.Add(1)
	ep.blockedOn.Store(what)
}

// commOrWorld substitutes the world communicator for a nil comm argument.
func (t *Task) commOrWorld(c *Comm) *Comm {
	if c == nil {
		return t.world.world
	}
	return c
}
