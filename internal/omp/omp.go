// Package omp is a minimal OpenMP-like fork-join layer running *inside*
// an MPI task, reproducing the hybrid MPI+OpenMP context the paper's HLS
// implementation had to coexist with (§I, §VI).
//
// The paper's mechanism is built on a two-level extension of thread-local
// storage (Carribault et al., IWOMP 2011 — the paper's [22]): in a
// thread-based MPI where tasks and OpenMP threads are all user-level
// threads in one address space, a variable can be
//
//   - private per OpenMP thread             (ThreadPrivate here),
//   - private per MPI task but shared by the
//     task's OpenMP threads                 (TaskPrivate here), or
//   - shared by several MPI tasks at a
//     memory-hierarchy scope                (hls.Var).
//
// This package provides the fork-join machinery (Parallel, For, Barrier,
// Single, Critical, reductions) plus the first two storage levels, and
// its tests assert the full three-level containment: OpenMP-private ⊂
// task-private ⊂ HLS scope.
//
// With it, a hybrid program can keep one MPI task per socket with eight
// OpenMP threads while an HLS variable stays node-scoped — the paper's
// "decouple data sharing from the programming-model decomposition".
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hls/internal/mpi"
)

// ThreadCtx is the per-OpenMP-thread execution context inside a parallel
// region.
type ThreadCtx struct {
	task *mpi.Task
	team *team
	tid  int
}

// team is one parallel region's thread team.
type team struct {
	n       int
	barrier *teamBarrier
	single  singleState
	mu      sync.Mutex // Critical and reductions

	redCount  int
	redAcc    float64
	redResult float64

	dynNext atomic.Int64 // ForDynamic iteration cursor
}

// Task returns the enclosing MPI task.
func (tc *ThreadCtx) Task() *mpi.Task { return tc.task }

// ThreadNum returns the OpenMP thread id within the team (0-based).
func (tc *ThreadCtx) ThreadNum() int { return tc.tid }

// NumThreads returns the team size.
func (tc *ThreadCtx) NumThreads() int { return tc.team.n }

// Parallel forks a team of n threads executing body and joins them — the
// "#pragma omp parallel" construct. Panics inside body are re-panicked in
// the caller after all threads join (abort semantics).
func Parallel(task *mpi.Task, n int, body func(tc *ThreadCtx)) {
	if n < 1 {
		panic(fmt.Sprintf("omp: Parallel with %d threads", n))
	}
	tm := &team{n: n, barrier: newTeamBarrier(n)}
	var wg sync.WaitGroup
	wg.Add(n)
	panics := make([]any, n)
	for tid := 0; tid < n; tid++ {
		go func(tid int) {
			defer wg.Done()
			defer func() { panics[tid] = recover() }()
			body(&ThreadCtx{task: task, team: tm, tid: tid})
		}(tid)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// For statically partitions iterations [0, n) over the team and runs body
// for each owned index — "#pragma omp for schedule(static)". It ends with
// the construct's implicit barrier.
func (tc *ThreadCtx) For(n int, body func(i int)) {
	chunk := (n + tc.team.n - 1) / tc.team.n
	lo := tc.tid * chunk
	hi := min(lo+chunk, n)
	for i := lo; i < hi; i++ {
		body(i)
	}
	tc.Barrier()
}

// ForNowait is For without the trailing barrier.
func (tc *ThreadCtx) ForNowait(n int, body func(i int)) {
	chunk := (n + tc.team.n - 1) / tc.team.n
	lo := tc.tid * chunk
	hi := min(lo+chunk, n)
	for i := lo; i < hi; i++ {
		body(i)
	}
}

// Barrier synchronizes the team.
func (tc *ThreadCtx) Barrier() { tc.team.barrier.await() }

// Critical runs body under the region's mutual exclusion —
// "#pragma omp critical".
func (tc *ThreadCtx) Critical(body func()) {
	tc.team.mu.Lock()
	defer tc.team.mu.Unlock()
	body()
}

// Single runs body on the first thread to arrive; every thread waits at
// the implicit barrier — "#pragma omp single". Reports whether this
// thread executed body.
func (tc *ThreadCtx) Single(body func()) bool {
	did := tc.team.single.claim(tc.team.barrier.phase())
	if did {
		body()
	}
	tc.Barrier()
	return did
}

// singleState tracks which barrier phase already had its single executed.
type singleState struct {
	mu    sync.Mutex
	phase uint64
	used  bool
}

func (s *singleState) claim(phase uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase != phase {
		s.phase = phase
		s.used = false
	}
	if s.used {
		return false
	}
	s.used = true
	return true
}

// teamBarrier is a phase-counting barrier.
type teamBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newTeamBarrier(n int) *teamBarrier {
	b := &teamBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *teamBarrier) phase() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

func (b *teamBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// ReduceFloat64 combines each thread's contribution with op starting from
// init and returns the team-wide result on every thread — a
// "reduction(op:x)" clause.
func (tc *ThreadCtx) ReduceFloat64(contribution float64, op func(a, b float64) float64, init float64) float64 {
	tc.team.mu.Lock()
	if tc.team.redCount == 0 {
		tc.team.redAcc = init
	}
	tc.team.redAcc = op(tc.team.redAcc, contribution)
	tc.team.redCount++
	done := tc.team.redCount == tc.team.n
	if done {
		tc.team.redCount = 0
		tc.team.redResult = tc.team.redAcc
	}
	tc.team.mu.Unlock()
	tc.Barrier()
	return tc.team.redResult
}

// ForDynamic partitions iterations [0, n) dynamically in chunks — the
// "schedule(dynamic, chunk)" clause, for load-imbalanced bodies (a ray
// tracer's scanlines, a tree walk). Ends with the construct's implicit
// barrier.
func (tc *ThreadCtx) ForDynamic(n, chunk int, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	for {
		lo := int(tc.team.dynNext.Add(int64(chunk))) - chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
	tc.Barrier()
	// The last thread out of the barrier would race a reset; instead the
	// counter is rewound by one designated thread inside a second barrier
	// pair, keeping repeated ForDynamic calls correct.
	if tc.tid == 0 {
		tc.team.dynNext.Store(0)
	}
	tc.Barrier()
}
