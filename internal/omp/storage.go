package omp

import (
	"fmt"
	"sync"

	"hls/internal/mpi"
)

// TaskPrivate is the middle level of the extended-TLS hierarchy (the
// paper's [22]): one copy of the variable per MPI task, shared by all the
// OpenMP threads the task forks. In a thread-based MPI this is what the
// runtime privatizes globals to in order to stay MPI-compliant while
// remaining OpenMP-shared — the level plain TLS cannot express once both
// models coexist.
type TaskPrivate[T any] struct {
	name string
	n    int
	init func(rank int, data []T)

	mu     sync.Mutex
	byRank map[int][]T
}

// NewTaskPrivate declares a task-private variable of n elements of T with
// an optional per-task initializer.
func NewTaskPrivate[T any](name string, n int, init func(rank int, data []T)) *TaskPrivate[T] {
	if n < 0 {
		panic(fmt.Sprintf("omp: NewTaskPrivate(%q) with negative length", name))
	}
	return &TaskPrivate[T]{name: name, n: n, init: init, byRank: make(map[int][]T)}
}

// Slice resolves the copy of the calling thread's MPI task: identical for
// every OpenMP thread of the task, distinct across tasks.
func (v *TaskPrivate[T]) Slice(tc *ThreadCtx) []T {
	return v.SliceTask(tc.task)
}

// SliceTask resolves a task's copy outside a parallel region.
func (v *TaskPrivate[T]) SliceTask(task *mpi.Task) []T {
	rank := task.Rank()
	v.mu.Lock()
	defer v.mu.Unlock()
	if data, ok := v.byRank[rank]; ok {
		return data
	}
	data := make([]T, v.n)
	if v.init != nil {
		v.init(rank, data)
	}
	v.byRank[rank] = data
	return data
}

// Instances returns how many task copies have materialized.
func (v *TaskPrivate[T]) Instances() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.byRank)
}

// ThreadPrivate is the innermost level: one copy per (MPI task, OpenMP
// thread) — the semantics of OpenMP's threadprivate directive under a
// thread-based MPI.
type ThreadPrivate[T any] struct {
	name string
	n    int
	init func(rank, tid int, data []T)

	mu    sync.Mutex
	byKey map[threadKey][]T
}

type threadKey struct{ rank, tid int }

// NewThreadPrivate declares a thread-private variable.
func NewThreadPrivate[T any](name string, n int, init func(rank, tid int, data []T)) *ThreadPrivate[T] {
	if n < 0 {
		panic(fmt.Sprintf("omp: NewThreadPrivate(%q) with negative length", name))
	}
	return &ThreadPrivate[T]{name: name, n: n, init: init, byKey: make(map[threadKey][]T)}
}

// Slice resolves the calling OpenMP thread's copy.
func (v *ThreadPrivate[T]) Slice(tc *ThreadCtx) []T {
	key := threadKey{tc.task.Rank(), tc.tid}
	v.mu.Lock()
	defer v.mu.Unlock()
	if data, ok := v.byKey[key]; ok {
		return data
	}
	data := make([]T, v.n)
	if v.init != nil {
		v.init(key.rank, key.tid, data)
	}
	v.byKey[key] = data
	return data
}

// Instances returns how many thread copies have materialized.
func (v *ThreadPrivate[T]) Instances() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.byKey)
}
