package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/topology"
)

func runMPI(t *testing.T, tasks int, fn func(task *mpi.Task) error) {
	t.Helper()
	_, err := mpi.Run(mpi.Config{NumTasks: tasks, Timeout: 30 * time.Second}, fn)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelForksAllThreads(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		var seen [8]atomic.Bool
		Parallel(task, 8, func(tc *ThreadCtx) {
			if tc.NumThreads() != 8 {
				t.Errorf("NumThreads = %d", tc.NumThreads())
			}
			seen[tc.ThreadNum()].Store(true)
		})
		for tid := range seen {
			if !seen[tid].Load() {
				return fmt.Errorf("thread %d never ran", tid)
			}
		}
		return nil
	})
}

func TestParallelPanicPropagates(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		defer func() {
			if recover() == nil {
				t.Error("panic not propagated out of Parallel")
			}
		}()
		Parallel(task, 4, func(tc *ThreadCtx) {
			if tc.ThreadNum() == 2 {
				panic("thread bug")
			}
		})
		return nil
	})
}

func TestForCoversAllIterations(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		const n = 103 // not divisible by team size
		counts := make([]atomic.Int32, n)
		Parallel(task, 6, func(tc *ThreadCtx) {
			tc.For(n, func(i int) { counts[i].Add(1) })
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				return fmt.Errorf("iteration %d ran %d times", i, got)
			}
		}
		return nil
	})
}

func TestBarrierPhases(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		var phase atomic.Int32
		Parallel(task, 8, func(tc *ThreadCtx) {
			for p := 0; p < 10; p++ {
				phase.Add(1)
				tc.Barrier()
				if got := int(phase.Load()); got < (p+1)*8 {
					t.Errorf("phase %d: left barrier with %d arrivals", p, got)
				}
				tc.Barrier()
			}
		})
		return nil
	})
}

func TestSingleOncePerRegion(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		var execs atomic.Int32
		Parallel(task, 8, func(tc *ThreadCtx) {
			for i := 0; i < 5; i++ {
				tc.Single(func() { execs.Add(1) })
			}
		})
		if got := execs.Load(); got != 5 {
			return fmt.Errorf("single executed %d times, want 5", got)
		}
		return nil
	})
}

func TestCriticalMutualExclusion(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		counter := 0
		Parallel(task, 8, func(tc *ThreadCtx) {
			for i := 0; i < 1000; i++ {
				tc.Critical(func() { counter++ })
			}
		})
		if counter != 8000 {
			return fmt.Errorf("counter = %d, want 8000 (data race)", counter)
		}
		return nil
	})
}

func TestReduction(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		Parallel(task, 6, func(tc *ThreadCtx) {
			sum := tc.ReduceFloat64(float64(tc.ThreadNum()+1), func(a, b float64) float64 { return a + b }, 0)
			if sum != 21 {
				t.Errorf("thread %d: reduction = %v, want 21", tc.ThreadNum(), sum)
			}
		})
		return nil
	})
}

func TestTaskPrivateSharedWithinTask(t *testing.T) {
	v := NewTaskPrivate[int]("tp", 4, func(rank int, data []int) { data[0] = rank * 100 })
	runMPI(t, 3, func(task *mpi.Task) error {
		ptrs := make([]*int, 4)
		Parallel(task, 4, func(tc *ThreadCtx) {
			s := v.Slice(tc)
			ptrs[tc.ThreadNum()] = &s[0]
			if s[0] != task.Rank()*100 {
				t.Errorf("rank %d tid %d: init value %d", task.Rank(), tc.ThreadNum(), s[0])
			}
		})
		for tid := 1; tid < 4; tid++ {
			if ptrs[tid] != ptrs[0] {
				return fmt.Errorf("rank %d: threads see different task copies", task.Rank())
			}
		}
		return nil
	})
	if v.Instances() != 3 {
		t.Errorf("task copies = %d, want 3", v.Instances())
	}
}

func TestThreadPrivateDistinctPerThread(t *testing.T) {
	v := NewThreadPrivate[int]("thp", 1, func(rank, tid int, data []int) { data[0] = rank*10 + tid })
	runMPI(t, 2, func(task *mpi.Task) error {
		var mu sync.Mutex
		seen := map[*int]bool{}
		Parallel(task, 4, func(tc *ThreadCtx) {
			s := v.Slice(tc)
			if s[0] != task.Rank()*10+tc.ThreadNum() {
				t.Errorf("wrong init: %d", s[0])
			}
			mu.Lock()
			seen[&s[0]] = true
			mu.Unlock()
		})
		if len(seen) != 4 {
			return fmt.Errorf("rank %d: %d distinct thread copies, want 4", task.Rank(), len(seen))
		}
		return nil
	})
	if v.Instances() != 8 {
		t.Errorf("thread copies = %d, want 8", v.Instances())
	}
}

// TestThreeLevelHierarchy asserts the full containment of the paper's
// storage model on one node: OpenMP-private (8 copies) ⊂ task-private
// (2 copies) ⊂ HLS node scope (1 copy), with 2 MPI tasks x 4 threads.
func TestThreeLevelHierarchy(t *testing.T) {
	machine := topology.HarpertownCluster(1)
	w, err := mpi.NewWorld(mpi.Config{NumTasks: 2, Machine: machine,
		Pin: topology.PinCorePerTask, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	reg := hls.New(w)
	shared := hls.Declare[int](reg, "h", topology.Node, 1)
	taskPriv := NewTaskPrivate[int]("t", 1, nil)
	thrPriv := NewThreadPrivate[int]("o", 1, nil)

	var mu sync.Mutex
	sharedPtrs := map[*int]bool{}
	taskPtrs := map[*int]bool{}
	thrPtrs := map[*int]bool{}
	if err := w.Run(func(task *mpi.Task) error {
		Parallel(task, 4, func(tc *ThreadCtx) {
			h := &shared.Slice(task)[0]
			tp := &taskPriv.Slice(tc)[0]
			op := &thrPriv.Slice(tc)[0]
			mu.Lock()
			sharedPtrs[h] = true
			taskPtrs[tp] = true
			thrPtrs[op] = true
			mu.Unlock()
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sharedPtrs) != 1 {
		t.Errorf("HLS node copies = %d, want 1", len(sharedPtrs))
	}
	if len(taskPtrs) != 2 {
		t.Errorf("task-private copies = %d, want 2", len(taskPtrs))
	}
	if len(thrPtrs) != 8 {
		t.Errorf("thread-private copies = %d, want 8", len(thrPtrs))
	}
}

// TestHybridMasterOnly reproduces the paper's master-only hybrid pattern:
// OpenMP threads compute, thread 0 alone performs the MPI communication
// between parallel regions.
func TestHybridMasterOnly(t *testing.T) {
	runMPI(t, 4, func(task *mpi.Task) error {
		local := make([]float64, 1)
		Parallel(task, 4, func(tc *ThreadCtx) {
			part := tc.ReduceFloat64(1, func(a, b float64) float64 { return a + b }, 0)
			if tc.ThreadNum() == 0 {
				local[0] = part // 4 threads contributed
			}
		})
		global := make([]float64, 1)
		mpi.Allreduce(task, nil, local, global, mpi.OpSum)
		if global[0] != 16 { // 4 tasks x 4 threads
			return fmt.Errorf("global = %v, want 16", global[0])
		}
		return nil
	})
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	runMPI(t, 1, func(task *mpi.Task) error {
		mustPanic("zero threads", func() { Parallel(task, 0, func(*ThreadCtx) {}) })
		return nil
	})
	mustPanic("negative taskprivate", func() { NewTaskPrivate[int]("x", -1, nil) })
	mustPanic("negative threadprivate", func() { NewThreadPrivate[int]("x", -1, nil) })
}

func TestForDynamicCoversAllIterations(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		const n = 137
		counts := make([]atomic.Int32, n)
		Parallel(task, 5, func(tc *ThreadCtx) {
			// Two consecutive dynamic loops: the cursor must reset.
			tc.ForDynamic(n, 3, func(i int) { counts[i].Add(1) })
			tc.ForDynamic(n, 7, func(i int) { counts[i].Add(1) })
		})
		for i := range counts {
			if got := counts[i].Load(); got != 2 {
				return fmt.Errorf("iteration %d ran %d times, want 2", i, got)
			}
		}
		return nil
	})
}

func TestForDynamicBalancesLoad(t *testing.T) {
	runMPI(t, 1, func(task *mpi.Task) error {
		var executed [4]atomic.Int32
		Parallel(task, 4, func(tc *ThreadCtx) {
			tc.ForDynamic(400, 1, func(i int) {
				executed[tc.ThreadNum()].Add(1)
			})
		})
		total := int32(0)
		for i := range executed {
			total += executed[i].Load()
		}
		if total != 400 {
			return fmt.Errorf("total iterations = %d", total)
		}
		return nil
	})
}
