package procmpi

import (
	"fmt"
	"testing"
	"time"

	"hls/internal/chaos"
)

// TestFaultMapRetryRecovers: transient mapping failures are retried and
// the node comes up healthy.
func TestFaultMapRetryRecovers(t *testing.T) {
	fails := 2
	calls := 0
	rt, err := New(1, 2, 1<<16,
		WithMapGate(func(node, attempt int) error {
			calls++
			if attempt <= fails {
				return fmt.Errorf("transient map failure %d", attempt)
			}
			return nil
		}),
		WithMapRetry(3, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if calls != fails+1 {
		t.Errorf("gate consulted %d times, want %d", calls, fails+1)
	}
	if got := rt.DegradedNodes(); len(got) != 0 {
		t.Fatalf("DegradedNodes = %v after recoverable failures", got)
	}
	if rt.MapAttempts(0) != fails+1 {
		t.Errorf("MapAttempts(0) = %d, want %d", rt.MapAttempts(0), fails+1)
	}
	// Healthy node: §IV-C address identity holds.
	a := rt.Proc(0).HLSVar("x", 8)
	b := rt.Proc(1).HLSVar("x", 8)
	if a != b {
		t.Errorf("HLSVar addresses differ on a healthy node: %#x vs %#x", uint64(a), uint64(b))
	}
}

// TestFaultMapFailureDegradesNode: a node whose mapping attempts are
// exhausted degrades to private per-process HLS copies; other nodes keep
// the shared-segment invariants.
func TestFaultMapFailureDegradesNode(t *testing.T) {
	rt, err := New(2, 2, 1<<16,
		WithMapGate(func(node, attempt int) error {
			if node == 0 {
				return fmt.Errorf("persistent map failure on node %d", node)
			}
			return nil
		}),
		WithMapRetry(2, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.DegradedNodes(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("DegradedNodes = %v, want [0]", got)
	}

	// Degraded node 0: per-process private copies, isolated writes, and
	// single-nowait running in EVERY process.
	p0, p1 := rt.Proc(0), rt.Proc(1)
	if !p0.Degraded() || !p1.Degraded() {
		t.Fatal("processes of node 0 do not report Degraded")
	}
	a0 := p0.HLSVar("v", 8)
	a1 := p1.HLSVar("v", 8)
	if p0.IsShared(a0) || p1.IsShared(a1) {
		t.Error("degraded HLSVar landed in a (nonexistent) shared segment")
	}
	p0.StoreU64(a0, 111)
	p1.StoreU64(a1, 222)
	if got := p0.LoadU64(a0); got != 111 {
		t.Errorf("pid 0 private copy = %d, want 111 (write isolation broken)", got)
	}
	if got := p1.LoadU64(a1); got != 222 {
		t.Errorf("pid 1 private copy = %d, want 222", got)
	}
	ran := 0
	for _, p := range []*Process{p0, p1} {
		if p.SingleNowait(func() {}) {
			ran++
		}
	}
	if ran != 2 {
		t.Errorf("degraded single-nowait ran in %d/2 processes, want every process", ran)
	}
	// Interposed allocations inside the region stay private and usable.
	var heap Addr
	p0.SingleNowait(func() { heap = p0.Malloc(16) })
	if p0.IsShared(heap) {
		t.Error("degraded interposed allocation claims to be shared")
	}
	p0.StoreU64(heap, 7)
	if got := p0.LoadU64(heap); got != 7 {
		t.Errorf("degraded heap readback = %d, want 7", got)
	}

	// Node 1 is untouched: address identity and single-nowait election.
	p2, p3 := rt.Proc(2), rt.Proc(3)
	if p2.Degraded() {
		t.Fatal("node 1 degraded despite clean mapping")
	}
	b2 := p2.HLSVar("v", 8)
	b3 := p3.HLSVar("v", 8)
	if b2 != b3 {
		t.Errorf("healthy node lost address identity: %#x vs %#x", uint64(b2), uint64(b3))
	}
	ran = 0
	for _, p := range []*Process{p2, p3} {
		if p.SingleNowait(func() {}) {
			ran++
		}
	}
	if ran != 1 {
		t.Errorf("healthy single-nowait ran in %d/2 processes, want exactly 1", ran)
	}
}

// TestChaosMapGateDegradesNode wires the chaos injector's MapGate into
// procmpi: an injected persistent mapping fault on node 1 degrades it.
func TestChaosMapGateDegradesNode(t *testing.T) {
	inj := chaos.New(17, chaos.Fault{Kind: chaos.MapFail, Node: 1, Prob: 1})
	rt, err := New(2, 2, 1<<16,
		WithMapGate(inj.MapGate()),
		WithMapRetry(1, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.DegradedNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DegradedNodes = %v, want [1]", got)
	}
	if inj.Count(chaos.MapFail) != 2 {
		t.Errorf("MapFail fired %d times, want 2 (initial + 1 retry)", inj.Count(chaos.MapFail))
	}
}
