// Package procmpi models §IV-C of the paper: how HLS is implemented on a
// process-based MPI (Open MPI, MPICH2) where tasks do NOT share an address
// space.
//
// The technique: every process of a node maps one shared memory segment at
// the SAME virtual base address (the isomalloc scheme of PM2, obtained
// with mmap at a fixed address), so a pointer into the segment is valid in
// every process. HLS variables and their synchronization structures live
// in the segment. Heap memory reachable from an HLS variable must also be
// in the segment, which the paper obtains by interposing malloc (e.g. via
// LD_PRELOAD) while the calling process executes a single region.
//
// Here processes are modelled as separate simulated address spaces:
// a virtual address resolves through the owning process, private heaps of
// different processes reuse the same virtual range but back it with
// different storage (as real processes do), and the node's shared segment
// is one arena mapped at sharedBase in every process. Tests assert the
// §IV-C properties: address identity across processes, isolation of
// private heaps, and single-interposed allocation landing in the segment.
package procmpi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Addr is a simulated virtual address.
type Addr uint64

const (
	// privateBase is where every process's private heap starts. Identical
	// across processes — the same number means different memory in
	// different processes.
	privateBase Addr = 0x0000_1000_0000
	// sharedBase is the fixed virtual address every process of a node
	// maps the shared segment at (the isomalloc invariant).
	sharedBase Addr = 0x7f00_0000_0000
)

// Node owns the shared segment its processes map.
type Node struct {
	id int

	mu      sync.Mutex
	shared  []byte
	brk     int   // bump pointer into shared
	singles int64 // single-nowait counter (one per node scope)

	// hlsVars interns HLS variable allocations by name: the first process
	// to register allocates, the rest look up — the same effect as the
	// runtime structures of figure 2 living in the segment.
	hlsVars map[string]Addr

	// mapAttempts counts the gated mapping attempts the segment needed;
	// shared == nil after New means they were exhausted and the node is
	// degraded (fault.go).
	mapAttempts int
}

// Runtime is a cluster of nodes with processes.
type Runtime struct {
	nodes []*Node
	procs []*Process
}

// Process is one MPI task as an OS process: a private address space plus
// the node's shared segment mapped at sharedBase.
type Process struct {
	pid  int
	node *Node

	private []byte
	brk     int

	// inSingle marks that the process executes a single region, so
	// interposed allocations go to the shared segment (the LD_PRELOAD
	// mechanism).
	inSingle bool
	// singleCount counts single regions this process encountered.
	singleCount int64

	// hlsVars interns degraded-mode private HLS copies (fault.go); nil on
	// healthy nodes.
	hlsVars map[string]Addr
}

// New builds a runtime of `nodes` nodes with procsPerNode processes each,
// each node with a shared segment of segBytes. Mapping the segment is
// gated and retried per WithMapGate/WithMapRetry; a node whose mapping
// attempts are exhausted comes up degraded (no shared segment, private
// HLS fallback — see fault.go) rather than failing the whole runtime.
func New(nodes, procsPerNode, segBytes int, opts ...Option) (*Runtime, error) {
	if nodes < 1 || procsPerNode < 1 || segBytes < 1 {
		return nil, fmt.Errorf("procmpi: invalid geometry nodes=%d procs=%d seg=%d", nodes, procsPerNode, segBytes)
	}
	cfg := config{mapRetries: 3, mapBackoff: time.Millisecond}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Runtime{}
	for n := 0; n < nodes; n++ {
		seg, attempts := cfg.mapSegment(n, segBytes)
		node := &Node{id: n, shared: seg, hlsVars: make(map[string]Addr), mapAttempts: attempts}
		r.nodes = append(r.nodes, node)
		for p := 0; p < procsPerNode; p++ {
			r.procs = append(r.procs, &Process{
				pid:     n*procsPerNode + p,
				node:    node,
				private: make([]byte, 1<<20),
			})
		}
	}
	return r, nil
}

// Proc returns process `pid`.
func (r *Runtime) Proc(pid int) *Process { return r.procs[pid] }

// NumProcs returns the total process count.
func (r *Runtime) NumProcs() int { return len(r.procs) }

// Pid returns the process id.
func (p *Process) Pid() int { return p.pid }

// NodeID returns the node the process runs on.
func (p *Process) NodeID() int { return p.node.id }

// Malloc allocates n bytes. Outside a single region the allocation is
// private; inside one it is interposed into the node's shared segment, so
// pointers stored in HLS variables stay valid in every process (§IV-C:
// "overload dynamic memory allocations ... and allocate memory in the
// shared memory segment when the call is inside a single directive").
func (p *Process) Malloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("procmpi: malloc(%d)", n))
	}
	if p.inSingle && !p.node.Degraded() {
		return p.node.sharedAlloc(n)
	}
	if p.brk+n > len(p.private) {
		grown := make([]byte, max(len(p.private)*2, p.brk+n))
		copy(grown, p.private)
		p.private = grown
	}
	a := privateBase + Addr(p.brk)
	p.brk += n
	return a
}

// sharedAlloc bump-allocates in the node segment.
func (n *Node) sharedAlloc(bytes int) Addr {
	n.degradedCheck("sharedAlloc")
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.brk+bytes > len(n.shared) {
		panic(fmt.Sprintf("procmpi: shared segment exhausted (%d + %d > %d)", n.brk, bytes, len(n.shared)))
	}
	a := sharedBase + Addr(n.brk)
	n.brk += bytes
	return a
}

// IsShared reports whether addr points into the node's shared segment.
func (p *Process) IsShared(addr Addr) bool {
	return addr >= sharedBase && addr < sharedBase+Addr(len(p.node.shared))
}

// resolve maps a virtual address to backing storage through this process,
// like the MMU would.
func (p *Process) resolve(addr Addr, n int) []byte {
	switch {
	case p.IsShared(addr):
		off := int(addr - sharedBase)
		return p.node.shared[off : off+n]
	case addr >= privateBase && int(addr-privateBase)+n <= len(p.private):
		off := int(addr - privateBase)
		return p.private[off : off+n]
	default:
		panic(fmt.Sprintf("procmpi: pid %d: segmentation fault at %#x (+%d)", p.pid, uint64(addr), n))
	}
}

// Store writes data at addr in this process's view of memory.
func (p *Process) Store(addr Addr, data []byte) {
	copy(p.resolve(addr, len(data)), data)
}

// Load reads n bytes at addr in this process's view of memory.
func (p *Process) Load(addr Addr, n int) []byte {
	out := make([]byte, n)
	copy(out, p.resolve(addr, n))
	return out
}

// StoreU64 / LoadU64 are fixed-width conveniences (e.g. for storing a
// pointer inside an HLS variable, listing 4's heap-backed matrix B).
func (p *Process) StoreU64(addr Addr, v uint64) {
	binary.LittleEndian.PutUint64(p.resolve(addr, 8), v)
}

// LoadU64 reads a 64-bit value.
func (p *Process) LoadU64(addr Addr) uint64 {
	return binary.LittleEndian.Uint64(p.resolve(addr, 8))
}

// SingleNowait runs body in this process if it is the first of its node to
// reach the region (node-scope single nowait, the §IV-B counter scheme);
// allocations inside body are interposed into the shared segment. It
// reports whether body ran.
func (p *Process) SingleNowait(body func()) bool {
	p.singleCount++
	n := p.node
	if n.Degraded() {
		// Degraded mode: each process keeps its own private copies, so the
		// region must execute in every process to maintain them (the hls
		// demotion semantics at process level).
		p.inSingle = true
		defer func() { p.inSingle = false }()
		body()
		return true
	}
	n.mu.Lock()
	execute := p.singleCount > n.singles
	if execute {
		n.singles = p.singleCount
	}
	n.mu.Unlock()
	if execute {
		p.inSingle = true
		defer func() { p.inSingle = false }()
		body()
	}
	return execute
}

// HLSVar returns the segment address of the named HLS variable, allocating
// it (zeroed) on first registration by any process of the node. All
// processes of a node observe the same address — the figure-2 layout in a
// shared segment.
func (p *Process) HLSVar(name string, bytes int) Addr {
	n := p.node
	if n.Degraded() {
		return p.privHLSVar(name, bytes)
	}
	n.mu.Lock()
	if a, ok := n.hlsVars[name]; ok {
		n.mu.Unlock()
		return a
	}
	n.mu.Unlock()
	a := n.sharedAlloc(bytes)
	n.mu.Lock()
	// Another process may have raced us; first registration wins and the
	// losing allocation is abandoned (bump allocators don't free).
	if prev, ok := n.hlsVars[name]; ok {
		a = prev
	} else {
		n.hlsVars[name] = a
	}
	n.mu.Unlock()
	return a
}
