package procmpi

import (
	"fmt"
	"time"
)

// Fault tolerance for the process-based model: mapping the node's shared
// segment at the fixed base address can fail (address already taken,
// shm exhausted — the real isomalloc failure modes). New retries with
// capped exponential backoff and, when the retries are exhausted,
// degrades the node instead of failing the job: the node runs without a
// shared segment, HLS variables fall back to private per-process copies,
// and single-nowait regions execute in every process so each copy is
// maintained — the process-level analogue of hls demotion (§III
// sharing/duplication equivalence).

// MapGate is consulted before each attempt (1-based) to map node's
// shared segment; a non-nil error fails the attempt. internal/chaos's
// Injector.MapGate() implements it.
type MapGate func(node, attempt int) error

// Option tunes New.
type Option func(*config)

type config struct {
	mapGate    MapGate
	mapRetries int
	mapBackoff time.Duration
}

// WithMapGate installs a mapping gate (fault injection point).
func WithMapGate(g MapGate) Option {
	return func(c *config) { c.mapGate = g }
}

// WithMapRetry tunes the mapping retry policy: up to retries additional
// attempts after the first failure, sleeping backoff, 2*backoff, ...
// (capped at 100ms) between them. Defaults: 3 retries, 1ms backoff.
func WithMapRetry(retries int, backoff time.Duration) Option {
	return func(c *config) {
		c.mapRetries = retries
		c.mapBackoff = backoff
	}
}

// maxMapBackoff caps the exponential backoff between mapping attempts.
const maxMapBackoff = 100 * time.Millisecond

// mapSegment runs the gated mapping attempts for one node. It returns
// the mapped segment, or nil after the retries are exhausted (the node
// degrades).
func (c *config) mapSegment(node, segBytes int) ([]byte, int) {
	attempts := 0
	backoff := c.mapBackoff
	for {
		attempts++
		if c.mapGate != nil {
			if err := c.mapGate(node, attempts); err != nil {
				if attempts > c.mapRetries {
					return nil, attempts
				}
				time.Sleep(backoff)
				backoff *= 2
				if backoff > maxMapBackoff {
					backoff = maxMapBackoff
				}
				continue
			}
		}
		return make([]byte, segBytes), attempts
	}
}

// Degraded reports whether the node runs without a shared segment.
func (n *Node) Degraded() bool { return n.shared == nil }

// Degraded reports whether this process's node runs without a shared
// segment (HLS variables are private per-process copies).
func (p *Process) Degraded() bool { return p.node.Degraded() }

// DegradedNodes lists the nodes whose segment mapping failed.
func (r *Runtime) DegradedNodes() []int {
	var out []int
	for _, n := range r.nodes {
		if n.Degraded() {
			out = append(out, n.id)
		}
	}
	return out
}

// MapAttempts returns how many mapping attempts node needed (1 for a
// clean first-try mapping).
func (r *Runtime) MapAttempts(node int) int { return r.nodes[node].mapAttempts }

// privHLSVar is the degraded-mode HLSVar: a per-process private copy,
// interned per process so repeated lookups agree within the process.
// Address identity across processes — the §IV-C invariant — is exactly
// what degradation gives up.
func (p *Process) privHLSVar(name string, bytes int) Addr {
	if p.hlsVars == nil {
		p.hlsVars = make(map[string]Addr)
	}
	if a, ok := p.hlsVars[name]; ok {
		return a
	}
	a := p.Malloc(bytes)
	p.hlsVars[name] = a
	return a
}

// degradedCheck panics when shared-segment operations are attempted on a
// degraded node outside the sanctioned fallback paths.
func (n *Node) degradedCheck(op string) {
	if n.Degraded() {
		panic(fmt.Sprintf("procmpi: node %d is degraded (no shared segment): %s", n.id, op))
	}
}
