package procmpi

import (
	"sync"
	"testing"
)

func TestPrivateHeapsIsolated(t *testing.T) {
	// Same virtual address, different processes, different contents —
	// the defining property of process-based MPI.
	r, err := New(1, 2, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := r.Proc(0), r.Proc(1)
	a0 := p0.Malloc(8)
	a1 := p1.Malloc(8)
	if a0 != a1 {
		t.Fatalf("first private allocations differ: %#x vs %#x", a0, a1)
	}
	p0.StoreU64(a0, 111)
	p1.StoreU64(a1, 222)
	if p0.LoadU64(a0) != 111 || p1.LoadU64(a1) != 222 {
		t.Error("private heaps are not isolated")
	}
}

func TestSharedSegmentSameAddressAcrossProcesses(t *testing.T) {
	// The isomalloc invariant: one process allocates in the segment, every
	// process of the node dereferences the same address successfully.
	r, _ := New(1, 4, 1<<16)
	p0 := r.Proc(0)
	var addr Addr
	p0.SingleNowait(func() {
		addr = p0.Malloc(64)
		p0.StoreU64(addr, 0xBEEF)
	})
	for pid := 0; pid < 4; pid++ {
		p := r.Proc(pid)
		if !p.IsShared(addr) {
			t.Fatalf("pid %d: %#x not recognized as shared", pid, uint64(addr))
		}
		if got := p.LoadU64(addr); got != 0xBEEF {
			t.Errorf("pid %d reads %#x, want 0xBEEF", pid, got)
		}
	}
}

func TestInterpositionOnlyInsideSingle(t *testing.T) {
	r, _ := New(1, 2, 1<<16)
	p := r.Proc(0)
	private := p.Malloc(8)
	if p.IsShared(private) {
		t.Error("allocation outside single landed in the shared segment")
	}
	var shared Addr
	p.SingleNowait(func() { shared = p.Malloc(8) })
	if !p.IsShared(shared) {
		t.Error("allocation inside single did not interpose into the segment")
	}
	after := p.Malloc(8)
	if p.IsShared(after) {
		t.Error("interposition leaked past the single region")
	}
}

func TestSingleNowaitOncePerNode(t *testing.T) {
	r, _ := New(2, 4, 1<<16)
	execs := make([]int, 2)
	for pid := 0; pid < 8; pid++ {
		p := r.Proc(pid)
		if p.SingleNowait(func() {}) {
			execs[p.NodeID()]++
		}
	}
	if execs[0] != 1 || execs[1] != 1 {
		t.Errorf("single executed %v times per node, want once each", execs)
	}
}

func TestSingleNowaitRepeatedRegions(t *testing.T) {
	r, _ := New(1, 3, 1<<16)
	total := 0
	for region := 0; region < 5; region++ {
		for pid := 0; pid < 3; pid++ {
			if r.Proc(pid).SingleNowait(func() {}) {
				total++
			}
		}
	}
	if total != 5 {
		t.Errorf("bodies executed %d times, want 5", total)
	}
}

func TestHLSVarSameAddressEveryProcess(t *testing.T) {
	r, _ := New(1, 4, 1<<16)
	addrs := make([]Addr, 4)
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			addrs[pid] = r.Proc(pid).HLSVar("eos_table", 1024)
		}(pid)
	}
	wg.Wait()
	for pid := 1; pid < 4; pid++ {
		if addrs[pid] != addrs[0] {
			t.Fatalf("pid %d got %#x, pid 0 got %#x", pid, uint64(addrs[pid]), uint64(addrs[0]))
		}
	}
	// Writes by one process are visible to all through the variable.
	r.Proc(2).StoreU64(addrs[0], 42)
	if got := r.Proc(3).LoadU64(addrs[0]); got != 42 {
		t.Errorf("pid 3 reads %d, want 42", got)
	}
}

func TestHLSVarDistinctPerNode(t *testing.T) {
	// Same name on different nodes -> same virtual address (isomalloc base
	// identical), but different storage: HLS keeps no coherency across
	// nodes (the paper's DSM contrast).
	r, _ := New(2, 1, 1<<16)
	a0 := r.Proc(0).HLSVar("v", 8)
	a1 := r.Proc(1).HLSVar("v", 8)
	if a0 != a1 {
		t.Fatalf("addresses differ across nodes: %#x vs %#x", a0, a1)
	}
	r.Proc(0).StoreU64(a0, 7)
	r.Proc(1).StoreU64(a1, 9)
	if r.Proc(0).LoadU64(a0) != 7 || r.Proc(1).LoadU64(a1) != 9 {
		t.Error("nodes share storage; HLS must be node-local")
	}
}

func TestHeapBackedHLSPointer(t *testing.T) {
	// Listing 4's pattern: an HLS variable holds a pointer to heap memory
	// allocated inside a single. The pointer must dereference correctly
	// from every process.
	r, _ := New(1, 4, 1<<16)
	slot := r.Proc(0).HLSVar("B_ptr", 8)
	r.Proc(1).SingleNowait(func() {
		buf := r.Proc(1).Malloc(256) // interposed -> shared
		r.Proc(1).StoreU64(buf, 123456)
		r.Proc(1).StoreU64(slot, uint64(buf))
	})
	for pid := 0; pid < 4; pid++ {
		p := r.Proc(pid)
		ptr := Addr(p.LoadU64(slot))
		if !p.IsShared(ptr) {
			t.Fatalf("pid %d: stored pointer %#x is not shared", pid, uint64(ptr))
		}
		if got := p.LoadU64(ptr); got != 123456 {
			t.Errorf("pid %d dereferences %d, want 123456", pid, got)
		}
	}
}

func TestSegfaultOnWildPointer(t *testing.T) {
	r, _ := New(1, 1, 1<<12)
	defer func() {
		if recover() == nil {
			t.Error("wild load did not fault")
		}
	}()
	r.Proc(0).Load(0xDEAD, 8)
}

func TestSegmentExhaustion(t *testing.T) {
	r, _ := New(1, 1, 128)
	p := r.Proc(0)
	defer func() {
		if recover() == nil {
			t.Error("segment overflow did not panic")
		}
	}()
	p.SingleNowait(func() { p.Malloc(4096) })
}

func TestPrivateHeapGrows(t *testing.T) {
	r, _ := New(1, 1, 1<<12)
	p := r.Proc(0)
	a := p.Malloc(4 << 20) // larger than the 1 MiB initial arena
	p.StoreU64(a+Addr(4<<20)-8, 5)
	if got := p.LoadU64(a + Addr(4<<20) - 8); got != 5 {
		t.Errorf("tail of grown heap = %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 10); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := New(1, 0, 10); err == nil {
		t.Error("0 procs accepted")
	}
	if _, err := New(1, 1, 0); err == nil {
		t.Error("0-byte segment accepted")
	}
}
