package bench

import (
	"io"
	"strings"
	"testing"
)

// TestRunHaloQuick runs the quick sweep end to end and asserts the
// correctness-shaped checks. Timing and allocation checks are advisory
// here (CI runners are noisy, the race detector skews both), but the
// digests and the elision accounting must hold everywhere.
func TestRunHaloQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("halo sweep in -short mode")
	}
	res, err := RunHalo(Quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	PrintHalo(io.Discard, res)
	c := res.Checks
	if !c.BitwiseIdentical {
		t.Error("digests differ across datapath ablations")
	}
	if !c.ElisionEngaged {
		t.Error("pack elision did not engage exactly on the zero-copy cells")
	}
	if !c.CleanWire {
		t.Error("wire cells reconnected or moved no frames")
	}
	if !c.NoLeakedBuffers {
		t.Error("pooled buffers leaked")
	}
	if !c.ZeroAllocsSteadyState && !raceDetectorOn {
		t.Error("zero-copy exchange loop allocated per iteration")
	}
	for _, pt := range res.Points {
		if pt.Digest == "" || pt.NsPerOp <= 0 {
			t.Errorf("%s/%s n=%d h=%d: incomplete point %+v", pt.Mode, pt.Ablation, pt.N, pt.Halo, pt)
		}
		if pt.Mode == "wire" && pt.Ablation == "zerocopy" && pt.PackElisions == 0 {
			t.Errorf("wire zerocopy n=%d h=%d: intra-node pairs recorded no elisions", pt.N, pt.Halo)
		}
	}
}

// TestCompareHalo pins the comparator contract on the generic tail: a
// check that held in the baseline and fails now is a hard error, a
// never-passing check is not.
func TestCompareHalo(t *testing.T) {
	base := &HaloResult{Profile: "quick", Checks: HaloChecks{
		ZeroCopySpeedup: true, BitwiseIdentical: true,
	}}
	cur := &HaloResult{Profile: "quick", Checks: HaloChecks{
		ZeroCopySpeedup: true, BitwiseIdentical: true,
	}}
	var sb strings.Builder
	if err := CompareHalo(&sb, base, cur); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}
	if !strings.Contains(sb.String(), "all baseline checks still hold") {
		t.Fatalf("missing success line in %q", sb.String())
	}
	cur.Checks.BitwiseIdentical = false
	err := CompareHalo(io.Discard, base, cur)
	if err == nil || !strings.Contains(err.Error(), "bitwise_identical") {
		t.Fatalf("regression not flagged: %v", err)
	}
	// CleanWire was false in the baseline: failing now is not a
	// regression — new checks may land red and tighten later.
	cur.Checks.BitwiseIdentical = true
	cur.Checks.CleanWire = false
	if err := CompareHalo(io.Discard, base, cur); err != nil {
		t.Fatalf("never-passing check treated as regression: %v", err)
	}
}
