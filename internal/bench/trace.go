package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/obs"
	"hls/internal/topology"
	"hls/internal/trace"
)

// The -exp trace experiment validates the observability plane against
// ground truth it controls: a four-rank workload with a rotating
// straggler (directive imbalance), an eager ring and a rendezvous
// exchange, where every blocking call is also measured directly with
// monotonic clocks. The tracer's wait attribution — late-sender,
// late-receiver, directive-imbalance, wire-stall buckets computed from
// flow arrows, CTS instants and directive spans — must re-derive each
// rank's measured blocked time from the trace alone, and the tracing
// fast path must cost under 10% summed over the actual -exp p2p quick
// profile (the probe runs that profile twice, tracing off and on).

// TraceRankRow is one rank's measured-vs-attributed blocked time.
type TraceRankRow struct {
	Rank int `json:"rank"`
	// MeasuredUs is the summed wall time of the rank's blocking calls
	// (receives, rendezvous sends, directives), bracketed in the
	// workload itself.
	MeasuredUs float64 `json:"measured_us"`
	// AttributedUs is what Analyze reconstructed from the trace.
	AttributedUs   float64 `json:"attributed_us"`
	LateSenderUs   float64 `json:"late_sender_us"`
	LateReceiverUs float64 `json:"late_receiver_us"`
	DirectiveUs    float64 `json:"directive_us"`
	WireStallUs    float64 `json:"wire_stall_us"`
	// DeviationPct is |attributed - measured| / measured * 100.
	DeviationPct float64 `json:"deviation_pct"`
}

// TraceChecks are the experiment's acceptance criteria.
type TraceChecks struct {
	// FlowsPaired: every flow start has exactly one matching end.
	FlowsPaired bool `json:"flows_paired"`
	// MonotoneFlows: no flow ends before it starts.
	MonotoneFlows bool `json:"monotone_flows"`
	// BucketsCover: each rank's attributed wait matches its measured
	// blocked time within 5% (plus a 2ms floor absorbing scheduler
	// wake-up latency, which the measurement sees but the trace's
	// post/deliver corners exclude).
	BucketsCover bool `json:"buckets_cover"`
	// DroppedZero: the recorder ring never overflowed.
	DroppedZero bool `json:"dropped_zero"`
	// SamplingReduces: the 1/N-sampled pass of the same workload recorded
	// meaningfully fewer events than the unsampled one (the span path
	// honors trace.WithSampling).
	SamplingReduces bool `json:"sampling_reduces"`
	// OverheadOK: tracing costs < 10% summed over the -exp p2p quick
	// profile's points (see measureTraceOverhead).
	OverheadOK bool `json:"overhead_ok"`
}

// TraceResult is the full -exp trace output.
type TraceResult struct {
	Profile string `json:"profile"`
	Rounds  int    `json:"rounds"`
	Events  int    `json:"events"`
	Dropped int64  `json:"dropped"`
	// SamplingRate and SampledEvents come from a second pass of the same
	// workload under trace.WithSampling(SamplingRate): one in N message
	// spans minted, everything else (directives, instants) still recorded.
	SamplingRate  int            `json:"sampling_rate"`
	SampledEvents int            `json:"sampled_events"`
	Ranks         []TraceRankRow `json:"ranks"`
	PathSegs      int            `json:"path_segs"`
	PathComputeUs float64        `json:"path_compute_us"`
	PathWaitUs    float64        `json:"path_wait_us"`
	// OverheadPoints is every -exp p2p quick point measured with tracing
	// off and on; Untraced/TracedNsPerOp are the profile sums and
	// OverheadPct the suite-level delta the 10% budget applies to.
	OverheadPoints  []TraceOverheadPoint `json:"overhead_points"`
	UntracedNsPerOp float64              `json:"untraced_ns_per_op"`
	TracedNsPerOp   float64              `json:"traced_ns_per_op"`
	OverheadPct     float64              `json:"overhead_pct"`
	Checks          TraceChecks          `json:"checks"`

	events []trace.Event // for WriteTraceEvents; not serialized
}

const traceRanks = 4

// runTraceWorkload runs the ground-truth workload under tracing and
// returns the tracer plus each rank's directly measured blocked time.
// sampleEvery > 1 installs trace.WithSampling: only one in sampleEvery
// message spans is minted, the cheap mode for long production runs.
func runTraceWorkload(rounds, sampleEvery int) (*obs.Tracer, [traceRanks]time.Duration, error) {
	var measured [traceRanks]time.Duration
	opts := []trace.RecorderOption{trace.WithMaxEvents(1 << 17)}
	if sampleEvery > 1 {
		opts = append(opts, trace.WithSampling(sampleEvery))
	}
	tracer := obs.NewTracer(trace.NewRecorder(opts...))
	m, err := topology.New(topology.Spec{
		Name: "tracebench", Nodes: 1, SocketsPerNode: 1,
		CoresPerSocket: traceRanks, ThreadsPerCore: 1,
	})
	if err != nil {
		return nil, measured, err
	}
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: traceRanks, Machine: m,
		Trace:   tracer,
		Timeout: 5 * time.Minute,
	})
	if err != nil {
		return nil, measured, err
	}
	hreg := hls.New(w, hls.WithObserver(tracer.Sync()))
	table := hls.Declare[int64](hreg, "trace-table", topology.Node, 512)

	err = w.Run(func(tk *mpi.Task) error {
		rank := tk.Rank()
		n := tk.Size()
		var blocked time.Duration
		block := func(fn func()) {
			t0 := time.Now()
			fn()
			blocked += time.Since(t0)
		}
		eager := make([]int64, 16)    // 128B, well under the limit
		rendez := make([]int64, 1024) // 8KiB, past the limit
		for r := 0; r < rounds; r++ {
			// Rotating straggler: one rank computes 6x longer before the
			// directive, so everyone else's Single bracket is imbalance.
			spinFor := 200 * time.Microsecond
			if rank == r%n {
				spinFor = 1200 * time.Microsecond
			}
			spin(spinFor)
			block(func() {
				table.Single(tk, func(data []int64) {
					for i := range data {
						data[i] = int64(r)
					}
				})
			})

			// Eager ring: everyone sends right, receives from the left.
			// The straggler's neighbour sees a late sender.
			right, left := (rank+1)%n, (rank+n-1)%n
			mpi.Send(tk, nil, eager, right, r)
			block(func() { mpi.Recv(tk, nil, eager, left, r) })

			// Rendezvous pairwise exchange: even ranks send first (their
			// Send blocks until the partner posts — late receiver), odd
			// ranks receive first.
			partner := rank ^ 1
			if rank%2 == 0 {
				block(func() { mpi.Send(tk, nil, rendez, partner, rounds+r) })
				block(func() { mpi.Recv(tk, nil, rendez, partner, 2*rounds+r) })
			} else {
				block(func() { mpi.Recv(tk, nil, rendez, partner, rounds+r) })
				block(func() { mpi.Send(tk, nil, rendez, partner, 2*rounds+r) })
			}
		}
		measured[rank] = blocked
		return nil
	})
	return tracer, measured, err
}

// spin busy-waits (compute, not blocking — it must not count as wait).
func spin(d time.Duration) {
	t0 := time.Now()
	for time.Since(t0) < d { //nolint:staticcheck // intentional busy loop
	}
}

// TraceOverheadPoint is one -exp p2p quick point measured with tracing
// off and on.
type TraceOverheadPoint struct {
	Kind            string  `json:"kind"`
	Tasks           int     `json:"tasks"`
	Bytes           int     `json:"bytes"`
	EagerLimit      int     `json:"eager_limit"`
	Protocol        string  `json:"protocol"`
	Arrival         string  `json:"arrival,omitempty"`
	UntracedNsPerOp float64 `json:"untraced_ns_per_op"`
	TracedNsPerOp   float64 `json:"traced_ns_per_op"`
	OverheadPct     float64 `json:"overhead_pct"`
}

// measureTraceOverhead runs the actual -exp p2p quick profile with
// tracing off and on — the budget is defined over that profile, so the
// probe runs it rather than a lookalike. Every world the traced pass
// builds gets a fresh tracer over a bounded ring, exactly what a traced
// production run would install. The modes alternate within each trial
// (off, on, off, on …) so slow drift in the host — CPU steal on a
// shared VM, thermal throttling — lands on both sides instead of
// charging one mode for the other's bad minutes; each point keeps its
// per-mode minimum ns/op across trials (the runs differ only in
// scheduler noise, so the minimum is the comparable figure). Points are
// matched by index — RunP2P emits them in a deterministic order.
func measureTraceOverhead(trials int) (pts []TraceOverheadPoint, untraced, traced float64, err error) {
	runOnce := func(traced bool) ([]P2PPoint, error) {
		if traced {
			p2pTraceConfig = func() mpi.TraceHooks {
				return obs.NewTracer(trace.NewRecorder(trace.WithMaxEvents(1 << 16)))
			}
			defer func() { p2pTraceConfig = nil }()
		}
		res, err := RunP2P(Quick, 0)
		if err != nil {
			return nil, err
		}
		return res.Points, nil
	}
	merge := func(best, cur []P2PPoint) []P2PPoint {
		if best == nil {
			return cur
		}
		for i := range best {
			if p := cur[i].NsPerOp; p > 0 && (best[i].NsPerOp <= 0 || p < best[i].NsPerOp) {
				best[i].NsPerOp = p
			}
		}
		return best
	}
	var off, on []P2PPoint
	for t := 0; t < trials; t++ {
		cur, err := runOnce(false)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("untraced p2p profile: %w", err)
		}
		off = merge(off, cur)
		cur, err = runOnce(true)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("traced p2p profile: %w", err)
		}
		on = merge(on, cur)
	}
	for i := range off {
		pt := TraceOverheadPoint{
			Kind: off[i].Kind, Tasks: off[i].Tasks, Bytes: off[i].Bytes,
			EagerLimit: off[i].EagerLimit, Protocol: off[i].Protocol,
			Arrival:         off[i].Arrival,
			UntracedNsPerOp: off[i].NsPerOp, TracedNsPerOp: on[i].NsPerOp,
		}
		if pt.UntracedNsPerOp > 0 {
			pt.OverheadPct = (pt.TracedNsPerOp - pt.UntracedNsPerOp) / pt.UntracedNsPerOp * 100
		}
		pts = append(pts, pt)
		untraced += pt.UntracedNsPerOp
		traced += pt.TracedNsPerOp
	}
	return pts, untraced, traced, nil
}

// RunTrace runs the observability-plane experiment.
func RunTrace(p Profile) (*TraceResult, error) {
	rounds, overTrials := 24, 2
	if p == Full {
		rounds, overTrials = 96, 3
	}
	const sampleEvery = 8
	tracer, measured, err := runTraceWorkload(rounds, 1)
	if err != nil {
		return nil, fmt.Errorf("trace workload: %w", err)
	}
	// Second pass, same workload, 1/8 span sampling: the event-volume
	// reduction is the knob's whole point, so measure it rather than
	// assert it.
	sampled, _, err := runTraceWorkload(rounds, sampleEvery)
	if err != nil {
		return nil, fmt.Errorf("sampled trace workload: %w", err)
	}
	if active != nil {
		active.AttachTracer(tracer)
	}
	events := tracer.Recorder().Events()
	a := obs.Analyze(events)
	res := &TraceResult{
		Profile: p.String(), Rounds: rounds,
		Events: len(events), Dropped: tracer.Dropped(),
		SamplingRate:  sampleEvery,
		SampledEvents: len(sampled.Recorder().Events()),
		PathSegs:      len(a.Path), PathComputeUs: a.PathComputeUs, PathWaitUs: a.PathWaitUs,
		events: events,
	}

	byRank := map[int]obs.RankWait{}
	for _, rw := range a.Ranks {
		byRank[rw.Rank] = rw
	}
	for r := 0; r < traceRanks; r++ {
		rw := byRank[r]
		row := TraceRankRow{
			Rank:           r,
			MeasuredUs:     float64(measured[r].Nanoseconds()) / 1e3,
			AttributedUs:   rw.TotalUs(),
			LateSenderUs:   rw.LateSenderUs,
			LateReceiverUs: rw.LateReceiverUs,
			DirectiveUs:    rw.DirectiveUs,
			WireStallUs:    rw.WireStallUs,
		}
		if row.MeasuredUs > 0 {
			row.DeviationPct = abs(row.AttributedUs-row.MeasuredUs) / row.MeasuredUs * 100
		}
		res.Ranks = append(res.Ranks, row)
	}

	res.OverheadPoints, res.UntracedNsPerOp, res.TracedNsPerOp, err = measureTraceOverhead(overTrials)
	if err != nil {
		return nil, err
	}
	if res.UntracedNsPerOp > 0 {
		res.OverheadPct = (res.TracedNsPerOp - res.UntracedNsPerOp) / res.UntracedNsPerOp * 100
	}
	res.Checks = computeTraceChecks(res, events)
	return res, nil
}

func computeTraceChecks(res *TraceResult, events []trace.Event) TraceChecks {
	ch := TraceChecks{
		DroppedZero: res.Dropped == 0,
		OverheadOK:  res.OverheadPct < 10,
		// "Meaningfully fewer": under 1/N span sampling the span events
		// collapse to ~1/N, so even with the unsampled directive/instant
		// floor the ring must hold well under 3/4 of the full volume.
		SamplingReduces: res.SamplingRate > 1 && res.SampledEvents > 0 &&
			4*res.SampledEvents < 3*res.Events,
	}
	starts := map[uint64]float64{}
	ends := map[uint64]int{}
	nStarts := 0
	ch.MonotoneFlows = true
	for _, e := range events {
		if e.ID == 0 || (e.Ph != "s" && e.Ph != "f") {
			continue
		}
		if e.Ph == "s" {
			starts[e.ID] = e.Ts
			nStarts++
		} else {
			ends[e.ID]++
		}
	}
	ch.FlowsPaired = nStarts > 0 && len(ends) == nStarts
	for id, n := range ends {
		s, ok := starts[id]
		if !ok || n != 1 {
			ch.FlowsPaired = false
			continue
		}
		for _, e := range events {
			if e.Ph == "f" && e.ID == id && e.Ts < s {
				ch.MonotoneFlows = false
			}
		}
	}
	ch.BucketsCover = len(res.Ranks) > 0
	for _, row := range res.Ranks {
		tol := row.MeasuredUs*0.05 + 2000
		if abs(row.AttributedUs-row.MeasuredUs) > tol {
			ch.BucketsCover = false
		}
	}
	return ch
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// PrintTrace renders the attribution table and the acceptance checks.
func PrintTrace(w io.Writer, res *TraceResult) {
	fprintf(w, "Wait attribution vs ground truth (%d rounds, %d trace events)\n",
		res.Rounds, res.Events)
	fprintf(w, "%4s %12s %12s %12s %12s %12s %12s %8s\n",
		"rank", "measured", "attributed", "late-send", "late-recv", "directive", "wire", "dev")
	for _, r := range res.Ranks {
		fprintf(w, "%4d %11.0fus %11.0fus %11.0fus %11.0fus %11.0fus %11.0fus %7.1f%%\n",
			r.Rank, r.MeasuredUs, r.AttributedUs, r.LateSenderUs,
			r.LateReceiverUs, r.DirectiveUs, r.WireStallUs, r.DeviationPct)
	}
	fprintf(w, "critical path: %d segments, %.0fus compute + %.0fus wait\n",
		res.PathSegs, res.PathComputeUs, res.PathWaitUs)
	if res.SamplingRate > 1 {
		pct := 0.0
		if res.Events > 0 {
			pct = float64(res.SampledEvents) / float64(res.Events) * 100
		}
		fprintf(w, "span sampling 1/%d: %d events vs %d unsampled (%.0f%% of full volume)\n",
			res.SamplingRate, res.SampledEvents, res.Events, pct)
	}
	fprintf(w, "tracing overhead on the -exp p2p quick profile:\n")
	for _, pt := range res.OverheadPoints {
		fprintf(w, "  %-8s %2dt %6dB limit %5d %-10s %7.0f -> %7.0f ns/op (%+.1f%%)\n",
			pt.Kind, pt.Tasks, pt.Bytes, pt.EagerLimit, pt.Protocol+pt.Arrival,
			pt.UntracedNsPerOp, pt.TracedNsPerOp, pt.OverheadPct)
	}
	fprintf(w, "  profile total: %.0f -> %.0f ns/op (%+.1f%%)\n",
		res.UntracedNsPerOp, res.TracedNsPerOp, res.OverheadPct)
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"every flow start paired with exactly one end", res.Checks.FlowsPaired},
		{"no flow ends before it starts", res.Checks.MonotoneFlows},
		{"attribution covers measured blocked time (5% + 2ms)", res.Checks.BucketsCover},
		{"zero events dropped from the recorder ring", res.Checks.DroppedZero},
		{"1/N span sampling shrinks the event volume", res.Checks.SamplingReduces},
		{"tracing overhead under 10% on the -exp p2p quick profile", res.Checks.OverheadOK},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

// WriteTraceCSV writes the per-rank attribution table.
func WriteTraceCSV(w io.Writer, res *TraceResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"rank", "measured_us", "attributed_us", "late_sender_us",
		"late_receiver_us", "directive_us", "wire_stall_us", "deviation_pct",
	}); err != nil {
		return err
	}
	for _, r := range res.Ranks {
		if err := cw.Write([]string{
			strconv.Itoa(r.Rank),
			fmt.Sprintf("%.1f", r.MeasuredUs), fmt.Sprintf("%.1f", r.AttributedUs),
			fmt.Sprintf("%.1f", r.LateSenderUs), fmt.Sprintf("%.1f", r.LateReceiverUs),
			fmt.Sprintf("%.1f", r.DirectiveUs), fmt.Sprintf("%.1f", r.WireStallUs),
			fmt.Sprintf("%.2f", r.DeviationPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceEvents writes the workload's trace as a Perfetto-loadable
// file (the single-process equivalent of rank 0's merged view), for
// hlstrace and for eyeballing in a viewer.
func WriteTraceEvents(w io.Writer, res *TraceResult) error {
	m := obs.Merge([]*obs.ProcDump{{Node: 0, Dropped: res.Dropped, Events: res.events}})
	return m.WriteTrace(w)
}

// WriteTraceJSON writes the full result snapshot (BENCH_trace.json).
func WriteTraceJSON(w io.Writer, res *TraceResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadTraceJSON parses a snapshot written by WriteTraceJSON.
func ReadTraceJSON(r io.Reader) (*TraceResult, error) {
	var res TraceResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareTrace prints an old/new comparison and fails on check
// regressions, following the other experiments' baseline contract.
func CompareTrace(w io.Writer, base, cur *TraceResult) error {
	fprintf(w, "Trace comparison vs baseline (%s profile)\n", base.Profile)
	fprintf(w, "  overhead %.1f%% -> %.1f%%\n", base.OverheadPct, cur.OverheadPct)
	for _, b := range base.Ranks {
		for _, c := range cur.Ranks {
			if b.Rank == c.Rank {
				fprintf(w, "  rank %d deviation %.1f%% -> %.1f%%\n", b.Rank, b.DeviationPct, c.DeviationPct)
			}
		}
	}
	return compareChecks(w, "trace", base.Checks, cur.Checks)
}
