//go:build !race

package bench

// raceDetectorOn reports whether the race detector is compiled in.
const raceDetectorOn = false
