package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"hls/internal/mpi"
)

// collFixture is a small in-memory result with every check passing: one
// (op, ranks, size) cell measured under all four ablations, plus one
// allreduce cell so the widest-node frame cut covers both ops.
func collFixture() *CollResult {
	res := &CollResult{
		Profile: "quick", Nodes: 2, Placement: "cyclic-nodes",
		Points: []CollPoint{
			{Op: "bcast", PerNode: 8, Bytes: 8, Algorithm: "flat", Batched: false,
				NsPerOp: 400000, FramesPerOp: 16, Digest: "aaaaaaaaaaaaaaaa"},
			{Op: "bcast", PerNode: 8, Bytes: 8, Algorithm: "flat", Batched: true,
				NsPerOp: 500000, FramesPerOp: 7, BatchFill: 3.5, BatchContainers: 200, BatchMessages: 700,
				Digest: "aaaaaaaaaaaaaaaa"},
			{Op: "bcast", PerNode: 8, Bytes: 8, Algorithm: "two-level", Batched: false,
				NsPerOp: 150000, FramesPerOp: 2, TwoLevelOps: 1360, Digest: "aaaaaaaaaaaaaaaa"},
			{Op: "bcast", PerNode: 8, Bytes: 8, Algorithm: "two-level", Batched: true,
				NsPerOp: 200000, FramesPerOp: 2, BatchFill: 1.5, BatchContainers: 100, BatchMessages: 150,
				TwoLevelOps: 1360, Digest: "aaaaaaaaaaaaaaaa"},
			{Op: "allreduce", PerNode: 8, Bytes: 8, Algorithm: "flat", Batched: false,
				NsPerOp: 600000, FramesPerOp: 30, Digest: "bbbbbbbbbbbbbbbb"},
			{Op: "allreduce", PerNode: 8, Bytes: 8, Algorithm: "two-level", Batched: false,
				NsPerOp: 180000, FramesPerOp: 4, TwoLevelOps: 1360, Digest: "bbbbbbbbbbbbbbbb"},
		},
	}
	res.Checks = computeCollChecks(res)
	return res
}

func collAllChecks(c CollChecks) bool {
	return c.TwoLevelEngaged && c.FrameCut2x && c.BatchFillAbove2 &&
		c.BitwiseIdentical && c.CleanWire && c.NoLeakedBuffers
}

func TestCollChecksAndJSONRoundTrip(t *testing.T) {
	res := collFixture()
	if !collAllChecks(res.Checks) {
		t.Fatalf("fixture checks = %+v, want all true", res.Checks)
	}

	var buf bytes.Buffer
	if err := WriteCollJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatalf("round trip lost points: %d/%d", len(back.Points), len(res.Points))
	}
	if back.Checks != res.Checks {
		t.Fatalf("round trip checks = %+v, want %+v", back.Checks, res.Checks)
	}
}

func TestCollChecksFlagFailures(t *testing.T) {
	res := collFixture()
	res.Points[0].FramesPerOp = 3 // flat bcast now within 2x of two-level
	if ch := computeCollChecks(res); ch.FrameCut2x {
		t.Error("FrameCut2x true with flat frames < 2x two-level")
	}

	res = collFixture()
	res.Points[2].Digest = "cccccccccccccccc" // one ablation diverges
	if ch := computeCollChecks(res); ch.BitwiseIdentical {
		t.Error("BitwiseIdentical true despite digest divergence")
	}

	res = collFixture()
	res.Points[2].TwoLevelOps = 0 // selected but never engaged
	if ch := computeCollChecks(res); ch.TwoLevelEngaged {
		t.Error("TwoLevelEngaged true despite zero two-level ops")
	}
	res = collFixture()
	res.Points[0].TwoLevelOps = 5 // flat run took the two-level path
	if ch := computeCollChecks(res); ch.TwoLevelEngaged {
		t.Error("TwoLevelEngaged true despite flat-point contamination")
	}

	res = collFixture()
	res.Points[1].BatchContainers = 700
	res.Points[1].BatchMessages = 700 // fill collapses to 1
	res.Points[3].BatchContainers = 0
	res.Points[3].BatchMessages = 0
	if ch := computeCollChecks(res); ch.BatchFillAbove2 {
		t.Error("BatchFillAbove2 true with aggregate fill of 1")
	}

	res = collFixture()
	res.Points[4].Reconnects = 1
	res.Points[5].Outstanding = 2
	ch := computeCollChecks(res)
	if ch.CleanWire {
		t.Error("CleanWire true despite a reconnect")
	}
	if ch.NoLeakedBuffers {
		t.Error("NoLeakedBuffers true despite outstanding buffers")
	}
}

func TestCompareCollFlagsRegressions(t *testing.T) {
	base := collFixture()
	var out bytes.Buffer
	if err := CompareColl(&out, base, collFixture()); err != nil {
		t.Fatalf("identical results compared unequal: %v", err)
	}
	if !strings.Contains(out.String(), "all baseline checks still hold") {
		t.Errorf("missing pass line in:\n%s", out.String())
	}

	bad := collFixture()
	bad.Points[2].Digest = "ffffffffffffffff"
	bad.Checks = computeCollChecks(bad)
	out.Reset()
	err := CompareColl(&out, base, bad)
	if err == nil || !strings.Contains(err.Error(), "bitwise_identical") {
		t.Fatalf("regressed compare error = %v, want bitwise_identical failure", err)
	}
}

func TestCollBaselineSnapshotParses(t *testing.T) {
	f, err := os.Open("testdata/BENCH_coll_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ReadCollJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if !collAllChecks(base.Checks) {
		t.Fatalf("committed baseline checks = %+v, want all true", base.Checks)
	}
	if got := computeCollChecks(base); got != base.Checks {
		t.Fatalf("recomputed checks %+v disagree with stored %+v", got, base.Checks)
	}
}

func TestWriteCollCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCollCSV(&buf, collFixture()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"op,ranks_per_node,bytes,algorithm,batched",
		"bcast,8,8,two-level,false",
		"allreduce,8,8,flat,false",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

// TestRunCollQuickSmoke measures one cell end to end under flat and
// two-level, batched and not: digests must agree across all four
// ablations, two-level must engage and cut frames, and batching must
// coalesce on the flat run.
func TestRunCollQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs loopback TCP world pairs")
	}
	const perNode, nbytes, iters = 4, 8, 60
	flat, err := runCollPoint("bcast", perNode, nbytes, iters, mpi.CollChannels, false)
	if err != nil {
		t.Fatal(err)
	}
	two, err := runCollPoint("bcast", perNode, nbytes, iters, mpi.CollTwoLevel, false)
	if err != nil {
		t.Fatal(err)
	}
	flatB, err := runCollPoint("bcast", perNode, nbytes, iters, mpi.CollChannels, true)
	if err != nil {
		t.Fatal(err)
	}
	twoB, err := runCollPoint("bcast", perNode, nbytes, iters, mpi.CollTwoLevel, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range []CollPoint{two, flatB, twoB} {
		if pt.Digest != flat.Digest {
			t.Errorf("digest diverged: %+v vs flat %q", pt, flat.Digest)
		}
	}
	if two.TwoLevelOps == 0 || flat.TwoLevelOps != 0 {
		t.Errorf("two-level selection: flat %d, two-level %d ops", flat.TwoLevelOps, two.TwoLevelOps)
	}
	if two.FramesPerOp >= flat.FramesPerOp {
		t.Errorf("two-level frames/op %.2f not below flat %.2f", two.FramesPerOp, flat.FramesPerOp)
	}
	if flatB.BatchContainers == 0 {
		t.Error("batched flat run sent no Batch containers")
	}
	if flat.Outstanding != 0 || two.Outstanding != 0 {
		t.Errorf("pooled buffers leaked: flat %d two-level %d", flat.Outstanding, two.Outstanding)
	}
}
