package bench

import (
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hls/internal/mpi"
	"hls/internal/topology"
	"hls/internal/wire"
)

// The -exp halo experiment drives the derived-datatype layer with the
// workload it was built for: a 3D stencil halo exchange. Eight ranks own
// a 2x2x2 cube decomposition; each rank holds an (N+2H)^3 float64 block
// (N interior, halo width H) and per iteration trades boundary slabs
// with up to 26 neighbors through TypeSubarray selections — faces, edges
// and corners, all strided, none contiguous.
//
// Two ablations per shape, on two deployments:
//
//   - zerocopy: the default datapath. Same-process pairs move
//     strided-to-strided with no intermediate packed buffer (pack
//     elision); cross-node pairs stream packed segments down the wire
//     without ever materializing the full slab.
//   - packed: Config.ForcePack — every typed transfer packs into a
//     pooled staging buffer first, the classic MPI implementation the
//     paper's shared address space makes unnecessary.
//
//   - inproc: all 8 ranks in one World (every exchange can elide).
//   - wire: the cube split across two Worlds joined by loopback TCP
//     (z-plane cut: intra-plane neighbors elide, cross-plane slabs take
//     the typed rendezvous streaming path).
//
// The digest of every rank's block after a fixed relaxation phase must
// be bitwise identical across all four cells — the ablations may only
// change how bytes move, never which bytes. The JSON snapshot
// (BENCH_halo.json) carries the acceptance booleans CI tracks against
// the committed baseline.

// haloRanks is the fixed 2x2x2 decomposition.
const (
	haloPerDim = 2
	haloRanks  = haloPerDim * haloPerDim * haloPerDim
	// haloRelaxIters is the fixed number of exchange+relaxation sweeps
	// that produce the digest, identical across modes and profiles.
	haloRelaxIters = 4
	// haloTimedPasses repeats the timed loop; NsPerOp is the fastest
	// pass, so a transient stall can't fake a pack/elide speed ratio.
	haloTimedPasses = 3
)

// HaloPoint is one measured cell of the sweep.
type HaloPoint struct {
	Mode     string `json:"mode"`     // inproc | wire
	Ablation string `json:"ablation"` // zerocopy | packed
	N        int    `json:"n"`        // interior cells per dimension
	Halo     int    `json:"halo"`     // halo width H
	// BytesPerIter is the payload all 8 ranks exchange per iteration.
	BytesPerIter int     `json:"bytes_per_iter"`
	NsPerOp      float64 `json:"ns_per_op"`
	MBPerS       float64 `json:"mb_per_s"`
	AllocsPerOp  float64 `json:"allocs_per_op"` // process-wide, all ranks
	// PackElisions counts typed transfers that skipped the staging
	// buffer (summed over all worlds of the run).
	PackElisions uint64 `json:"pack_elisions"`
	// Digest fingerprints every rank's block after the relaxation phase.
	Digest string `json:"digest"`
	// Wire-path counters from the node-0 transport (zero on inproc runs).
	FramesSent uint64 `json:"frames_sent,omitempty"`
	Reconnects uint64 `json:"reconnects,omitempty"`
	// Outstanding pooled eager buffers after the run (must be zero).
	Outstanding int64 `json:"pool_outstanding"`
}

// HaloChecks are the experiment's acceptance criteria.
type HaloChecks struct {
	// ZeroCopySpeedup: at the largest shape, the in-process zero-copy
	// exchange beats the forced-pack ablation by at least 1.5x.
	ZeroCopySpeedup bool `json:"zero_copy_speedup"`
	// ZeroAllocsSteadyState: the in-process zero-copy exchange loop
	// allocates less than one object per rank per iteration — across the
	// 56 messages of a full 26-direction exchange (steady state is zero
	// per message; the budget absorbs the bracketing barriers, the
	// metrics registry and stray runtime work).
	ZeroAllocsSteadyState bool `json:"zero_allocs_steady_state"`
	// BitwiseIdentical: for every shape, all four mode x ablation cells
	// produced the same digest.
	BitwiseIdentical bool `json:"bitwise_identical"`
	// ElisionEngaged: every zero-copy cell recorded pack elisions and no
	// forced-pack cell recorded any.
	ElisionEngaged bool `json:"elision_engaged"`
	// CleanWire: every wire cell moved frames and finished without a
	// single reconnect.
	CleanWire bool `json:"clean_wire"`
	// NoLeakedBuffers: every cell ends with zero pooled buffers
	// outstanding, on every world of the run.
	NoLeakedBuffers bool `json:"no_leaked_buffers"`
}

// HaloResult is the full -exp halo output.
type HaloResult struct {
	Profile string      `json:"profile"`
	Points  []HaloPoint `json:"points"`
	Checks  HaloChecks  `json:"checks"`
}

// haloDir is one of the 26 exchange directions with its committed
// send/receive selections, shared read-only by every rank.
type haloDir struct {
	d     [3]int
	tag   int
	elems int
	send  *mpi.Datatype // boundary slab of the interior, toward d
	recv  *mpi.Datatype // ghost slab on the -d side
}

// haloDirs builds the 26 directions for an interior of n cells per
// dimension with halo width h. Committed once; the measured loop only
// reuses them.
func haloDirs(n, h int) []haloDir {
	m := n + 2*h
	sizes := [3]int{m, m, m}
	var dirs []haloDir
	tag := 0
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				d := [3]int{dx, dy, dz}
				var sub, sstart, rstart [3]int
				elems := 1
				for i := 0; i < 3; i++ {
					switch d[i] {
					case 0:
						sub[i], sstart[i], rstart[i] = n, h, h
					case 1:
						// Send the high interior slab; the matching ghost
						// sits on the receiver's low side.
						sub[i], sstart[i], rstart[i] = h, n, 0
					case -1:
						sub[i], sstart[i], rstart[i] = h, h, h+n
					}
					elems *= sub[i]
				}
				dirs = append(dirs, haloDir{
					d: d, tag: tag, elems: elems,
					send: mpi.TypeSubarray(sizes[:], sub[:], sstart[:]).Commit(),
					recv: mpi.TypeSubarray(sizes[:], sub[:], rstart[:]).Commit(),
				})
				tag++
			}
		}
	}
	return dirs
}

// haloCoord maps a world rank to its cube coordinate and back. The z
// coordinate is the slowest axis, so the wire deployment's node split
// (ranks 0-3 vs 4-7) cuts the cube along the z=0/z=1 plane.
func haloCoord(rank int) [3]int {
	return [3]int{rank % haloPerDim, rank / haloPerDim % haloPerDim, rank / (haloPerDim * haloPerDim)}
}

func haloRank(c [3]int) (int, bool) {
	for _, v := range c {
		if v < 0 || v >= haloPerDim {
			return 0, false
		}
	}
	return (c[2]*haloPerDim+c[1])*haloPerDim + c[0], true
}

// haloStep is one rank's precomputed move for one direction.
type haloStep struct {
	sendTo, recvFrom int // peer world ranks, -1 when absent
	tag              int
	send, recv       *mpi.Datatype
}

// haloPlan precomputes a rank's per-iteration exchange: for direction d
// it sends its d-side boundary slab to the neighbor at +d and receives
// the -d neighbor's slab into its -d ghost region — the classic shift,
// deadlock-free with blocking sendrecv on an open (non-periodic) cube.
func haloPlan(rank int, dirs []haloDir) []haloStep {
	c := haloCoord(rank)
	var plan []haloStep
	for _, dir := range dirs {
		st := haloStep{sendTo: -1, recvFrom: -1, tag: dir.tag, send: dir.send, recv: dir.recv}
		if r, ok := haloRank([3]int{c[0] + dir.d[0], c[1] + dir.d[1], c[2] + dir.d[2]}); ok {
			st.sendTo = r
		}
		if r, ok := haloRank([3]int{c[0] - dir.d[0], c[1] - dir.d[1], c[2] - dir.d[2]}); ok {
			st.recvFrom = r
		}
		if st.sendTo >= 0 || st.recvFrom >= 0 {
			plan = append(plan, st)
		}
	}
	return plan
}

// haloExchange runs one full 26-direction exchange for one rank.
func haloExchange(tk *mpi.Task, grid []float64, plan []haloStep) {
	for _, st := range plan {
		switch {
		case st.sendTo >= 0 && st.recvFrom >= 0:
			mpi.SendrecvTyped(tk, nil, grid, st.send, st.sendTo, st.tag, grid, st.recv, st.recvFrom, st.tag)
		case st.sendTo >= 0:
			mpi.SendTyped(tk, nil, grid, st.send, st.sendTo, st.tag)
		default:
			mpi.RecvTyped(tk, nil, grid, st.recv, st.recvFrom, st.tag)
		}
	}
}

// haloRelax runs one in-place sweep over the interior, folding in the
// freshly exchanged ghost values. Deterministic traversal: the digest it
// produces must be bitwise identical across every datapath ablation.
func haloRelax(grid []float64, n, h int) {
	m := n + 2*h
	idx := func(x, y, z int) int { return (z*m+y)*m + x }
	for z := h; z < h+n; z++ {
		for y := h; y < h+n; y++ {
			for x := h; x < h+n; x++ {
				i := idx(x, y, z)
				grid[i] = 0.5*grid[i] + (grid[i-1]+grid[i+1]+
					grid[i-m]+grid[i+m]+
					grid[i-m*m]+grid[i+m*m])/12
			}
		}
	}
}

// haloDigest fingerprints one rank's full block, bit-exact.
func haloDigest(grid []float64) uint64 {
	hs := fnv.New64a()
	var b [8]byte
	for _, v := range grid {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		hs.Write(b[:])
	}
	return hs.Sum64()
}

// haloBody is the per-rank workload: deterministic fill, the digest
// phase (exchange+relax x haloRelaxIters), then the timed pure-exchange
// loop. Returns this rank's digest; rank 0 reports the timing.
func haloBody(tk *mpi.Task, n, h, iters int, dirs []haloDir, digests []uint64, perOp, allocs *float64) error {
	m := n + 2*h
	grid := make([]float64, m*m*m)
	me := tk.Rank()
	for i := range grid {
		grid[i] = float64(me+1) * float64(i%97+1)
	}
	plan := haloPlan(me, dirs)

	for it := 0; it < haloRelaxIters; it++ {
		haloExchange(tk, grid, plan)
		haloRelax(grid, n, h)
	}
	digests[me] = haloDigest(grid)

	// Timed phase: pure exchanges (the grid no longer changes, so every
	// iteration moves identical bytes). Warm the pools first.
	for i := 0; i < 3; i++ {
		haloExchange(tk, grid, plan)
	}
	mpi.Barrier(tk, nil)
	var ms0, ms1 runtime.MemStats
	if me == 0 {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
	}
	// Best-of-N passes: a single averaged pass is at the mercy of one
	// scheduler stall across 8 goroutine ranks, and the speedup checks
	// divide two such samples. The minimum is the least-perturbed run.
	best := math.Inf(1)
	for pass := 0; pass < haloTimedPasses; pass++ {
		mpi.Barrier(tk, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			haloExchange(tk, grid, plan)
		}
		mpi.Barrier(tk, nil)
		if me == 0 {
			if v := float64(time.Since(start).Nanoseconds()) / float64(iters); v < best {
				best = v
			}
		}
	}
	if me == 0 {
		*perOp = best
		runtime.ReadMemStats(&ms1)
		*allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(haloTimedPasses*iters)
	}
	return nil
}

// haloBytesPerIter sums the payload all ranks move in one exchange.
func haloBytesPerIter(dirs []haloDir) int {
	total := 0
	for rank := 0; rank < haloRanks; rank++ {
		for _, st := range haloPlan(rank, dirs) {
			if st.sendTo >= 0 {
				// elems of the matching direction; find it by tag.
				total += dirs[st.tag].elems * 8
			}
		}
	}
	return total
}

// runHaloPoint measures one cell of the sweep.
func runHaloPoint(mode, ablation string, n, h, iters int) (HaloPoint, error) {
	dirs := haloDirs(n, h)
	digests := make([]uint64, haloRanks)
	var perOp, allocs float64
	forcePack := ablation == "packed"

	pt := HaloPoint{
		Mode: mode, Ablation: ablation, N: n, Halo: h,
		BytesPerIter: haloBytesPerIter(dirs),
	}

	var worlds []*mpi.World
	switch mode {
	case "inproc":
		w, err := mpi.NewWorld(mpi.Config{
			NumTasks: haloRanks, ForcePack: forcePack,
			Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
		})
		if err != nil {
			return pt, err
		}
		worlds = []*mpi.World{w}
	case "wire":
		m, err := topology.New(topology.Spec{
			Name: "halobench", Nodes: 2, SocketsPerNode: 1,
			CoresPerSocket: haloRanks / 2, ThreadsPerCore: 1,
		})
		if err != nil {
			return pt, err
		}
		ln0, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		ln1, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			ln0.Close()
			return pt, err
		}
		addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
		worlds = make([]*mpi.World, 2)
		for self, ln := range []net.Listener{ln0, ln1} {
			tr, err := wire.NewTCP(wire.Config{Addrs: addrs, Self: self, WorldKey: 7}, ln)
			if err != nil {
				return pt, err
			}
			worlds[self], err = mpi.NewWorld(mpi.Config{
				NumTasks: haloRanks, ForcePack: forcePack, Machine: m,
				Wire:    &mpi.WireConfig{Transport: tr},
				Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
			})
			if err != nil {
				return pt, err
			}
		}
	default:
		return pt, fmt.Errorf("unknown halo mode %q", mode)
	}

	errs := make([]error, len(worlds))
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			errs[i] = w.Run(func(tk *mpi.Task) error {
				return haloBody(tk, n, h, iters, dirs, digests, &perOp, &allocs)
			})
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}

	pt.NsPerOp, pt.AllocsPerOp = perOp, allocs
	if perOp > 0 {
		pt.MBPerS = float64(pt.BytesPerIter) * 1000 / perOp
	}
	hs := fnv.New64a()
	var b [8]byte
	for _, d := range digests {
		binary.LittleEndian.PutUint64(b[:], d)
		hs.Write(b[:])
	}
	pt.Digest = fmt.Sprintf("%016x", hs.Sum64())
	for _, w := range worlds {
		st := w.Stats()
		pt.PackElisions += uint64(st.PackElisions)
		pt.Outstanding += st.EagerPoolOutstanding
	}
	if st, ok := worlds[0].WireStats(); ok {
		pt.FramesSent = st.FramesSent
		pt.Reconnects = st.Reconnects
	}
	return pt, nil
}

// RunHalo runs the halo-exchange experiment. haloWidth pins the sweep to
// one halo width; 0 sweeps the profile's ladder.
func RunHalo(p Profile, haloWidth int) (*HaloResult, error) {
	type shape struct{ n, h, iters int }
	var shapes []shape
	if p == Full {
		shapes = []shape{{16, 1, 400}, {32, 2, 120}, {48, 4, 40}}
	} else {
		// The largest quick shape must be big enough that the staging
		// copies dominate the per-message overhead, or the speedup check
		// would measure matching latency instead of the datapath.
		shapes = []shape{{8, 1, 60}, {16, 2, 30}, {32, 2, 30}}
	}
	if haloWidth > 0 {
		for i := range shapes {
			shapes[i].h = haloWidth
		}
	}
	res := &HaloResult{Profile: p.String()}
	for _, sh := range shapes {
		for _, mode := range []string{"inproc", "wire"} {
			for _, ablation := range []string{"zerocopy", "packed"} {
				pt, err := runHaloPoint(mode, ablation, sh.n, sh.h, sh.iters)
				if err != nil {
					return nil, fmt.Errorf("halo %s/%s n=%d h=%d: %w", mode, ablation, sh.n, sh.h, err)
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	res.Checks = computeHaloChecks(res)
	// The speedup check divides two timings taken tens of seconds apart;
	// on a loaded machine that decorrelates them enough to invert the
	// ratio even with best-of-N passes. When it is the only casualty,
	// re-measure just the largest-shape pair back to back — a genuine
	// datapath regression fails every retry, a scheduler stall doesn't.
	last := shapes[len(shapes)-1]
	for retry := 0; retry < 2 && !res.Checks.ZeroCopySpeedup; retry++ {
		for i := range res.Points {
			pt := &res.Points[i]
			if pt.Mode != "inproc" || pt.N != last.n || pt.Halo != last.h {
				continue
			}
			fresh, err := runHaloPoint(pt.Mode, pt.Ablation, pt.N, pt.Halo, last.iters)
			if err != nil {
				return nil, fmt.Errorf("halo retry %s/%s n=%d h=%d: %w", pt.Mode, pt.Ablation, pt.N, pt.Halo, err)
			}
			*pt = fresh
		}
		res.Checks = computeHaloChecks(res)
	}
	return res, nil
}

func computeHaloChecks(res *HaloResult) HaloChecks {
	ch := HaloChecks{
		BitwiseIdentical: true, ElisionEngaged: true,
		CleanWire: true, NoLeakedBuffers: true,
		ZeroAllocsSteadyState: true,
	}
	digests := map[[2]int]string{}
	var largestN, largestH int
	var zcLargest, packedLargest float64
	for _, pt := range res.Points {
		if pt.Outstanding != 0 {
			ch.NoLeakedBuffers = false
		}
		if pt.Mode == "wire" && (pt.FramesSent == 0 || pt.Reconnects != 0) {
			ch.CleanWire = false
		}
		key := [2]int{pt.N, pt.Halo}
		if prev, ok := digests[key]; !ok {
			digests[key] = pt.Digest
		} else if prev != pt.Digest {
			ch.BitwiseIdentical = false
		}
		switch pt.Ablation {
		case "zerocopy":
			if pt.PackElisions == 0 {
				ch.ElisionEngaged = false
			}
		case "packed":
			if pt.PackElisions != 0 {
				ch.ElisionEngaged = false
			}
		}
		if pt.Mode == "inproc" {
			if pt.Ablation == "zerocopy" && pt.AllocsPerOp >= haloRanks {
				ch.ZeroAllocsSteadyState = false
			}
			if pt.N > largestN || (pt.N == largestN && pt.Halo > largestH) {
				largestN, largestH = pt.N, pt.Halo
			}
		}
	}
	for _, pt := range res.Points {
		if pt.Mode != "inproc" || pt.N != largestN || pt.Halo != largestH || pt.NsPerOp <= 0 {
			continue
		}
		switch pt.Ablation {
		case "zerocopy":
			zcLargest = pt.NsPerOp
		case "packed":
			packedLargest = pt.NsPerOp
		}
	}
	ch.ZeroCopySpeedup = zcLargest > 0 && packedLargest >= 1.5*zcLargest
	return ch
}

// PrintHalo renders the measurements and the acceptance checks.
func PrintHalo(w io.Writer, res *HaloResult) {
	fprintf(w, "3D halo exchange: 2x2x2 cube, 26 neighbors, TypeSubarray slabs\n")
	fprintf(w, "%-7s %-9s %4s %3s %10s %10s %9s %10s %10s %8s\n",
		"mode", "ablation", "n", "h", "bytes/it", "ns/op", "MB/s", "allocs/op", "elisions", "frames")
	for _, pt := range res.Points {
		fprintf(w, "%-7s %-9s %4d %3d %10d %10.0f %9.1f %10.2f %10d %8d\n",
			pt.Mode, pt.Ablation, pt.N, pt.Halo, pt.BytesPerIter,
			pt.NsPerOp, pt.MBPerS, pt.AllocsPerOp, pt.PackElisions, pt.FramesSent)
	}
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"zero-copy beats forced pack by 1.5x at the largest shape", res.Checks.ZeroCopySpeedup},
		{"zero-copy exchange loop allocation-free", res.Checks.ZeroAllocsSteadyState},
		{"digests bitwise identical across all datapaths", res.Checks.BitwiseIdentical},
		{"pack elision engaged exactly on the zero-copy cells", res.Checks.ElisionEngaged},
		{"clean wire runs: frames flowed, zero reconnects", res.Checks.CleanWire},
		{"no pooled buffers leaked in any world", res.Checks.NoLeakedBuffers},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

// WriteHaloCSV writes the measurements as one flat table.
func WriteHaloCSV(w io.Writer, res *HaloResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"mode", "ablation", "n", "halo", "bytes_per_iter",
		"ns_per_op", "mb_per_s", "allocs_per_op", "pack_elisions",
		"digest", "frames_sent", "reconnects", "pool_outstanding",
	}); err != nil {
		return err
	}
	for _, pt := range res.Points {
		if err := cw.Write([]string{
			pt.Mode, pt.Ablation, strconv.Itoa(pt.N), strconv.Itoa(pt.Halo),
			strconv.Itoa(pt.BytesPerIter),
			fmt.Sprintf("%.1f", pt.NsPerOp), fmt.Sprintf("%.1f", pt.MBPerS),
			fmt.Sprintf("%.2f", pt.AllocsPerOp),
			strconv.FormatUint(pt.PackElisions, 10), pt.Digest,
			strconv.FormatUint(pt.FramesSent, 10),
			strconv.FormatUint(pt.Reconnects, 10),
			strconv.FormatInt(pt.Outstanding, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHaloJSON writes the full result snapshot (BENCH_halo.json).
func WriteHaloJSON(w io.Writer, res *HaloResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadHaloJSON parses a snapshot written by WriteHaloJSON.
func ReadHaloJSON(r io.Reader) (*HaloResult, error) {
	var res HaloResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareHalo prints an old/new comparison and fails on check
// regressions, following the other experiments' baseline contract.
func CompareHalo(w io.Writer, base, cur *HaloResult) error {
	delta := func(old, new float64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	fprintf(w, "Halo comparison vs baseline (%s profile)\n", base.Profile)
	for _, b := range base.Points {
		for _, c := range cur.Points {
			if b.Mode == c.Mode && b.Ablation == c.Ablation && b.N == c.N && b.Halo == c.Halo {
				fprintf(w, "  %-7s %-9s n=%-3d h=%-2d %10.0f -> %10.0f ns/op  %s\n",
					b.Mode, b.Ablation, b.N, b.Halo,
					b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp))
			}
		}
	}
	return compareChecks(w, "halo", base.Checks, cur.Checks)
}
