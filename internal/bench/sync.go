package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/topology"
)

// The -exp sync experiment measures the PR's two synchronization layers
// head to head:
//
//   - directive barriers: the mutex+condvar baseline vs the flat padded
//     spin barrier vs the multi-level (cache-hierarchy) spin tree, across
//     task counts and scope levels;
//   - collectives: the channel (point-to-point binomial/ring) algorithms
//     vs the shared-address-space zero-copy fast path, across operations
//     and buffer sizes, with the process-wide allocation rate and message
//     count alongside the latency.
//
// The JSON snapshot (BENCH_sync.json) carries Checks, the acceptance
// booleans CI tracks against the committed baseline.

// SyncBarrierPoint is one barrier measurement.
type SyncBarrierPoint struct {
	Impl    string  `json:"impl"` // mutex | flat | tree
	Tasks   int     `json:"tasks"`
	Scope   string  `json:"scope"` // llc | numa | node
	NsPerOp float64 `json:"ns_per_op"`
}

// SyncCollPoint is one collective measurement.
type SyncCollPoint struct {
	Op          string  `json:"op"`
	Mode        string  `json:"mode"` // channels | shared
	Tasks       int     `json:"tasks"`
	Elems       int     `json:"elems"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // process-wide, all ranks
	Messages    int64   `json:"messages"`      // p2p messages the whole run sent
}

// SyncChecks are the experiment's acceptance criteria.
type SyncChecks struct {
	// TreeBeatsMutex16/32: the hierarchical spin-park barrier is faster
	// than the mutex baseline at node scope for >= 16 tasks.
	TreeBeatsMutex16 bool `json:"tree_beats_mutex_16"`
	TreeBeatsMutex32 bool `json:"tree_beats_mutex_32"`
	// SharedBeatsChannelsLarge: the zero-copy fast path is faster than
	// the channel algorithms for large-buffer Bcast and Allreduce.
	SharedBeatsChannelsLarge bool `json:"shared_beats_channels_large"`
	// SharedAllocFree: small shared-path collectives allocate less than
	// one object per operation process-wide (steady state is zero; the
	// budget absorbs stray runtime allocations).
	SharedAllocFree bool `json:"shared_alloc_free"`
	// SharedNoMessages: the fast path sends no point-to-point messages
	// for the timed collectives.
	SharedNoMessages bool `json:"shared_no_messages"`
}

// SyncResult is the full -exp sync output.
type SyncResult struct {
	Profile     string             `json:"profile"`
	Barriers    []SyncBarrierPoint `json:"barriers"`
	Collectives []SyncCollPoint    `json:"collectives"`
	Checks      SyncChecks         `json:"checks"`
}

func syncScope(name string) topology.Scope {
	switch name {
	case "llc":
		return topology.Cache(3)
	case "numa":
		return topology.NUMA
	default:
		return topology.Node
	}
}

func syncBarrierOpts(impl string) []hls.Option {
	switch impl {
	case "mutex":
		return []hls.Option{hls.WithMutexBarriers()}
	case "flat":
		return []hls.Option{hls.WithFlatBarriers()}
	default:
		return nil
	}
}

// syncBarrier times iters directive barriers at the given scope.
func syncBarrier(impl string, tasks int, scope string, iters int) (SyncBarrierPoint, error) {
	machine := topology.NehalemEX4()
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: tasks, Machine: machine, Pin: topology.PinCorePerTask,
		Timeout: 5 * time.Minute,
	})
	if err != nil {
		return SyncBarrierPoint{}, err
	}
	reg := hls.New(w, syncBarrierOpts(impl)...)
	s := syncScope(scope)
	var perOp float64
	err = w.Run(func(tk *mpi.Task) error {
		reg.BarrierScope(tk, s) // build the instance's barrier
		mpi.Barrier(tk, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			reg.BarrierScope(tk, s)
		}
		if tk.Rank() == 0 {
			perOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
		}
		return nil
	})
	return SyncBarrierPoint{Impl: impl, Tasks: tasks, Scope: scope, NsPerOp: perOp}, err
}

// syncCollective times iters collectives of the given op/size under the
// given mode, along with the process-wide allocation rate and the p2p
// message count of the whole run.
func syncCollective(op string, tasks, elems, iters int, mode mpi.CollectiveMode) (SyncCollPoint, error) {
	machine := topology.NehalemEX4()
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: tasks, Machine: machine, Pin: topology.PinCorePerTask,
		Timeout: 5 * time.Minute, Collectives: mode,
	})
	if err != nil {
		return SyncCollPoint{}, err
	}
	modeName := "shared"
	if mode == mpi.CollChannels {
		modeName = "channels"
	}
	var perOp, allocs float64
	var ms0, ms1 runtime.MemStats
	err = w.Run(func(tk *mpi.Task) error {
		send := make([]float64, elems)
		recv := make([]float64, elems)
		gathered := make([]float64, elems*tasks)
		step := func() {
			switch op {
			case "barrier":
				mpi.Barrier(tk, nil)
			case "bcast":
				mpi.Bcast(tk, nil, send, 0)
			case "allreduce":
				mpi.Allreduce(tk, nil, send, recv, mpi.OpSum)
			case "allgather":
				mpi.Allgather(tk, nil, send, gathered)
			}
		}
		for i := 0; i < 3; i++ {
			step()
		}
		mpi.Barrier(tk, nil)
		if tk.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
		}
		mpi.Barrier(tk, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			step()
		}
		mpi.Barrier(tk, nil)
		if tk.Rank() == 0 {
			perOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
			runtime.ReadMemStats(&ms1)
			allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
		}
		return nil
	})
	return SyncCollPoint{
		Op: op, Mode: modeName, Tasks: tasks, Elems: elems,
		NsPerOp: perOp, AllocsPerOp: allocs,
		Messages: w.Stats().Messages,
	}, err
}

// RunSync runs the synchronization experiment.
func RunSync(p Profile) (*SyncResult, error) {
	barrierIters, smallIters, largeIters := 1200, 1200, 60
	if p == Full {
		barrierIters, smallIters, largeIters = 8000, 8000, 300
	}
	res := &SyncResult{Profile: p.String()}

	// Barriers: impl x task count at node scope, plus the narrower scope
	// levels at full width (their instances synchronize in parallel).
	for _, impl := range []string{"mutex", "flat", "tree"} {
		for _, tasks := range []int{2, 8, 16, 32} {
			pt, err := syncBarrier(impl, tasks, "node", barrierIters)
			if err != nil {
				return nil, fmt.Errorf("barrier %s/%d: %w", impl, tasks, err)
			}
			res.Barriers = append(res.Barriers, pt)
		}
		for _, scope := range []string{"llc", "numa"} {
			pt, err := syncBarrier(impl, 32, scope, barrierIters)
			if err != nil {
				return nil, fmt.Errorf("barrier %s/%s: %w", impl, scope, err)
			}
			res.Barriers = append(res.Barriers, pt)
		}
	}

	// Collectives: op x size x mode at full width. Allgather's large size
	// is smaller: its receive buffer is tasks times the send buffer.
	type cfg struct {
		op           string
		small, large int
	}
	for _, c := range []cfg{
		{"barrier", 0, -1},
		{"bcast", 8, 65536},
		{"allreduce", 8, 65536},
		{"allgather", 8, 4096},
	} {
		sizes := []int{c.small}
		if c.large > 0 {
			sizes = append(sizes, c.large)
		}
		for _, elems := range sizes {
			iters := smallIters
			if elems > 1024 {
				iters = largeIters
			}
			for _, mode := range []mpi.CollectiveMode{mpi.CollChannels, mpi.CollShared} {
				pt, err := syncCollective(c.op, 32, elems, iters, mode)
				if err != nil {
					return nil, fmt.Errorf("collective %s/%d: %w", c.op, elems, err)
				}
				res.Collectives = append(res.Collectives, pt)
			}
		}
	}

	res.Checks = computeSyncChecks(res)
	return res, nil
}

func computeSyncChecks(res *SyncResult) SyncChecks {
	barrier := func(impl string, tasks int) float64 {
		for _, b := range res.Barriers {
			if b.Impl == impl && b.Tasks == tasks && b.Scope == "node" {
				return b.NsPerOp
			}
		}
		return 0
	}
	coll := func(op, mode string, large bool) (SyncCollPoint, bool) {
		for _, c := range res.Collectives {
			if c.Op == op && c.Mode == mode && (c.Elems > 1024) == large {
				return c, true
			}
		}
		return SyncCollPoint{}, false
	}
	var ch SyncChecks
	if tree, mutex := barrier("tree", 16), barrier("mutex", 16); tree > 0 && tree < mutex {
		ch.TreeBeatsMutex16 = true
	}
	if tree, mutex := barrier("tree", 32), barrier("mutex", 32); tree > 0 && tree < mutex {
		ch.TreeBeatsMutex32 = true
	}
	bcS, ok1 := coll("bcast", "shared", true)
	bcC, ok2 := coll("bcast", "channels", true)
	arS, ok3 := coll("allreduce", "shared", true)
	arC, ok4 := coll("allreduce", "channels", true)
	if ok1 && ok2 && ok3 && ok4 && bcS.NsPerOp < bcC.NsPerOp && arS.NsPerOp < arC.NsPerOp {
		ch.SharedBeatsChannelsLarge = true
	}
	ch.SharedAllocFree = true
	ch.SharedNoMessages = true
	for _, op := range []string{"barrier", "bcast", "allreduce"} {
		c, ok := coll(op, "shared", false)
		if !ok || c.AllocsPerOp >= 1 {
			ch.SharedAllocFree = false
		}
	}
	for _, c := range res.Collectives {
		// In a shared-mode world every collective (warmups and bracketing
		// barriers included) takes the fast path, so any p2p message means
		// the fast path disengaged.
		if c.Mode == "shared" && c.Messages != 0 {
			ch.SharedNoMessages = false
		}
	}
	return ch
}

// PrintSync renders the measurements and the acceptance checks.
func PrintSync(w io.Writer, res *SyncResult) {
	fprintf(w, "Directive barriers (ns/op, 4x Nehalem-EX, node scope unless noted)\n")
	fprintf(w, "%-8s %-6s %-6s %12s\n", "impl", "tasks", "scope", "ns/op")
	for _, b := range res.Barriers {
		fprintf(w, "%-8s %-6d %-6s %12.0f\n", b.Impl, b.Tasks, b.Scope, b.NsPerOp)
	}
	fprintf(w, "\nCollectives (32 tasks; allocs are process-wide per op)\n")
	fprintf(w, "%-10s %-9s %8s %12s %12s %10s\n", "op", "mode", "elems", "ns/op", "allocs/op", "messages")
	for _, c := range res.Collectives {
		fprintf(w, "%-10s %-9s %8d %12.0f %12.2f %10d\n",
			c.Op, c.Mode, c.Elems, c.NsPerOp, c.AllocsPerOp, c.Messages)
	}
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"tree barrier beats mutex at 16 tasks", res.Checks.TreeBeatsMutex16},
		{"tree barrier beats mutex at 32 tasks", res.Checks.TreeBeatsMutex32},
		{"zero-copy beats channels on large buffers", res.Checks.SharedBeatsChannelsLarge},
		{"shared fast path allocation-free (small ops)", res.Checks.SharedAllocFree},
		{"shared fast path sends no p2p messages", res.Checks.SharedNoMessages},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

// WriteSyncCSV writes the measurements as one flat table.
func WriteSyncCSV(w io.Writer, res *SyncResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "impl_or_mode", "op", "tasks", "scope", "elems",
		"ns_per_op", "allocs_per_op", "messages",
	}); err != nil {
		return err
	}
	for _, b := range res.Barriers {
		if err := cw.Write([]string{
			"barrier", b.Impl, "barrier", strconv.Itoa(b.Tasks), b.Scope, "",
			fmt.Sprintf("%.1f", b.NsPerOp), "", "",
		}); err != nil {
			return err
		}
	}
	for _, c := range res.Collectives {
		if err := cw.Write([]string{
			"collective", c.Mode, c.Op, strconv.Itoa(c.Tasks), "", strconv.Itoa(c.Elems),
			fmt.Sprintf("%.1f", c.NsPerOp), fmt.Sprintf("%.2f", c.AllocsPerOp),
			strconv.FormatInt(c.Messages, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSyncJSON writes the full result snapshot (BENCH_sync.json).
func WriteSyncJSON(w io.Writer, res *SyncResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadSyncJSON parses a snapshot written by WriteSyncJSON.
func ReadSyncJSON(r io.Reader) (*SyncResult, error) {
	var res SyncResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareSync prints a benchstat-style old/new comparison and returns an
// error if an acceptance check that held in the baseline fails now.
// Timing deltas are informational — CI runners are noisy — but check
// regressions are hard failures.
func CompareSync(w io.Writer, base, cur *SyncResult) error {
	delta := func(old, new float64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	fprintf(w, "Barrier comparison vs baseline (%s profile)\n", base.Profile)
	for _, b := range base.Barriers {
		for _, c := range cur.Barriers {
			if b.Impl == c.Impl && b.Tasks == c.Tasks && b.Scope == c.Scope {
				fprintf(w, "  %-8s %2d tasks %-5s %10.0f -> %10.0f ns/op  %s\n",
					b.Impl, b.Tasks, b.Scope, b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp))
			}
		}
	}
	fprintf(w, "Collective comparison vs baseline\n")
	for _, b := range base.Collectives {
		for _, c := range cur.Collectives {
			if b.Op == c.Op && b.Mode == c.Mode && b.Elems == c.Elems {
				fprintf(w, "  %-10s %-9s %8d %10.0f -> %10.0f ns/op  %s\n",
					b.Op, b.Mode, b.Elems, b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp))
			}
		}
	}
	return compareChecks(w, "sync", base.Checks, cur.Checks)
}
