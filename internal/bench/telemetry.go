package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"hls/internal/hls"
	"hls/internal/metrics"
	"hls/internal/mpi"
	"hls/internal/obs"
	"hls/internal/rma"
)

// Telemetry bundles one metrics registry with the three runtime
// adapters. The adapters are constructed together with the registry so
// every fixed metric family is registered — and therefore visible on
// /metrics — from the moment the endpoint comes up, not only after the
// first event of each kind.
type Telemetry struct {
	Registry *metrics.Registry
	MPI      *metrics.MPIAdapter
	HLS      *metrics.HLSAdapter
	RMA      *metrics.RMAAdapter

	// Trace is set by runners that enable the tracing plane (-exp
	// trace); its recorder-drop count surfaces in the summary and as
	// the trace_events_dropped_total counter.
	Trace        *obs.Tracer
	TraceDropped *metrics.Counter
}

// NewTelemetry builds a registry sharded for up to `shards` ranks and
// the three runtime adapters over it.
func NewTelemetry(shards int) *Telemetry {
	reg := metrics.New(shards)
	return &Telemetry{
		Registry: reg,
		MPI:      metrics.NewMPIAdapter(reg),
		HLS:      metrics.NewHLSAdapter(reg),
		RMA:      metrics.NewRMAAdapter(reg),
		TraceDropped: reg.Counter("trace_events_dropped_total",
			"trace events overwritten because a recorder ring filled up"),
	}
}

// AttachTracer publishes tr's state through this telemetry sink: the
// summary gains a trace line and the dropped counter tracks tr's
// recorder ring.
func (t *Telemetry) AttachTracer(tr *obs.Tracer) {
	t.Trace = tr
	tr.PublishDropped(t.TraceDropped)
}

// active is the harness-wide telemetry sink. The runners consult it
// when they build worlds, HLS registries and RMA windows; nil (the
// default) means instrumentation is disabled and every hook site passes
// nil interfaces down, which the runtime compiles to a single branch.
//
// It is set once, before any runner starts (by cmd/hlsbench or a test),
// and only read afterwards — the runners themselves never write it.
var active *Telemetry

// SetTelemetry installs t as the sink every subsequent runner wires
// into the worlds, registries and windows it builds. Pass nil to
// disable instrumentation (the default). Call it before runners start;
// it must not race with a running experiment.
func SetTelemetry(t *Telemetry) { active = t }

// ActiveTelemetry returns the currently installed sink, or nil.
func ActiveTelemetry() *Telemetry { return active }

// telemetryHooks returns the mpi.Hooks new worlds should install: the
// MPI adapter when telemetry is on, a true nil interface otherwise.
func telemetryHooks() mpi.Hooks {
	if active == nil {
		return nil
	}
	return active.MPI
}

// telemetryHLSOptions returns the hls.Option slice new registries
// should start from (empty when telemetry is off).
func telemetryHLSOptions() []hls.Option {
	if active == nil {
		return nil
	}
	return []hls.Option{hls.WithObserver(active.HLS)}
}

// telemetryWinOptions returns the rma.Option slice new windows should
// start from (empty when telemetry is off).
func telemetryWinOptions() []rma.Option {
	if active == nil {
		return nil
	}
	return []rma.Option{rma.WithObserver(active.RMA), rma.WithTracer(active.RMA)}
}

// histQuantile reads the q-quantile's bucket upper bound from a
// snapshot histogram; +Inf for the overflow bucket, NaN when empty.
func histQuantile(h metrics.HistogramValue, q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.Le < 0 {
				return math.Inf(1)
			}
			return float64(b.Le)
		}
	}
	return math.Inf(1)
}

// imbalance computes max/mean of the per-rank wait-time sums, over the
// ranks that participated (count > 0). 1.0 is perfectly balanced; the
// factor grows as stragglers concentrate the waiting on few ranks.
func imbalance(h metrics.HistogramValue) float64 {
	var total, maxSum int64
	ranks := 0
	for s, c := range h.PerShardCount {
		if c == 0 {
			continue
		}
		ranks++
		sum := h.PerShardSum[s]
		total += sum
		if sum > maxSum {
			maxSum = sum
		}
	}
	if ranks == 0 || total == 0 {
		return math.NaN()
	}
	return float64(maxSum) / (float64(total) / float64(ranks))
}

// fmtDur renders a nanosecond quantity compactly ("-" when undefined).
func fmtDur(ns float64) string {
	switch {
	case math.IsNaN(ns):
		return "-"
	case math.IsInf(ns, 1):
		return ">max"
	}
	return time.Duration(int64(ns)).Round(10 * time.Nanosecond).String()
}

// fmtBytes renders a byte count in the most natural unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 10<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 10<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// sumSeries totals every series of one counter/gauge family, optionally
// filtered by a label value.
func sumSeries(series []metrics.SeriesValue, name string, match ...string) int64 {
	var total int64
outer:
	for _, s := range series {
		if s.Name != name {
			continue
		}
		for i := 0; i+1 < len(match); i += 2 {
			if s.Labels[match[i]] != match[i+1] {
				continue outer
			}
		}
		total += s.Value
	}
	return total
}

// PrintTelemetry appends the per-run summary table to the harness
// output: message-layer totals, the per-directive wait/imbalance table
// (§IV-B — the spread of barrier wait across ranks IS the task
// imbalance), single outcomes, lazy-allocation accounting (§IV-A) and
// the RMA epoch costs. A nil Telemetry prints nothing.
func PrintTelemetry(w io.Writer, t *Telemetry) {
	if t == nil {
		return
	}
	if t.Trace != nil {
		t.Trace.PublishDropped(t.TraceDropped)
	}
	snap := t.Registry.Snapshot(metrics.WithPerShard())

	fprintf(w, "== Telemetry summary ==\n")
	if t.Trace != nil {
		fprintf(w, "trace: %d events held, %d dropped (ring full)\n",
			t.Trace.Recorder().Len(), sumSeries(snap.Counters, "trace_events_dropped_total"))
	}

	// MPI point-to-point and collectives.
	sends := sumSeries(snap.Counters, "mpi_sends_total")
	fprintf(w, "mpi: %d msgs (eager %d / rendezvous %d), %s; copies elided %d (%s); collective starts %d\n",
		sends,
		sumSeries(snap.Counters, "mpi_messages_protocol_total", "protocol", "eager"),
		sumSeries(snap.Counters, "mpi_messages_protocol_total", "protocol", "rendezvous"),
		fmtBytes(sumSeries(snap.Counters, "mpi_bytes_total")),
		sumSeries(snap.Counters, "mpi_copies_elided_total"),
		fmtBytes(sumSeries(snap.Counters, "mpi_copy_bytes_elided_total")),
		sumSeries(snap.Counters, "mpi_collectives_total"))
	if gets := sumSeries(snap.Counters, "mpi_eager_pool_hits_total") +
		sumSeries(snap.Counters, "mpi_eager_pool_misses_total"); gets > 0 {
		fprintf(w, "mpi eager pool: %d gets (%d hits / %d allocs), %s recycled, %d outstanding; match probes %d\n",
			gets,
			sumSeries(snap.Counters, "mpi_eager_pool_hits_total"),
			sumSeries(snap.Counters, "mpi_eager_pool_misses_total"),
			fmtBytes(sumSeries(snap.Counters, "mpi_eager_pool_recycled_bytes_total")),
			sumSeries(snap.Gauges, "mpi_eager_pool_outstanding"),
			sumSeries(snap.Counters, "mpi_match_probes_total"))
	}

	// HLS directives: one row per (kind, scope), sorted by total wait so
	// the most expensive synchronization reads first.
	var dirs []metrics.HistogramValue
	for _, h := range snap.Histograms {
		if h.Name == "hls_directive_wait_ns" && h.Count > 0 {
			dirs = append(dirs, h)
		}
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].Sum > dirs[j].Sum })
	if len(dirs) > 0 {
		fprintf(w, "hls directives (wait spread across ranks = task imbalance, §IV-B):\n")
		fprintf(w, "  %-24s %10s %12s %12s %10s\n", "kind/scope", "count", "mean wait", "p99 wait", "imbalance")
		for _, h := range dirs {
			row := h.Labels["kind"] + "/" + h.Labels["scope"]
			mean := float64(h.Sum) / float64(h.Count)
			imb := imbalance(h)
			imbStr := "-"
			if !math.IsNaN(imb) {
				imbStr = fmt.Sprintf("%.2fx", imb)
			}
			fprintf(w, "  %-24s %10d %12s %12s %10s\n", row, h.Count,
				fmtDur(mean), fmtDur(histQuantile(h, 0.99)), imbStr)
		}
	}
	won := sumSeries(snap.Counters, "hls_single_outcomes_total", "outcome", "won")
	lost := sumSeries(snap.Counters, "hls_single_outcomes_total", "outcome", "lost")
	if won+lost > 0 {
		fprintf(w, "hls singles: %d won / %d lost\n", won, lost)
	}
	if allocs := sumSeries(snap.Counters, "hls_instance_allocs_total"); allocs > 0 {
		fprintf(w, "hls lazy allocations: %d instances, %s shared, %s duplication avoided\n",
			allocs,
			fmtBytes(sumSeries(snap.Gauges, "hls_shared_bytes")),
			fmtBytes(sumSeries(snap.Gauges, "hls_duplicate_bytes_avoided")))
	}

	// RMA one-sided traffic and epoch costs.
	if ops := sumSeries(snap.Counters, "rma_ops_total"); ops > 0 {
		fprintf(w, "rma ops: put %d (%s) / get %d (%s) / accumulate %d (%s)\n",
			sumSeries(snap.Counters, "rma_ops_total", "op", "put"),
			fmtBytes(sumSeries(snap.Counters, "rma_op_bytes_total", "op", "put")),
			sumSeries(snap.Counters, "rma_ops_total", "op", "get"),
			fmtBytes(sumSeries(snap.Counters, "rma_op_bytes_total", "op", "get")),
			sumSeries(snap.Counters, "rma_ops_total", "op", "accumulate"),
			fmtBytes(sumSeries(snap.Counters, "rma_op_bytes_total", "op", "accumulate")))
	}
	var epochs []metrics.HistogramValue
	for _, h := range snap.Histograms {
		if h.Name == "rma_epoch_ns" && h.Count > 0 {
			epochs = append(epochs, h)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i].Sum > epochs[j].Sum })
	for _, h := range epochs {
		fprintf(w, "rma epochs %s/%s: %d, mean %s, p99 %s\n",
			h.Labels["win"], h.Labels["kind"], h.Count,
			fmtDur(float64(h.Sum)/float64(h.Count)), fmtDur(histQuantile(h, 0.99)))
	}
	if pub := sumSeries(snap.Counters, "rma_lock_publishes_total"); pub > 0 {
		fprintf(w, "rma locks: %d publishes / %d ordered acquires\n",
			pub, sumSeries(snap.Counters, "rma_lock_acquires_total"))
	}
}

// WriteTelemetryCSV writes every series of the registry as one CSV row:
//
//	name,labels,kind,value,count,sum,p50_le,p99_le
//
// Counters and gauges fill `value`; histograms fill count/sum and the
// p50/p99 bucket upper bounds (-1 = overflow bucket). Labels are
// rendered "k=v;k=v" in sorted key order.
func WriteTelemetryCSV(w io.Writer, t *Telemetry) error {
	if t == nil {
		return nil
	}
	snap := t.Registry.Snapshot()
	if _, err := fmt.Fprintln(w, "name,labels,kind,value,count,sum,p50_le,p99_le"); err != nil {
		return err
	}
	row := func(name string, labels map[string]string, kind string, rest string) error {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+labels[k])
		}
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s\n", name, strings.Join(parts, ";"), kind, rest)
		return err
	}
	for _, c := range snap.Counters {
		if err := row(c.Name, c.Labels, "counter", fmt.Sprintf("%d,,,,", c.Value)); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if err := row(g.Name, g.Labels, "gauge", fmt.Sprintf("%d,,,,", g.Value)); err != nil {
			return err
		}
	}
	quant := func(h metrics.HistogramValue, q float64) string {
		v := histQuantile(h, q)
		switch {
		case math.IsNaN(v):
			return ""
		case math.IsInf(v, 1):
			return "-1"
		}
		return fmt.Sprintf("%d", int64(v))
	}
	for _, h := range snap.Histograms {
		rest := fmt.Sprintf(",%d,%d,%s,%s", h.Count, h.Sum, quant(h, 0.5), quant(h, 0.99))
		if err := row(h.Name, h.Labels, "histogram", rest); err != nil {
			return err
		}
	}
	return nil
}
