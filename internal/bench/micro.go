package bench

import (
	"fmt"
	"io"
	"time"

	"hls/internal/hls"
	"hls/internal/memsim"
	"hls/internal/mpi"
	"hls/internal/pagemerge"
	"hls/internal/topology"
)

// MicroResult is one micro-benchmark or ablation measurement.
type MicroResult struct {
	Name    string
	NsPerOp float64
	Note    string
}

// PrintMicro renders the measurements.
func PrintMicro(w io.Writer, results []MicroResult) {
	fprintf(w, "Micro-benchmarks and ablations (32 tasks on 4x Nehalem-EX)\n")
	for _, r := range results {
		if r.NsPerOp > 0 {
			fprintf(w, "%-42s %12.0f ns/op  %s\n", r.Name, r.NsPerOp, r.Note)
		} else {
			fprintf(w, "%-42s %12s        %s\n", r.Name, "-", r.Note)
		}
	}
}

// RunMicro measures the HLS primitives' costs and the §IV-B / related-work
// design choices:
//
//   - hls_get_addr (Var.Slice) per-access overhead;
//   - node barrier, hierarchical (shared-cache aware) vs flat (ablation 1);
//   - listing 1 (single per write) vs listing 2 (barrier + single nowait),
//     which halves the synchronizations (ablation 2);
//   - HLS vs SBLLmalloc-style page merging (ablation 4).
func RunMicro(p Profile) ([]MicroResult, error) {
	iters := 300
	if p == Full {
		iters = 2000
	}
	var out []MicroResult

	// get-addr cost.
	if r, err := microGetAddr(); err != nil {
		return nil, err
	} else {
		out = append(out, r)
	}

	// Barrier: hierarchical vs flat.
	for _, flat := range []bool{false, true} {
		r, err := microBarrier(iters, flat)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}

	// Listing 1 vs listing 2 with 4 shared variables.
	for _, listing2 := range []bool{false, true} {
		r, err := microSinglePattern(iters/2, listing2)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}

	out = append(out, microPageMerge()...)
	return out, nil
}

func microWorld(opts ...hls.Option) (*mpi.World, *hls.Registry, error) {
	machine := topology.NehalemEX4()
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: machine.TotalCores(),
		Machine:  machine,
		Pin:      topology.PinCorePerTask,
		Timeout:  5 * time.Minute,
		Hooks:    telemetryHooks(),
	})
	if err != nil {
		return nil, nil, err
	}
	return w, hls.New(w, append(telemetryHLSOptions(), opts...)...), nil
}

func microGetAddr() (MicroResult, error) {
	w, reg, err := microWorld()
	if err != nil {
		return MicroResult{}, err
	}
	v := hls.Declare[float64](reg, "m_addr", topology.Node, 8)
	const n = 2_000_000
	var perOp float64
	err = w.Run(func(task *mpi.Task) error {
		if task.Rank() != 0 {
			return nil
		}
		start := time.Now()
		var sink float64
		for i := 0; i < n; i++ {
			sink += v.Slice(task)[0]
		}
		_ = sink
		perOp = float64(time.Since(start).Nanoseconds()) / n
		return nil
	})
	return MicroResult{Name: "hls_get_addr (Var.Slice)", NsPerOp: perOp,
		Note: "address resolution per access (§IV-A)"}, err
}

func microBarrier(iters int, flat bool) (MicroResult, error) {
	var opts []hls.Option
	name := "node barrier, hierarchical (cache-aware)"
	if flat {
		opts = append(opts, hls.WithFlatBarriers())
		name = "node barrier, flat (ablation)"
	}
	w, reg, err := microWorld(opts...)
	if err != nil {
		return MicroResult{}, err
	}
	v := hls.Declare[int](reg, "m_bar", topology.Node, 1)
	var elapsed time.Duration
	err = w.Run(func(task *mpi.Task) error {
		mpi.Barrier(task, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			reg.Barrier(task, v)
		}
		if task.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	})
	return MicroResult{Name: name, NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		Note: "32 tasks synchronize (§IV-B)"}, err
}

func microSinglePattern(iters int, listing2 bool) (MicroResult, error) {
	w, reg, err := microWorld()
	if err != nil {
		return MicroResult{}, err
	}
	vars := make([]*hls.Var[int], 4)
	anyVars := make([]hls.AnyVar, 4)
	for i := range vars {
		vars[i] = hls.Declare[int](reg, fmt.Sprintf("m_s%d", i), topology.Node, 1)
		anyVars[i] = vars[i]
	}
	var elapsed time.Duration
	err = w.Run(func(task *mpi.Task) error {
		mpi.Barrier(task, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if listing2 {
				reg.Barrier(task, anyVars...)
				for _, v := range vars {
					v.SingleNowait(task, func(d []int) { d[0]++ })
				}
				reg.Barrier(task, anyVars...)
			} else {
				for _, v := range vars {
					v.Single(task, func(d []int) { d[0]++ })
				}
			}
		}
		if task.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	})
	name := "4 writes via single (listing 1)"
	note := "4 barrier-equivalents per iteration"
	if listing2 {
		name = "4 writes via barrier+nowait (listing 2)"
		note = "2 barriers per iteration (half the syncs)"
	}
	return MicroResult{Name: name, NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters), Note: note}, err
}

// microPageMerge contrasts directive sharing with SBLLmalloc-style page
// merging on a table that is periodically updated: same memory when idle,
// but the page merger pays scans and copy-on-write faults every cycle.
func microPageMerge() []MicroResult {
	const (
		tasks     = 8
		pageBytes = 4096
		tableMB   = 8
		pages     = tableMB << 20 / pageBytes
		cycles    = 5
	)
	m := pagemerge.NewManager(pageBytes)
	m.Register("table", tasks, tableMB<<20, func(task, page int) uint64 { return uint64(page) })
	m.Scan()
	mergedMB := memsim.MB(float64(m.PhysicalBytes()))
	privateMB := memsim.MB(float64(m.PrivateBytes()))
	// Update cycles: every task rewrites the table, then a scan remerges.
	for c := 1; c <= cycles; c++ {
		for task := 0; task < tasks; task++ {
			for pg := 0; pg < pages; pg++ {
				m.Write("table", task, pg*pageBytes, uint64(c*1_000_000+pg))
			}
		}
		m.Scan()
	}
	st := m.Stats()
	return []MicroResult{
		{Name: "page merging: idle table", Note: fmt.Sprintf(
			"%.0f MB merged vs %.0f MB private vs %.0f MB HLS (same saving, page granularity)",
			mergedMB, privateMB, float64(tableMB))},
		{Name: "page merging: updated table", Note: fmt.Sprintf(
			"%d CoW faults, %d pages scanned over %d update cycles; HLS single pays %d barriers",
			st.Faults, st.PagesScanned, cycles, cycles)},
	}
}
