package bench

import (
	"strings"
	"testing"

	"hls/internal/apps/matmul"
	"hls/internal/apps/meshupdate"
)

func TestTableIQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation is slow")
	}
	cells, err := RunTableI(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 18 { // 3 modes x 3 sizes x 2 update variants
		t.Fatalf("cells = %d, want 18", len(cells))
	}
	eff := func(mode meshupdate.Mode, size string, update bool) float64 {
		for _, c := range cells {
			if c.Mode == mode && c.Size == size && c.Update == update {
				return c.Efficiency
			}
		}
		t.Fatalf("missing cell %v/%s/%v", mode, size, update)
		return 0
	}
	// Paper shape: HLS far above no-HLS everywhere.
	for _, update := range []bool{false, true} {
		for _, size := range []string{"small", "medium", "large"} {
			no := eff(meshupdate.NoHLS, size, update)
			node := eff(meshupdate.HLSNode, size, update)
			numa := eff(meshupdate.HLSNuma, size, update)
			if node < no || numa < no {
				t.Errorf("size=%s update=%v: HLS (%.2f/%.2f) below no-HLS (%.2f)", size, update, node, numa, no)
			}
			if update && numa < node-0.02 {
				t.Errorf("size=%s update: numa (%.2f) below node (%.2f)", size, numa, node)
			}
		}
	}
	// The node scope suffers most from updates on the small setting.
	if eff(meshupdate.HLSNode, "small", true) >= eff(meshupdate.HLSNode, "small", false) {
		t.Error("update did not penalize the node scope on the small setting")
	}
	var sb strings.Builder
	PrintTableI(&sb, cells)
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("PrintTableI produced no header")
	}
}

func TestFigure3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cache simulation is slow")
	}
	pts, err := RunFigure3(Quick, false)
	if err != nil {
		t.Fatal(err)
	}
	get := func(mode matmul.Mode, n int) float64 {
		for _, p := range pts {
			if p.Mode == mode && p.N == n {
				return p.GFLOPS
			}
		}
		t.Fatalf("missing point %v/%d", mode, n)
		return 0
	}
	// Small size: all within a band. Past the crossover: noHLS below HLS.
	if get(matmul.NoHLS, 16) < 0.7*get(matmul.Seq, 16) {
		t.Error("no-HLS unexpectedly slow at cache-resident size")
	}
	if get(matmul.NoHLS, 64) >= get(matmul.HLSNode, 64) {
		t.Errorf("no-HLS (%.2f) not below HLS node (%.2f) at N=64",
			get(matmul.NoHLS, 64), get(matmul.HLSNode, 64))
	}
	var sb strings.Builder
	PrintFigure3(&sb, pts, false)
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Error("PrintFigure3 produced no header")
	}
}

func memRow(t *testing.T, rows []MemRow, v Variant) MemRow {
	t.Helper()
	for _, r := range rows {
		if r.Variant == v {
			return r
		}
	}
	t.Fatalf("no row for %v", v)
	return MemRow{}
}

func TestTableIIQuickShape(t *testing.T) {
	rows, err := RunTableII(Quick)
	if err != nil {
		t.Fatal(err)
	}
	hls := memRow(t, rows, VariantMPCHLS)
	mpc := memRow(t, rows, VariantMPC)
	ompi := memRow(t, rows, VariantOpenMPI)
	// HLS saves ~7 x 128 MB = 896 MB per node; Open MPI > MPC.
	saving := mpc.AvgMB - hls.AvgMB
	if saving < 850 || saving > 950 {
		t.Errorf("HLS saving = %.0f MB, want ≈ 896 MB", saving)
	}
	if ompi.AvgMB <= mpc.AvgMB {
		t.Errorf("Open MPI (%.0f) not above MPC (%.0f)", ompi.AvgMB, mpc.AvgMB)
	}
	// Time roughly unchanged by HLS (well within 3x for a quick run).
	if hls.Seconds > 3*mpc.Seconds+0.05 {
		t.Errorf("HLS time %.3fs vs MPC %.3fs: overhead not negligible", hls.Seconds, mpc.Seconds)
	}
	var sb strings.Builder
	PrintMemRows(&sb, "Table II", rows, "")
	if !strings.Contains(sb.String(), "MPC HLS") {
		t.Error("PrintMemRows missing variant")
	}
}

func TestTableIIIQuickShape(t *testing.T) {
	rows, err := RunTableIII(Quick)
	if err != nil {
		t.Fatal(err)
	}
	hls := memRow(t, rows, VariantMPCHLS)
	mpc := memRow(t, rows, VariantMPC)
	saving := mpc.AvgMB - hls.AvgMB
	if saving < 200 || saving > 260 {
		t.Errorf("HLS saving = %.0f MB, want ≈ 231 MB (7 x 33)", saving)
	}
}

func TestTableIVQuickShape(t *testing.T) {
	res, err := RunTableIV(Quick)
	if err != nil {
		t.Fatal(err)
	}
	hls := memRow(t, res.Rows, VariantMPCHLS)
	mpc := memRow(t, res.Rows, VariantMPC)
	saving := mpc.AvgMB - hls.AvgMB
	want := 7.0 * 560
	if saving < 0.95*want || saving > 1.05*want {
		t.Errorf("HLS saving = %.0f MB, want ≈ %.0f MB", saving, want)
	}
	if res.ElidedCopies == 0 {
		t.Error("no intra-node copy elisions in the HLS run")
	}
}

func TestMicroQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("micro benches spin many goroutines")
	}
	results, err := RunMicro(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 6 {
		t.Fatalf("results = %d, want >= 6", len(results))
	}
	var sb strings.Builder
	PrintMicro(&sb, results)
	if !strings.Contains(sb.String(), "barrier") {
		t.Error("micro output missing barrier rows")
	}
}

func TestProfileString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("profile names wrong")
	}
}

func TestVariantString(t *testing.T) {
	for _, v := range []Variant{VariantMPCHLS, VariantMPC, VariantOpenMPI} {
		if v.String() == "" {
			t.Error("empty variant name")
		}
	}
}

func TestNewMemEnvValidation(t *testing.T) {
	if _, err := newMemEnv(12, VariantMPC); err == nil {
		t.Error("non-multiple-of-8 cores accepted")
	}
}

func TestHybridAblationShape(t *testing.T) {
	res, err := RunHybridAblation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.PureMPIHLSPath <= 0 || res.HybridMasterPath <= 0 {
		t.Fatalf("bad work counts: %+v", res)
	}
	// The master-only hybrid serializes the comm phase: its critical path
	// must be clearly longer. With a 20% comm share over 8 workers:
	// (c/8 + m) / (c/8 + m/8) ≈ 2.4.
	ratio := float64(res.HybridMasterPath) / float64(res.PureMPIHLSPath)
	if ratio < 1.5 {
		t.Errorf("hybrid critical path only %.2fx the pure-MPI one; Amdahl section lost", ratio)
	}
	var sb strings.Builder
	PrintHybrid(&sb, res)
	if !strings.Contains(sb.String(), "Amdahl") {
		t.Error("missing explanation line")
	}
}

func TestCSVWriters(t *testing.T) {
	cells := []TableICell{
		{Mode: meshupdate.NoHLS, Size: "small", Update: false, Efficiency: 0.37},
		{Mode: meshupdate.HLSNode, Size: "small", Update: true, Efficiency: 0.65},
	}
	var sb strings.Builder
	if err := WriteTableICSV(&sb, cells); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mode,size,update,efficiency") ||
		!strings.Contains(out, "without HLS,small,false,0.3700") {
		t.Errorf("table1 csv:\n%s", out)
	}

	pts := []Fig3Point{
		{Mode: matmul.Seq, N: 16, GFLOPS: 1.38},
		{Mode: matmul.NoHLS, N: 16, GFLOPS: 1.38},
		{Mode: matmul.HLSNode, N: 16, GFLOPS: 1.38},
		{Mode: matmul.HLSNuma, N: 16, GFLOPS: 1.38},
		{Mode: matmul.Seq, N: 64, GFLOPS: 0.53},
		{Mode: matmul.NoHLS, N: 64, GFLOPS: 0.40},
		{Mode: matmul.HLSNode, N: 64, GFLOPS: 0.49},
		{Mode: matmul.HLSNuma, N: 64, GFLOPS: 0.49},
	}
	sb.Reset()
	if err := WriteFigure3CSV(&sb, pts, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("fig3 csv lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "n,sequential,without HLS,HLS node,HLS numa" {
		t.Errorf("fig3 header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "64,0.5300,0.4000,") {
		t.Errorf("fig3 row = %q", lines[2])
	}

	sb.Reset()
	rows := []MemRow{{Cores: 256, Variant: VariantMPCHLS, Seconds: 1.5, AvgMB: 651, MaxMB: 672}}
	if err := WriteMemRowsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "256,MPC HLS,1.500,651,672") {
		t.Errorf("mem csv:\n%s", sb.String())
	}
}

func TestRMAAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("rma ablation spins many goroutines")
	}
	res, err := RunRMA(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cache) != 3 || len(res.Mem) != 3 || len(res.Sync) < 3 {
		t.Fatalf("shape: %d cache, %d mem, %d sync rows", len(res.Cache), len(res.Mem), len(res.Sync))
	}
	// The window must reproduce HLS node's single-copy profile: same cache
	// efficiency (identical access streams) and same order of memory.
	if res.Cache[1].MeshEff != res.Cache[2].MeshEff {
		t.Errorf("shared window efficiency %v != HLS node %v", res.Cache[2].MeshEff, res.Cache[1].MeshEff)
	}
	if res.Cache[0].MeshEff >= res.Cache[2].MeshEff {
		t.Errorf("private copies (%v) should scale worse than the shared window (%v)",
			res.Cache[0].MeshEff, res.Cache[2].MeshEff)
	}
	if res.Mem[0].TableMB <= res.Mem[2].TableMB {
		t.Errorf("private copies (%v MB) should cost more than the window (%v MB)",
			res.Mem[0].TableMB, res.Mem[2].TableMB)
	}
	var sb strings.Builder
	PrintRMA(&sb, res)
	for _, want := range []string{"MPI-3 shared window", "window fence", "lock/unlock"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
