package bench

import (
	"fmt"
	"io"
	"time"

	"hls/internal/apps/matmul"
	"hls/internal/apps/meshupdate"
	"hls/internal/hls"
	"hls/internal/memsim"
	"hls/internal/mpi"
	"hls/internal/rma"
	"hls/internal/topology"
)

// The rma experiment is the ablation the paper's related-work discussion
// invites: HLS reaches user-data sharing through directives on a
// thread-based runtime, but MPI-3 offers a standard-conforming route to
// the same single-copy layout — shared windows (MPI_Win_allocate_shared).
// The experiment runs the two cache kernels in both configurations and
// contrasts what each costs in memory overhead and synchronization.

// RMACacheRow is one sharing configuration's kernel results.
type RMACacheRow struct {
	Mode     string
	MeshEff  float64 // mesh-update weak-scaling efficiency (Table I metric)
	MatFLOPS float64 // per-task DGEMM GFLOPS (Figure 3 metric)
}

// RMAMemRow is one configuration's per-node memory bill for the shared
// table, at paper scale.
type RMAMemRow struct {
	Mode    string
	TableMB float64
	Note    string
}

// RMAResult aggregates the ablation.
type RMAResult struct {
	MeshCells int
	MatN      int
	Cache     []RMACacheRow
	Mem       []RMAMemRow
	Sync      []MicroResult
}

// RunRMA runs the HLS-vs-shared-window ablation: the mesh-update and
// matmul kernels (update variant, so the write path is exercised) under
// private copies, an HLS node variable, and an MPI-3 shared window; the
// paper-scale memory bill of each; and the synchronization micro-costs
// (HLS node barrier vs window fence vs passive-target locks).
func RunRMA(p Profile) (*RMAResult, error) {
	machine := topology.NehalemEX4Scaled()
	cells := TableISizes(p)["medium"]
	matN := 48
	if p == Full {
		matN = 96
	}
	out := &RMAResult{MeshCells: cells, MatN: matN}

	meshModes := []meshupdate.Mode{meshupdate.NoHLS, meshupdate.HLSNode, meshupdate.WinShm}
	matModes := []matmul.Mode{matmul.NoHLS, matmul.HLSNode, matmul.WinShm}
	for i := range meshModes {
		mres, err := meshupdate.RunCacheExperiment(meshupdate.Config{
			Machine:      machine,
			Tasks:        machine.TotalCores(),
			Mode:         meshModes[i],
			CellsPerTask: cells,
			TableEntries: tableITableEntries,
			Steps:        3,
			Update:       true,
			Seed:         42,
		})
		if err != nil {
			return nil, err
		}
		fres, err := matmul.RunCacheExperiment(matmul.Config{
			Machine: machine,
			Tasks:   machine.TotalCores(),
			Mode:    matModes[i],
			N:       matN,
			Steps:   2,
			Update:  true,
		})
		if err != nil {
			return nil, err
		}
		out.Cache = append(out.Cache, RMACacheRow{
			Mode:     meshModes[i].String(),
			MeshEff:  mres.Efficiency,
			MatFLOPS: fres.GFLOPS,
		})
	}

	mem, err := rmaMemory()
	if err != nil {
		return nil, err
	}
	out.Mem = mem

	sync, err := rmaSync(p)
	if err != nil {
		return nil, err
	}
	out.Sync = sync
	return out, nil
}

// rmaMemory bills one node (8 tasks) for the paper's 8 MB mesh table in
// each configuration, at paper scale via the AccountBytes overrides.
func rmaMemory() ([]RMAMemRow, error) {
	const tableBytes = 8 << 20
	machine := topology.HarpertownCluster(1)
	tasks := machine.TotalCores()
	newEnv := func() (*mpi.World, *memsim.Tracker, error) {
		w, err := mpi.NewWorld(mpi.Config{NumTasks: tasks, Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 5 * time.Minute,
			Hooks: telemetryHooks()})
		if err != nil {
			return nil, nil, err
		}
		return w, memsim.NewTracker(machine, w.Pinning()), nil
	}
	var rows []RMAMemRow

	// Private copies: one table per task.
	_, tr, err := newEnv()
	if err != nil {
		return nil, err
	}
	for r := 0; r < tasks; r++ {
		tr.AllocRank(r, tableBytes, memsim.KindApp)
	}
	rows = append(rows, RMAMemRow{Mode: "without HLS", TableMB: memsim.MB(float64(tr.CurrentBytes(0))),
		Note: fmt.Sprintf("%d private copies", tasks)})

	// HLS node variable.
	w, tr, err := newEnv()
	if err != nil {
		return nil, err
	}
	reg := hls.New(w, append(telemetryHLSOptions(), hls.WithTracker(tr))...)
	v := hls.Declare[float64](reg, "rma_mem_table", topology.Node, tableITableEntries,
		hls.WithAccountBytes[float64](tableBytes))
	if err := w.Run(func(task *mpi.Task) error { v.Slice(task); return nil }); err != nil {
		return nil, err
	}
	rows = append(rows, RMAMemRow{Mode: "HLS node", TableMB: memsim.MB(float64(tr.CurrentBytes(0))),
		Note: "one copy, directive metadata"})

	// MPI-3 shared window.
	w, tr, err = newEnv()
	if err != nil {
		return nil, err
	}
	if err := w.Run(func(task *mpi.Task) error {
		mine := 0
		if task.Rank() == 0 {
			mine = tableITableEntries
		}
		rma.WinAllocateShared[float64](task, nil, mine,
			append(telemetryWinOptions(), rma.WithTracker(tr), rma.WithAccountBytes(tableBytes))...)
		return nil
	}); err != nil {
		return nil, err
	}
	control := tr.KindBytes(memsim.KindRuntime)[0]
	rows = append(rows, RMAMemRow{Mode: "MPI-3 shared window", TableMB: memsim.MB(float64(tr.CurrentBytes(0))),
		Note: fmt.Sprintf("one page-rounded slab + %d B window control", control)})
	return rows, nil
}

// rmaSync compares the cost of the synchronization each sharing mechanism
// leans on, 32 tasks on the 4-socket Nehalem-EX node: the HLS node
// barrier (what a single costs), the window fence (what a shared-window
// update costs), and passive-target lock/unlock epochs.
func rmaSync(p Profile) ([]MicroResult, error) {
	iters := 300
	if p == Full {
		iters = 2000
	}
	var out []MicroResult

	r, err := microBarrier(iters, false)
	if err != nil {
		return nil, err
	}
	r.Note = "what one HLS single costs (§IV-B)"
	out = append(out, r)

	machine := topology.NehalemEX4()
	newWorld := func() (*mpi.World, error) {
		return mpi.NewWorld(mpi.Config{NumTasks: machine.TotalCores(), Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 5 * time.Minute,
			Hooks: telemetryHooks()})
	}

	// Window fence: the collective closing every shared-window update.
	w, err := newWorld()
	if err != nil {
		return nil, err
	}
	var elapsed time.Duration
	if err := w.Run(func(task *mpi.Task) error {
		win := rma.WinAllocate[int](task, nil, 1, telemetryWinOptions()...)
		mpi.Barrier(task, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			win.Fence(task)
		}
		if task.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out = append(out, MicroResult{Name: "window fence (MPI_Win_fence)",
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		Note:    "what one shared-window update costs"})

	// Passive-target epochs: uncontended (own segment) and contended
	// (everyone locking rank 0).
	for _, contended := range []bool{false, true} {
		w, err := newWorld()
		if err != nil {
			return nil, err
		}
		var elapsed time.Duration
		if err := w.Run(func(task *mpi.Task) error {
			win := rma.WinAllocate[int](task, nil, 1, telemetryWinOptions()...)
			target := task.Rank()
			if contended {
				target = 0
			}
			mpi.Barrier(task, nil)
			start := time.Now()
			for i := 0; i < iters; i++ {
				win.Lock(task, rma.LockExclusive, target)
				win.Unlock(task, target)
			}
			if task.Rank() == 0 {
				elapsed = time.Since(start)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		name, note := "lock/unlock epoch, uncontended", "per-task passive-target cost"
		if contended {
			name, note = "lock/unlock epoch, 32 tasks on one target", "serialized exclusive epochs"
		}
		out = append(out, MicroResult{Name: name,
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters), Note: note})
	}
	return out, nil
}

// PrintRMA renders the ablation in the paper's table style.
func PrintRMA(w io.Writer, r *RMAResult) {
	fprintf(w, "Ablation: HLS directives vs MPI-3 shared windows\n")
	fprintf(w, "Cache kernels on 4x Nehalem-EX (mesh-update medium + update; DGEMM N=%d + update):\n", r.MatN)
	fprintf(w, "%-22s %18s %16s\n", "sharing", "mesh efficiency", "matmul GFLOPS")
	for _, row := range r.Cache {
		fprintf(w, "%-22s %18.2f %16.2f\n", row.Mode, row.MeshEff, row.MatFLOPS)
	}
	fprintf(w, "Memory per 8-task node for the 8 MB table (paper scale):\n")
	for _, row := range r.Mem {
		fprintf(w, "%-22s %10.1f MB  (%s)\n", row.Mode, row.TableMB, row.Note)
	}
	fprintf(w, "Synchronization (32 tasks on 4x Nehalem-EX)\n")
	for _, row := range r.Sync {
		fprintf(w, "%-42s %12.0f ns/op  %s\n", row.Name, row.NsPerOp, row.Note)
	}
	fprintf(w, "(reading: a shared window reproduces HLS's single-copy cache and memory profile;\n")
	fprintf(w, " the differences are the explicit window bookkeeping and the fence per update,\n")
	fprintf(w, " where HLS pays one directive — and window code must be restructured by hand,\n")
	fprintf(w, " while the directives keep the original MPI program intact.)\n")
}
