//go:build race

package bench

// raceDetectorOn reports whether the race detector is compiled in; the
// allocation-rate assertions are skipped under it (sync.Pool drops puts
// deliberately when racing).
const raceDetectorOn = true
