package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"hls/internal/mpi"
)

// The -exp p2p experiment measures the point-to-point datapath after the
// zero-allocation rework: pooled eager buffers, single-copy delivery
// into posted receives, and bucketed (comm, source) matching.
//
//   - pingpong: latency/bandwidth/allocs-per-op across message sizes and
//     eager limits — the eager/rendezvous crossover sweep. The eager
//     limit defaults to a three-value sweep and can be pinned from the
//     command line (hlsbench -eager-limit).
//   - arrival: the same eager exchange with the receive deterministically
//     posted (direct delivery, no pooled buffer) vs deterministically
//     unexpected (one copy through a pooled buffer), isolating the cost
//     of the intermediate copy and exercising the pool's recycling.
//   - tasks: concurrent ping-pong pairs across world sizes, checking that
//     bucketed matching keeps the probes-per-message ratio flat as the
//     number of endpoints grows.
//
// The JSON snapshot (BENCH_p2p.json) carries Checks, the acceptance
// booleans CI tracks against the committed baseline.

// P2PPoint is one datapath measurement. The counters are whole-run
// totals from World.Stats (warmup included); the per-op figures time the
// measured loop only.
type P2PPoint struct {
	Kind             string  `json:"kind"` // pingpong | arrival | tasks
	Tasks            int     `json:"tasks"`
	Bytes            int     `json:"bytes"`
	EagerLimit       int     `json:"eager_limit"`
	Protocol         string  `json:"protocol"`          // eager | rendezvous
	Arrival          string  `json:"arrival,omitempty"` // posted | unexpected
	NsPerOp          float64 `json:"ns_per_op"`
	MBPerS           float64 `json:"mb_per_s"`
	AllocsPerOp      float64 `json:"allocs_per_op"` // process-wide, all ranks
	Messages         int64   `json:"messages"`
	DirectDeliveries int64   `json:"direct_deliveries"`
	PoolHits         int64   `json:"pool_hits"`
	PoolMisses       int64   `json:"pool_misses"`
	MatchProbes      int64   `json:"match_probes"`
	Outstanding      int64   `json:"pool_outstanding"`
}

// P2PChecks are the experiment's acceptance criteria.
type P2PChecks struct {
	// ZeroAllocEager: every two-task eager ping-pong allocates less than
	// one object per round trip process-wide (steady state is zero; the
	// budget absorbs the bracketing barriers and stray runtime work).
	ZeroAllocEager bool `json:"zero_alloc_eager"`
	// SingleCopyPosted: with the receive deterministically posted, every
	// data message is delivered sender-buffer -> receiver-buffer directly
	// and the eager pool is never touched.
	SingleCopyPosted bool `json:"single_copy_posted"`
	// PoolRecyclesUnexpected: with the receive deterministically late,
	// every data message takes a pooled buffer, the pool serves the
	// steady state from recycled buffers, and nothing stays outstanding.
	PoolRecyclesUnexpected bool `json:"pool_recycles_unexpected"`
	// MatchProbesBounded: bucketed matching examines at most ~2 queue
	// entries per message on the ping-pong and task-sweep runs,
	// independent of world size.
	MatchProbesBounded bool `json:"match_probes_bounded"`
	// EagerWinsAtLimit: at the smallest size measured under both
	// protocols, the eager path beats the rendezvous handshake.
	EagerWinsAtLimit bool `json:"eager_wins_at_limit"`
	// NoLeakedBuffers: every run ends with zero pooled buffers
	// outstanding.
	NoLeakedBuffers bool `json:"no_leaked_buffers"`
}

// P2PResult is the full -exp p2p output.
type P2PResult struct {
	Profile     string `json:"profile"`
	EagerLimits []int  `json:"eager_limits"`
	// CrossoverBytes is the smallest swept size at which the rendezvous
	// protocol beat the eager path; 0 when eager won at every size both
	// were measured (single-copy delivery keeps eager competitive).
	CrossoverBytes int        `json:"crossover_bytes"`
	Points         []P2PPoint `json:"points"`
	Checks         P2PChecks  `json:"checks"`
}

// p2pTraceConfig, when non-nil, supplies a tracer for every world the
// p2p experiment builds. The trace experiment sets it to measure the
// enabled-path tracing overhead on exactly the workload the budget is
// defined over — this profile's own points — rather than a lookalike.
var p2pTraceConfig func() mpi.TraceHooks

func p2pProtocol(nbytes, eagerLimit int) string {
	if nbytes <= eagerLimit {
		return "eager"
	}
	return "rendezvous"
}

// p2pCounters copies the whole-run totals out of a finished world.
func p2pCounters(pt *P2PPoint, s mpi.Stats) {
	pt.Messages = s.Messages
	pt.DirectDeliveries = s.DirectDeliveries
	pt.PoolHits = s.EagerPoolHits
	pt.PoolMisses = s.EagerPoolMisses
	pt.MatchProbes = s.MatchProbes
	pt.Outstanding = s.EagerPoolOutstanding
}

// p2pPingPong times iters lockstep round trips of nbytes under the given
// eager limit. Every even rank pairs with the next odd rank, so larger
// worlds measure the matching engine under concurrent pair traffic;
// rank 0 reports the timing and the process-wide allocation rate.
func p2pPingPong(kind string, tasks, nbytes, eagerLimit, iters int) (P2PPoint, error) {
	cfg := mpi.Config{
		NumTasks: tasks, EagerLimit: eagerLimit,
		Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
	}
	if p2pTraceConfig != nil {
		cfg.Trace = p2pTraceConfig()
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return P2PPoint{}, err
	}
	var perOp, allocs float64
	var ms0, ms1 runtime.MemStats
	err = w.Run(func(tk *mpi.Task) error {
		buf := make([]byte, nbytes)
		peer := tk.Rank() ^ 1
		step := func(tag int) {
			if tk.Rank()%2 == 0 {
				mpi.Send(tk, nil, buf, peer, tag)
				mpi.Recv(tk, nil, buf, peer, tag)
			} else {
				mpi.Recv(tk, nil, buf, peer, tag)
				mpi.Send(tk, nil, buf, peer, tag)
			}
		}
		for i := 0; i < 50; i++ { // warm the pools and the buckets
			step(0)
		}
		mpi.Barrier(tk, nil)
		if tk.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
		}
		mpi.Barrier(tk, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			step(1)
		}
		mpi.Barrier(tk, nil)
		if tk.Rank() == 0 {
			perOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
			runtime.ReadMemStats(&ms1)
			allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
		}
		return nil
	})
	pt := P2PPoint{
		Kind: kind, Tasks: tasks, Bytes: nbytes, EagerLimit: eagerLimit,
		Protocol: p2pProtocol(nbytes, eagerLimit),
		NsPerOp:  perOp, AllocsPerOp: allocs,
	}
	if perOp > 0 {
		pt.MBPerS = 2 * float64(nbytes) * 1000 / perOp // two messages per round trip
	}
	p2pCounters(&pt, w.Stats())
	return pt, err
}

// p2pArrival times iters eager exchanges with the arrival order pinned.
// posted: the receiver posts the receive and confirms with a zero-byte
// ready message before the sender injects, so every data message finds
// its receive waiting (direct delivery, no pooled buffer). unexpected:
// the sender injects first and the receiver probes — Probe returns only
// once the message is queued unexpected — so every data message is
// copied through a pooled buffer. The zero-byte control messages carry
// no payload and never touch the pool, keeping the counters pure.
func p2pArrival(arrival string, nbytes, eagerLimit, iters int) (P2PPoint, error) {
	cfg := mpi.Config{
		NumTasks: 2, EagerLimit: eagerLimit,
		Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
	}
	if p2pTraceConfig != nil {
		cfg.Trace = p2pTraceConfig()
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return P2PPoint{}, err
	}
	var perOp float64
	err = w.Run(func(tk *mpi.Task) error {
		data := make([]byte, nbytes)
		empty := []byte{}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if tk.Rank() == 0 {
				if arrival == "posted" {
					mpi.Recv(tk, nil, empty, 1, 1) // receive is posted: go
					mpi.Send(tk, nil, data, 1, 0)
				} else {
					mpi.Send(tk, nil, data, 1, 0)
					mpi.Recv(tk, nil, empty, 1, 1) // consumed: next round
				}
			} else {
				if arrival == "posted" {
					req := mpi.Irecv(tk, nil, data, 0, 0)
					mpi.Send(tk, nil, empty, 0, 1)
					req.Wait()
				} else {
					mpi.Probe(tk, nil, 0, 0) // blocks until queued unexpected
					mpi.Recv(tk, nil, data, 0, 0)
					mpi.Send(tk, nil, empty, 0, 1)
				}
			}
		}
		if tk.Rank() == 0 {
			perOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
		}
		return nil
	})
	pt := P2PPoint{
		Kind: "arrival", Tasks: 2, Bytes: nbytes, EagerLimit: eagerLimit,
		Protocol: p2pProtocol(nbytes, eagerLimit), Arrival: arrival,
		NsPerOp: perOp,
	}
	if perOp > 0 {
		pt.MBPerS = float64(nbytes) * 1000 / perOp // one data message per round
	}
	p2pCounters(&pt, w.Stats())
	return pt, err
}

// RunP2P runs the datapath experiment. eagerLimit > 0 pins the sweep to
// that single threshold (hlsbench -eager-limit); 0 sweeps the default
// three-value ladder around mpi.DefaultEagerLimit.
func RunP2P(p Profile, eagerLimit int) (*P2PResult, error) {
	iters, itersLarge, itersArrival, itersTasks := 1500, 300, 800, 600
	if p == Full {
		iters, itersLarge, itersArrival, itersTasks = 15000, 3000, 8000, 6000
	}
	limits := []int{1024, mpi.DefaultEagerLimit, 32768}
	if eagerLimit > 0 {
		limits = []int{eagerLimit}
	}
	res := &P2PResult{Profile: p.String(), EagerLimits: limits}

	// Ping-pong: size x eager limit, two tasks. The same size measured
	// under limits on both sides of it is the protocol crossover sweep.
	for _, limit := range limits {
		for _, nbytes := range []int{64, 512, 4096, 16384, 65536} {
			n := iters
			if nbytes >= 16384 {
				n = itersLarge
			}
			pt, err := p2pPingPong("pingpong", 2, nbytes, limit, n)
			if err != nil {
				return nil, fmt.Errorf("pingpong %dB limit %d: %w", nbytes, limit, err)
			}
			res.Points = append(res.Points, pt)
		}
	}

	// Arrival ablation: posted vs unexpected at an always-eager size
	// under the sweep's middle (or pinned) limit.
	arrivalLimit := limits[len(limits)/2]
	for _, arrival := range []string{"posted", "unexpected"} {
		pt, err := p2pArrival(arrival, 512, arrivalLimit, itersArrival)
		if err != nil {
			return nil, fmt.Errorf("arrival %s: %w", arrival, err)
		}
		res.Points = append(res.Points, pt)
	}

	// Task sweep: concurrent ping-pong pairs at 1 KiB, default limit.
	for _, tasks := range []int{2, 8, 16, 32} {
		pt, err := p2pPingPong("tasks", tasks, 1024, arrivalLimit, itersTasks)
		if err != nil {
			return nil, fmt.Errorf("tasks %d: %w", tasks, err)
		}
		res.Points = append(res.Points, pt)
	}

	res.CrossoverBytes = computeP2PCrossover(res)
	res.Checks = computeP2PChecks(res)
	return res, nil
}

// computeP2PCrossover finds the smallest ping-pong size where the best
// rendezvous measurement beat the best eager one; 0 when eager held on.
func computeP2PCrossover(res *P2PResult) int {
	best := map[int]map[string]float64{} // size -> protocol -> min ns/op
	sizes := []int{}
	for _, pt := range res.Points {
		if pt.Kind != "pingpong" || pt.NsPerOp <= 0 {
			continue
		}
		m := best[pt.Bytes]
		if m == nil {
			m = map[string]float64{}
			best[pt.Bytes] = m
			sizes = append(sizes, pt.Bytes)
		}
		if cur, ok := m[pt.Protocol]; !ok || pt.NsPerOp < cur {
			m[pt.Protocol] = pt.NsPerOp
		}
	}
	crossover := 0
	for _, size := range sizes { // sizes appended in ascending sweep order
		m := best[size]
		e, okE := m["eager"]
		r, okR := m["rendezvous"]
		if okE && okR && r < e && (crossover == 0 || size < crossover) {
			crossover = size
		}
	}
	return crossover
}

func computeP2PChecks(res *P2PResult) P2PChecks {
	ch := P2PChecks{
		ZeroAllocEager:     true,
		MatchProbesBounded: true,
		NoLeakedBuffers:    true,
	}
	// Smallest size measured under both protocols, for EagerWinsAtLimit.
	bothSize := 0
	bestEager := map[int]float64{}
	bestRendez := map[int]float64{}
	for _, pt := range res.Points {
		if pt.Outstanding != 0 {
			ch.NoLeakedBuffers = false
		}
		switch pt.Kind {
		case "pingpong", "tasks":
			if pt.Messages > 0 && float64(pt.MatchProbes) > 2.5*float64(pt.Messages) {
				ch.MatchProbesBounded = false
			}
			if pt.Kind == "pingpong" && pt.Protocol == "eager" && pt.AllocsPerOp >= 1 {
				ch.ZeroAllocEager = false
			}
			if pt.Kind == "pingpong" && pt.NsPerOp > 0 {
				m := bestEager
				if pt.Protocol == "rendezvous" {
					m = bestRendez
				}
				if cur, ok := m[pt.Bytes]; !ok || pt.NsPerOp < cur {
					m[pt.Bytes] = pt.NsPerOp
				}
			}
		case "arrival":
			switch pt.Arrival {
			case "posted":
				// Every data message direct-delivered, pool untouched.
				ch.SingleCopyPosted = pt.DirectDeliveries > 0 &&
					pt.PoolHits == 0 && pt.PoolMisses == 0
			case "unexpected":
				// Every data message pooled, steady state served from
				// recycled buffers, nothing left pinned.
				ch.PoolRecyclesUnexpected = pt.PoolHits > pt.PoolMisses &&
					pt.DirectDeliveries == 0 && pt.Outstanding == 0
			}
		}
	}
	for size, e := range bestEager {
		if r, ok := bestRendez[size]; ok && (bothSize == 0 || size < bothSize) {
			bothSize = size
			ch.EagerWinsAtLimit = e <= r
		}
	}
	if bothSize == 0 {
		// A pinned -eager-limit can leave every size on one protocol;
		// the comparison is then vacuous.
		ch.EagerWinsAtLimit = true
	}
	return ch
}

// PrintP2P renders the measurements and the acceptance checks.
func PrintP2P(w io.Writer, res *P2PResult) {
	fprintf(w, "P2P ping-pong (2 tasks; allocs are process-wide per round trip)\n")
	fprintf(w, "%-8s %8s %8s %-11s %10s %9s %10s %8s %8s %7s\n",
		"kind", "bytes", "eager", "protocol", "ns/op", "MB/s", "allocs/op", "direct", "poolhit", "probes")
	for _, pt := range res.Points {
		if pt.Kind != "pingpong" {
			continue
		}
		fprintf(w, "%-8s %8d %8d %-11s %10.0f %9.1f %10.2f %8d %8d %7.2f\n",
			pt.Kind, pt.Bytes, pt.EagerLimit, pt.Protocol, pt.NsPerOp, pt.MBPerS,
			pt.AllocsPerOp, pt.DirectDeliveries, pt.PoolHits,
			probesPerMsg(pt))
	}
	if res.CrossoverBytes > 0 {
		fprintf(w, "measured eager/rendezvous crossover: %d B\n", res.CrossoverBytes)
	} else {
		fprintf(w, "measured eager/rendezvous crossover: none within sweep (single-copy delivery keeps eager ahead)\n")
	}
	fprintf(w, "\nArrival ablation (512 B eager, order pinned per round)\n")
	fprintf(w, "%-12s %10s %9s %8s %8s %8s %6s\n",
		"arrival", "ns/op", "MB/s", "direct", "poolhit", "poolmiss", "outst")
	for _, pt := range res.Points {
		if pt.Kind != "arrival" {
			continue
		}
		fprintf(w, "%-12s %10.0f %9.1f %8d %8d %8d %6d\n",
			pt.Arrival, pt.NsPerOp, pt.MBPerS, pt.DirectDeliveries,
			pt.PoolHits, pt.PoolMisses, pt.Outstanding)
	}
	fprintf(w, "\nConcurrent pairs (1 KiB eager; probes/msg must stay flat)\n")
	fprintf(w, "%-8s %10s %9s %10s %7s\n", "tasks", "ns/op", "MB/s", "messages", "probes")
	for _, pt := range res.Points {
		if pt.Kind != "tasks" {
			continue
		}
		fprintf(w, "%-8d %10.0f %9.1f %10d %7.2f\n",
			pt.Tasks, pt.NsPerOp, pt.MBPerS, pt.Messages, probesPerMsg(pt))
	}
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"eager ping-pong allocation-free", res.Checks.ZeroAllocEager},
		{"posted receives delivered in a single copy", res.Checks.SingleCopyPosted},
		{"unexpected eager traffic recycles pooled buffers", res.Checks.PoolRecyclesUnexpected},
		{"match probes bounded per message", res.Checks.MatchProbesBounded},
		{"eager beats rendezvous at the crossover's left edge", res.Checks.EagerWinsAtLimit},
		{"no pooled buffers leaked", res.Checks.NoLeakedBuffers},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

func probesPerMsg(pt P2PPoint) float64 {
	if pt.Messages == 0 {
		return 0
	}
	return float64(pt.MatchProbes) / float64(pt.Messages)
}

// WriteP2PCSV writes the measurements as one flat table.
func WriteP2PCSV(w io.Writer, res *P2PResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "tasks", "bytes", "eager_limit", "protocol", "arrival",
		"ns_per_op", "mb_per_s", "allocs_per_op",
		"messages", "direct_deliveries", "pool_hits", "pool_misses",
		"match_probes", "pool_outstanding",
	}); err != nil {
		return err
	}
	for _, pt := range res.Points {
		if err := cw.Write([]string{
			pt.Kind, strconv.Itoa(pt.Tasks), strconv.Itoa(pt.Bytes),
			strconv.Itoa(pt.EagerLimit), pt.Protocol, pt.Arrival,
			fmt.Sprintf("%.1f", pt.NsPerOp), fmt.Sprintf("%.1f", pt.MBPerS),
			fmt.Sprintf("%.2f", pt.AllocsPerOp),
			strconv.FormatInt(pt.Messages, 10),
			strconv.FormatInt(pt.DirectDeliveries, 10),
			strconv.FormatInt(pt.PoolHits, 10),
			strconv.FormatInt(pt.PoolMisses, 10),
			strconv.FormatInt(pt.MatchProbes, 10),
			strconv.FormatInt(pt.Outstanding, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteP2PJSON writes the full result snapshot (BENCH_p2p.json).
func WriteP2PJSON(w io.Writer, res *P2PResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadP2PJSON parses a snapshot written by WriteP2PJSON.
func ReadP2PJSON(r io.Reader) (*P2PResult, error) {
	var res P2PResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareP2P prints an old/new comparison and returns an error if an
// acceptance check that held in the baseline fails now. Timing deltas
// are informational — CI runners are noisy — but check regressions are
// hard failures.
func CompareP2P(w io.Writer, base, cur *P2PResult) error {
	delta := func(old, new float64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	fprintf(w, "P2P comparison vs baseline (%s profile)\n", base.Profile)
	for _, b := range base.Points {
		for _, c := range cur.Points {
			if b.Kind == c.Kind && b.Tasks == c.Tasks && b.Bytes == c.Bytes &&
				b.EagerLimit == c.EagerLimit && b.Arrival == c.Arrival {
				fprintf(w, "  %-8s %2d tasks %6d B limit %5d %-10s %10.0f -> %10.0f ns/op  %s\n",
					b.Kind, b.Tasks, b.Bytes, b.EagerLimit, b.Protocol+b.Arrival,
					b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp))
			}
		}
	}
	return compareChecks(w, "p2p", base.Checks, cur.Checks)
}
