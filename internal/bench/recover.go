package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hls/internal/chaos"
	"hls/internal/ckpt"
	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/rma"
	"hls/internal/topology"
)

// The recover experiment is the acceptance test of the durable-recovery
// layer: the same iterative workload — a persistent RMA window, an HLS
// node-scope table, per-rank application state, checkpointed every few
// iterations — runs once clean, once chaos-killed mid-run and resumed
// from the latest checkpoint in a fresh world, and once more after the
// newest generation has been deliberately torn. The checks: the resumed
// runs produce bitwise-identical results to the clean run, the torn
// generation is detected and skipped (never silently loaded), the
// restore reports its generation/bytes/latency, and the chaos kill
// actually fired (an unfired plan would make the whole test vacuous).

// RecoverRun is one trial's outcome.
type RecoverRun struct {
	Mode    string
	Seconds float64
	// Iters is how many iterations this trial executed (the killed trial
	// stops short; resumed trials run from the restored iteration).
	Iters int
	// StartIter is the first iteration executed (restored trials resume
	// mid-sequence).
	StartIter int
}

// RecoverChecks are the acceptance properties; CompareRecover treats a
// true-in-baseline, false-now transition as a hard regression.
type RecoverChecks struct {
	// Identical: resumed results (kill path and torn path) are bitwise
	// equal to the clean run's.
	Identical bool
	// TornSkipped: the corrupted newest generation was detected, skipped
	// and reported — never silently loaded.
	TornSkipped bool
	// RestoreReported: the restore surfaced generation, payload bytes
	// and wall time.
	RestoreReported bool
	// KillFired: the chaos plan actually killed a rank mid-run.
	KillFired bool
}

// RecoverResult aggregates the experiment.
type RecoverResult struct {
	Tasks     int
	Iters     int
	CkptEvery int
	Seed      int64

	Clean       RecoverRun
	Killed      RecoverRun
	Resumed     RecoverRun
	TornResumed RecoverRun

	// RestoreGen / RestoreBytes / RestoreMs describe the post-kill
	// restore; TornGen is the generation that was corrupted and
	// TornRestoreGen the (older) one the torn-path restore fell back to,
	// with TornSkippedGens invalid generations passed over.
	RestoreGen      uint64
	RestoreBytes    int64
	RestoreMs       float64
	TornGen         uint64
	TornRestoreGen  uint64
	TornSkippedGens int

	Checks RecoverChecks
}

// recObs collects ckpt.Observer outcomes for the checks.
type recObs struct {
	mu       sync.Mutex
	restores int
	skips    int
}

func (o *recObs) CheckpointDone(gen uint64, bytes int64, d time.Duration, err error) {}

func (o *recObs) RestoreDone(gen uint64, bytes int64, d time.Duration, skipped int, err error) {
	o.mu.Lock()
	if err == nil {
		o.restores++
	}
	o.mu.Unlock()
}

func (o *recObs) GenerationSkipped(gen uint64, reason string) {
	o.mu.Lock()
	o.skips++
	o.mu.Unlock()
}

// RunRecover runs the crash-recovery experiment in a temporary
// checkpoint directory. The seed fixes the chaos schedule.
func RunRecover(p Profile, seed int64) (*RecoverResult, error) {
	machine := topology.HarpertownCluster(2)
	iters := 36
	entries := 512
	if p == Full {
		machine = topology.NehalemEX4Scaled()
		iters = 120
		entries = 4096
	}
	tasks := machine.TotalCores()
	every := iters / 6
	if every < 1 {
		every = 1
	}
	out := &RecoverResult{Tasks: tasks, Iters: iters, CkptEvery: every, Seed: seed}

	dir, err := os.MkdirTemp("", "hlsrecover")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ckptDir := filepath.Join(dir, "ckpt")
	winDir := filepath.Join(dir, "win")

	// trial runs the workload from whatever iteration the restore (if
	// any) hands back, checkpointing every `every` iterations. Each
	// rank's results vector rides in the checkpoint, so a resumed run
	// ends with the full history. Returns rank 0's results.
	type trialOut struct {
		results []float64
		run     RecoverRun
		info    ckpt.RestoreInfo
	}
	trial := func(mode string, inj *chaos.Injector, restore bool, obs ckpt.Observer) (*trialOut, error) {
		var hooks mpi.Hooks
		var hlsObs []hls.SyncObserver
		if t := ActiveTelemetry(); t != nil {
			hooks = t.MPI
			hlsObs = append(hlsObs, t.HLS)
		}
		if inj != nil {
			if hooks != nil {
				hooks = mpi.MultiHooks(hooks, inj)
			} else {
				hooks = inj
			}
			hlsObs = append(hlsObs, inj)
		}
		w, err := mpi.NewWorld(mpi.Config{NumTasks: tasks, Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 5 * time.Minute, Hooks: hooks})
		if err != nil {
			return nil, err
		}
		reg := hls.New(w, hls.WithObserver(hls.MultiObserver(hlsObs...)))
		table := hls.Declare[float64](reg, "rec_table", topology.Node, entries,
			hls.WithInit(func(inst int, data []float64) {
				for i := range data {
					data[i] = float64(i % 13)
				}
			}))
		co := ckpt.New(ckpt.Config{Dir: ckptDir, Observer: obs})

		state := make([][]float64, tasks)
		results := make([][]float64, tasks)
		iterAt := make([][]int64, tasks)
		for r := 0; r < tasks; r++ {
			state[r] = make([]float64, 64)
			for j := range state[r] {
				state[r][j] = float64(r*64 + j)
			}
			results[r] = make([]float64, iters)
			iterAt[r] = []int64{0}
		}

		to := &trialOut{run: RecoverRun{Mode: mode}}
		var regOnce sync.Once
		start := time.Now()
		runErr := w.Run(func(task *mpi.Task) error {
			win := rma.WinAllocate[float64](task, nil, 32,
				rma.WithName("recwin"), rma.WithPersist(winDir))
			regOnce.Do(func() {
				co.Register(ckpt.Window(win))
				co.Register(ckpt.HLSVar(table))
				co.Register(ckpt.Slice("state", func(t *mpi.Task) []float64 { return state[t.Rank()] }))
				co.Register(ckpt.Slice("results", func(t *mpi.Task) []float64 { return results[t.Rank()] }))
				co.Register(ckpt.Slice("iter", func(t *mpi.Task) []int64 { return iterAt[t.Rank()] }))
			})
			r := task.Rank()
			startIter := 0
			if restore {
				info, err := co.Restore(task)
				if err != nil {
					return err
				}
				startIter = int(iterAt[r][0])
				if r == 0 {
					to.info = info
					to.run.StartIter = startIter
				}
			}
			seg := win.Local(task)
			sum := []float64{0}
			red := []float64{0}
			for i := startIter; i < iters; i++ {
				for j := range state[r] {
					state[r][j] = state[r][j]*1.0009765625 + float64(i%7)
				}
				for j := range seg {
					seg[j] += state[r][j%len(state[r])] * 0.125
				}
				table.Single(task, func(data []float64) {
					for j := range data {
						data[j] += 1
					}
				})
				s := 0.0
				for _, x := range state[r] {
					s += x
				}
				for _, x := range seg {
					s += x
				}
				for _, x := range table.Slice(task) {
					s += x
				}
				sum[0] = s
				mpi.Allreduce(task, nil, sum, red, mpi.OpSum)
				results[r][i] = red[0]
				reg.BarrierScope(task, topology.Node)
				iterAt[r][0] = int64(i + 1)
				if (i+1)%every == 0 {
					if _, err := co.Checkpoint(task); err != nil {
						return err
					}
				}
			}
			win.Free(task)
			return nil
		})
		to.run.Seconds = time.Since(start).Seconds()
		to.run.Iters = int(iterAt[0][0]) - to.run.StartIter
		to.results = results[0]
		if runErr != nil {
			return to, runErr
		}
		return to, nil
	}

	// Trial 1: clean baseline (fresh directories).
	clean, err := trial("clean", nil, false, nil)
	if err != nil {
		return nil, fmt.Errorf("recover: clean run: %w", err)
	}
	out.Clean = clean.run

	// Trial 2a: chaos-killed run over fresh directories. Rank 1 dies at
	// its mid-run barrier, after several checkpoints committed.
	os.RemoveAll(ckptDir)
	os.RemoveAll(winDir)
	inj := chaos.New(seed,
		chaos.Fault{Kind: chaos.RankKill, Rank: 1, Nth: int64(iters/2) + 1},
	)
	killed, err := trial("killed", inj, false, nil)
	if err == nil {
		return nil, fmt.Errorf("recover: chaos run survived its kill plan: %v", inj.Unfired())
	}
	if killed == nil {
		return nil, fmt.Errorf("recover: chaos run: %w", err)
	}
	out.Checks.KillFired = inj.Count(chaos.RankKill) >= 1 && len(inj.Unfired()) == 0
	out.Killed = killed.run

	// Trial 2b: respawn — a fresh world restores the latest generation
	// and finishes the run.
	obs := &recObs{}
	resumed, err := trial("resumed", nil, true, obs)
	if err != nil {
		return nil, fmt.Errorf("recover: resumed run: %w", err)
	}
	out.Resumed = resumed.run
	out.RestoreGen = resumed.info.Gen
	out.RestoreBytes = resumed.info.Bytes
	out.RestoreMs = float64(resumed.info.Duration.Nanoseconds()) / 1e6
	out.Checks.RestoreReported = resumed.info.Gen > 0 && resumed.info.Bytes > 0 &&
		resumed.info.Duration > 0 && obs.restores >= 1

	identical := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	out.Checks.Identical = identical(clean.results, resumed.results)

	// Trial 3: tear the newest committed generation (flip one payload
	// byte) and resume again — the restore must skip it, report the
	// skip, and fall back to the previous generation; results must still
	// match the clean run bit for bit.
	gens, err := ckpt.Inspect(ckptDir)
	if err != nil {
		return nil, fmt.Errorf("recover: inspect: %w", err)
	}
	var newest *ckpt.GenInfo
	for i := range gens {
		if gens[i].Valid {
			newest = &gens[i]
			break
		}
	}
	if newest == nil {
		return nil, fmt.Errorf("recover: no valid generation to corrupt")
	}
	out.TornGen = newest.Gen
	pay := filepath.Join(newest.Dir, newest.Ranks[0].File)
	b, err := os.ReadFile(pay)
	if err != nil {
		return nil, err
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(pay, b, 0o644); err != nil {
		return nil, err
	}

	tornObs := &recObs{}
	torn, err := trial("torn-resumed", nil, true, tornObs)
	if err != nil {
		return nil, fmt.Errorf("recover: torn-resumed run: %w", err)
	}
	out.TornResumed = torn.run
	out.TornRestoreGen = torn.info.Gen
	out.TornSkippedGens = torn.info.Skipped
	out.Checks.TornSkipped = torn.info.Gen > 0 && torn.info.Gen < out.TornGen &&
		torn.info.Skipped >= 1 && tornObs.skips >= 1
	out.Checks.Identical = out.Checks.Identical && identical(clean.results, torn.results)

	return out, nil
}

// PrintRecover renders the experiment.
func PrintRecover(w io.Writer, r *RecoverResult) {
	fprintf(w, "Durable recovery: checkpoint/restart under chaos (%d tasks, %d iterations, ckpt every %d, seed %d)\n",
		r.Tasks, r.Iters, r.CkptEvery, r.Seed)
	fprintf(w, "%-14s %10s %8s %10s\n", "trial", "seconds", "iters", "from-iter")
	for _, row := range []RecoverRun{r.Clean, r.Killed, r.Resumed, r.TornResumed} {
		fprintf(w, "%-14s %10.3f %8d %10d\n", row.Mode, row.Seconds, row.Iters, row.StartIter)
	}
	fprintf(w, "restore: generation %d, %d payload bytes, %.2f ms\n",
		r.RestoreGen, r.RestoreBytes, r.RestoreMs)
	fprintf(w, "torn path: corrupted gen %d -> restored gen %d (%d generation(s) skipped)\n",
		r.TornGen, r.TornRestoreGen, r.TornSkippedGens)
	status := func(ok bool, good, bad string) string {
		if ok {
			return good
		}
		return "[FAIL] " + bad
	}
	fprintf(w, "%s\n", status(r.Checks.KillFired,
		"chaos kill fired mid-run (plan fully delivered)",
		"chaos kill never fired — the recovery path was not exercised"))
	fprintf(w, "%s\n", status(r.Checks.RestoreReported,
		"restore reported generation, bytes and latency",
		"restore did not report its outcome"))
	fprintf(w, "%s\n", status(r.Checks.TornSkipped,
		"torn generation detected and skipped, older generation restored",
		"torn generation was not skipped — a corrupt checkpoint could load silently"))
	fprintf(w, "%s\n", status(r.Checks.Identical,
		"resumed results: bitwise identical to the unfailed run",
		"resumed results DIFFER from the unfailed run"))
}

// WriteRecoverCSV writes the experiment as machine-readable rows.
func WriteRecoverCSV(w io.Writer, r *RecoverResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"trial", "seconds", "iters", "start_iter", "identical", "torn_skipped", "restore_reported", "kill_fired"}); err != nil {
		return err
	}
	for _, row := range []RecoverRun{r.Clean, r.Killed, r.Resumed, r.TornResumed} {
		if err := cw.Write([]string{
			row.Mode,
			fmt.Sprintf("%.4f", row.Seconds),
			fmt.Sprintf("%d", row.Iters),
			fmt.Sprintf("%d", row.StartIter),
			fmt.Sprintf("%t", r.Checks.Identical),
			fmt.Sprintf("%t", r.Checks.TornSkipped),
			fmt.Sprintf("%t", r.Checks.RestoreReported),
			fmt.Sprintf("%t", r.Checks.KillFired),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRecoverJSON writes the full result snapshot (BENCH_recover.json).
func WriteRecoverJSON(w io.Writer, r *RecoverResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRecoverJSON parses a snapshot written by WriteRecoverJSON.
func ReadRecoverJSON(rd io.Reader) (*RecoverResult, error) {
	var r RecoverResult
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// CompareRecover prints an old/new comparison and returns an error if an
// acceptance check that held in the baseline fails now. Timings are
// informational; check regressions are hard failures.
func CompareRecover(w io.Writer, base, cur *RecoverResult) error {
	fprintf(w, "Recover comparison vs baseline (%d tasks, %d iters)\n", base.Tasks, base.Iters)
	fprintf(w, "  restore latency: %.2f -> %.2f ms\n", base.RestoreMs, cur.RestoreMs)
	return compareChecks(w, "recover", base.Checks, cur.Checks)
}
