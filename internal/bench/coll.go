package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"hls/internal/mpi"
	"hls/internal/topology"
	"hls/internal/wire"
)

// The -exp coll experiment measures the topology-aware two-level
// collectives and the wire transport's frame batching against the flat
// single-level algorithms. Two Worlds joined by real loopback TCP — the
// same framed-socket path two hlsworker processes on different machines
// take — host perNode ranks each under cyclic placement
// (topology.PinCyclicNodes: rank r on node r mod 2, the classic
// launcher layout where consecutive ranks straddle the node boundary).
// Under that placement almost every edge of a flat binomial tree
// crosses the wire, so the sweep exposes the O(ranks) vs O(nodes)
// cross-node frame behavior directly:
//
//   - algorithm flat: the PR 1 channel algorithms, every tree edge a
//     point-to-point message wherever its endpoints live.
//   - algorithm two-level: node-local reduction/fan-out on the shared
//     fast path, leaders-only exchange over the wire.
//
// Each (op, ranks-per-node, size) cell runs under flat and two-level,
// each with wire batching off and on (wire.Config.BatchWindow), and
// every rank folds every result it observes into an FNV-64a digest; the
// per-point digest combines the rank digests in rank order, so the
// bitwise-identity check is "all four ablations produced the same
// digest". Frames are counted by snapshotting both transports'
// FramesSent around the measured loop (the window includes two barrier
// alignments, amortized across the iterations). The JSON snapshot
// (BENCH_coll.json) carries Checks, the acceptance booleans CI tracks
// against the committed baseline.

// collBatchWindow is the flush window for the batched ablations: long
// enough to coalesce a collective's burst toward one peer, short enough
// to bound the latency it adds to each tree hop.
const collBatchWindow = 100 * time.Microsecond

// CollPoint is one collective measurement.
type CollPoint struct {
	Op        string `json:"op"`             // bcast | allreduce
	PerNode   int    `json:"ranks_per_node"` // ranks hosted by each of the two processes
	Bytes     int    `json:"bytes"`          // payload bytes per rank
	Algorithm string `json:"algorithm"`      // flat | two-level
	Batched   bool   `json:"batched"`

	NsPerOp     float64 `json:"ns_per_op"`
	FramesPerOp float64 `json:"frames_per_op"` // cross-node frames per operation, both directions
	// BatchFill is the mean sub-frames per Batch container (0 when
	// batching is off or never engaged); the raw counters it derives
	// from ride along so aggregates stay exact.
	BatchFill       float64 `json:"batch_fill,omitempty"`
	BatchContainers uint64  `json:"batch_containers,omitempty"`
	BatchMessages   uint64  `json:"batch_messages,omitempty"`
	// TwoLevelOps counts collectives that took the two-level path,
	// summed over every rank in both processes.
	TwoLevelOps uint64 `json:"two_level_ops,omitempty"`
	// Digest combines every rank's FNV-64a over the results it observed,
	// in rank order: ablations of the same cell must agree exactly.
	Digest      string `json:"digest"`
	Reconnects  uint64 `json:"reconnects,omitempty"`
	Outstanding int64  `json:"pool_outstanding"`
}

// CollChecks are the experiment's acceptance criteria.
type CollChecks struct {
	// TwoLevelEngaged: every two-level point actually routed its
	// collectives through the decomposition, and no flat point did.
	TwoLevelEngaged bool `json:"two_level_engaged"`
	// FrameCut2x: at the widest node (most ranks per process), unbatched,
	// two-level moved at most half the cross-node frames per Bcast and
	// per Allreduce that flat did.
	FrameCut2x bool `json:"frame_cut_2x"`
	// BatchFillAbove2: across the small-message batched points, the
	// aggregate mean batch fill exceeds 2 messages per container.
	BatchFillAbove2 bool `json:"batch_fill_above_2"`
	// BitwiseIdentical: every (op, ranks, size) cell produced the same
	// digest under flat/two-level x unbatched/batched.
	BitwiseIdentical bool `json:"bitwise_identical"`
	// CleanWire: every point moved frames and finished without a single
	// reconnect.
	CleanWire bool `json:"clean_wire"`
	// NoLeakedBuffers: every run ends with zero pooled eager buffers
	// outstanding in either process.
	NoLeakedBuffers bool `json:"no_leaked_buffers"`
}

// CollResult is the full -exp coll output.
type CollResult struct {
	Profile   string      `json:"profile"`
	Nodes     int         `json:"nodes"`
	Placement string      `json:"placement"` // pin policy of the sweep
	Points    []CollPoint `json:"points"`
	Checks    CollChecks  `json:"checks"`
}

// runCollPoint measures one cell: two Worlds over loopback TCP, perNode
// ranks each under cyclic placement, iters operations of op.
func runCollPoint(op string, perNode, nbytes, iters int, mode mpi.CollectiveMode, batched bool) (CollPoint, error) {
	const nodes = 2
	m, err := topology.New(topology.Spec{
		Name: "collbench", Nodes: nodes, SocketsPerNode: 1,
		CoresPerSocket: perNode, ThreadsPerCore: 1,
	})
	if err != nil {
		return CollPoint{}, err
	}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return CollPoint{}, err
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln0.Close()
		return CollPoint{}, err
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	numTasks := nodes * perNode
	worlds := make([]*mpi.World, nodes)
	for self, ln := range []net.Listener{ln0, ln1} {
		wcfg := wire.Config{Addrs: addrs, Self: self, WorldKey: 1}
		if batched {
			wcfg.BatchWindow = collBatchWindow
		}
		tr, err := wire.NewTCP(wcfg, ln)
		if err != nil {
			return CollPoint{}, err
		}
		worlds[self], err = mpi.NewWorld(mpi.Config{
			NumTasks: numTasks, Machine: m, Pin: topology.PinCyclicNodes,
			Wire:        &mpi.WireConfig{Transport: tr},
			Collectives: mode,
			Timeout:     5 * time.Minute, Hooks: telemetryHooks(),
		})
		if err != nil {
			return CollPoint{}, err
		}
	}

	frames := func() uint64 {
		var total uint64
		for _, w := range worlds {
			if st, ok := w.WireStats(); ok {
				total += st.FramesSent
			}
		}
		return total
	}

	elems := nbytes / 8
	if elems < 1 {
		elems = 1
	}
	digests := make([]uint64, numTasks)
	var before, after uint64
	var elapsed time.Duration
	body := func(tk *mpi.Task) error {
		n, r := tk.Size(), tk.Rank()
		h := fnv.New64a()
		var scratch [8]byte
		fold := func(vals []int64) {
			for _, v := range vals {
				for b := 0; b < 8; b++ {
					scratch[b] = byte(uint64(v) >> (8 * b))
				}
				h.Write(scratch[:]) //nolint:errcheck // fnv never fails
			}
		}
		buf := make([]int64, elems)
		out := make([]int64, elems)
		step := func(i int, measure bool) error {
			switch op {
			case "bcast":
				// The root rotates, so the tree is rebuilt around every
				// rank in turn — the average flat cost, not the best case.
				root := i % n
				if r == root {
					for j := range buf {
						buf[j] = int64(i*1000003 + j)
					}
				} else {
					for j := range buf {
						buf[j] = 0
					}
				}
				mpi.Bcast(tk, nil, buf, root)
				if measure {
					fold(buf)
				}
			case "allreduce":
				for j := range buf {
					buf[j] = int64((r+1)*(i+7) + j)
				}
				mpi.Allreduce(tk, nil, buf, out, mpi.OpSum)
				if measure {
					fold(out)
				}
			default:
				return fmt.Errorf("unknown op %q", op)
			}
			return nil
		}
		for i := 0; i < 5; i++ { // warm the connections and pools
			if err := step(i, false); err != nil {
				return err
			}
		}
		mpi.Barrier(tk, nil)
		if r == 0 {
			before = frames()
		}
		mpi.Barrier(tk, nil)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := step(i, true); err != nil {
				return err
			}
		}
		mpi.Barrier(tk, nil)
		if r == 0 {
			after = frames()
			elapsed = time.Since(start)
		}
		digests[r] = h.Sum64()
		return nil
	}

	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			errs[i] = w.Run(body)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return CollPoint{}, fmt.Errorf("world %d: %w", i, err)
		}
	}

	alg := "flat"
	if mode == mpi.CollTwoLevel {
		alg = "two-level"
	}
	pt := CollPoint{
		Op: op, PerNode: perNode, Bytes: nbytes, Algorithm: alg, Batched: batched,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		FramesPerOp: float64(after-before) / float64(iters),
	}
	for _, w := range worlds {
		if st, ok := w.WireStats(); ok {
			pt.Reconnects += st.Reconnects
			pt.BatchContainers += st.BatchesSent
			pt.BatchMessages += st.BatchedFrames
		}
		pt.TwoLevelOps += uint64(w.Stats().TwoLevelCollectives)
		pt.Outstanding += w.Stats().EagerPoolOutstanding
	}
	if pt.BatchContainers > 0 {
		pt.BatchFill = float64(pt.BatchMessages) / float64(pt.BatchContainers)
	}
	comb := fnv.New64a()
	var scratch [8]byte
	for _, d := range digests {
		for b := 0; b < 8; b++ {
			scratch[b] = byte(d >> (8 * b))
		}
		comb.Write(scratch[:]) //nolint:errcheck
	}
	pt.Digest = fmt.Sprintf("%016x", comb.Sum64())
	return pt, nil
}

// RunColl runs the collective experiment: op x ranks-per-process x size
// x algorithm x batching, all over two loopback-TCP processes with
// cyclic rank placement.
func RunColl(p Profile) (*CollResult, error) {
	iters := 80
	if p == Full {
		iters = 400
	}
	res := &CollResult{
		Profile: p.String(), Nodes: 2,
		Placement: topology.PinCyclicNodes.String(),
	}
	for _, op := range []string{"bcast", "allreduce"} {
		for _, perNode := range []int{2, 8} {
			for _, nbytes := range []int{8, 1024} {
				for _, mode := range []mpi.CollectiveMode{mpi.CollChannels, mpi.CollTwoLevel} {
					for _, batched := range []bool{false, true} {
						pt, err := runCollPoint(op, perNode, nbytes, iters, mode, batched)
						if err != nil {
							return nil, fmt.Errorf("%s x%d %dB %v batched=%v: %w",
								op, perNode, nbytes, mode, batched, err)
						}
						res.Points = append(res.Points, pt)
					}
				}
			}
		}
	}
	res.Checks = computeCollChecks(res)
	return res, nil
}

func computeCollChecks(res *CollResult) CollChecks {
	ch := CollChecks{
		TwoLevelEngaged: true, BitwiseIdentical: true,
		CleanWire: true, NoLeakedBuffers: true,
	}
	maxPerNode, minBytes := 0, 0
	for _, pt := range res.Points {
		if pt.PerNode > maxPerNode {
			maxPerNode = pt.PerNode
		}
		if minBytes == 0 || pt.Bytes < minBytes {
			minBytes = pt.Bytes
		}
	}
	// flatFrames/twoFrames: per-op frame cost at the widest node,
	// unbatched, keyed by op.
	flatFrames := map[string]float64{}
	twoFrames := map[string]float64{}
	digests := map[string]map[string]bool{} // cell -> distinct digests
	var batchMsgs, batchConts float64
	sawSmallBatched := false
	for _, pt := range res.Points {
		if pt.FramesPerOp <= 0 || pt.Reconnects != 0 {
			ch.CleanWire = false
		}
		if pt.Outstanding != 0 {
			ch.NoLeakedBuffers = false
		}
		twoLevel := pt.Algorithm == "two-level"
		if twoLevel && pt.TwoLevelOps == 0 {
			ch.TwoLevelEngaged = false
		}
		if !twoLevel && pt.TwoLevelOps != 0 {
			ch.TwoLevelEngaged = false
		}
		if pt.PerNode == maxPerNode && !pt.Batched {
			if twoLevel {
				twoFrames[pt.Op] = pt.FramesPerOp
			} else {
				flatFrames[pt.Op] = pt.FramesPerOp
			}
		}
		if pt.Batched && pt.Bytes == minBytes {
			sawSmallBatched = true
			batchMsgs += float64(pt.BatchMessages)
			batchConts += float64(pt.BatchContainers)
		}
		cell := fmt.Sprintf("%s/%d/%d", pt.Op, pt.PerNode, pt.Bytes)
		if digests[cell] == nil {
			digests[cell] = map[string]bool{}
		}
		digests[cell][pt.Digest] = true
	}
	// FrameCut2x must hold for every op measured at the widest node.
	ch.FrameCut2x = len(flatFrames) > 0 && len(twoFrames) == len(flatFrames)
	for op, flat := range flatFrames {
		if two := twoFrames[op]; two <= 0 || flat < 2*two {
			ch.FrameCut2x = false
		}
	}
	ch.BatchFillAbove2 = sawSmallBatched && batchConts > 0 && batchMsgs/batchConts > 2
	for _, set := range digests {
		if len(set) > 1 {
			ch.BitwiseIdentical = false
		}
	}
	return ch
}

// PrintColl renders the measurements and the acceptance checks.
func PrintColl(w io.Writer, res *CollResult) {
	fprintf(w, "Two-level collectives vs flat, %d nodes, %s placement\n", res.Nodes, res.Placement)
	fprintf(w, "%-10s %6s %6s %-9s %-7s %10s %10s %8s %12s\n",
		"op", "ranks", "bytes", "alg", "batch", "ns/op", "frames/op", "fill", "digest")
	for _, pt := range res.Points {
		batch := "off"
		if pt.Batched {
			batch = "on"
		}
		fprintf(w, "%-10s %6d %6d %-9s %-7s %10.0f %10.2f %8.2f %12s\n",
			pt.Op, 2*pt.PerNode, pt.Bytes, pt.Algorithm, batch,
			pt.NsPerOp, pt.FramesPerOp, pt.BatchFill, pt.Digest[:12])
	}
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"two-level decomposition engaged exactly when selected", res.Checks.TwoLevelEngaged},
		{"two-level cuts cross-node frames/op by >=2x at the widest node", res.Checks.FrameCut2x},
		{"mean batch fill above 2 messages/frame on the small-message sweep", res.Checks.BatchFillAbove2},
		{"results bitwise-identical across all ablations", res.Checks.BitwiseIdentical},
		{"clean wire runs: frames flowed, zero reconnects", res.Checks.CleanWire},
		{"no pooled buffers leaked in either process", res.Checks.NoLeakedBuffers},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

// WriteCollCSV writes the measurements as one flat table.
func WriteCollCSV(w io.Writer, res *CollResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"op", "ranks_per_node", "bytes", "algorithm", "batched",
		"ns_per_op", "frames_per_op", "batch_fill", "two_level_ops",
		"digest", "reconnects", "pool_outstanding",
	}); err != nil {
		return err
	}
	for _, pt := range res.Points {
		if err := cw.Write([]string{
			pt.Op, strconv.Itoa(pt.PerNode), strconv.Itoa(pt.Bytes),
			pt.Algorithm, strconv.FormatBool(pt.Batched),
			fmt.Sprintf("%.1f", pt.NsPerOp),
			fmt.Sprintf("%.2f", pt.FramesPerOp),
			fmt.Sprintf("%.2f", pt.BatchFill),
			strconv.FormatUint(pt.TwoLevelOps, 10),
			pt.Digest,
			strconv.FormatUint(pt.Reconnects, 10),
			strconv.FormatInt(pt.Outstanding, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCollJSON writes the full result snapshot (BENCH_coll.json).
func WriteCollJSON(w io.Writer, res *CollResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadCollJSON parses a snapshot written by WriteCollJSON.
func ReadCollJSON(r io.Reader) (*CollResult, error) {
	var res CollResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareColl prints an old/new comparison and returns an error if an
// acceptance check that held in the baseline fails now. Timing and
// frame-count deltas are informational; check regressions are hard
// failures.
func CompareColl(w io.Writer, base, cur *CollResult) error {
	delta := func(old, new float64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	fprintf(w, "Coll comparison vs baseline (%s profile)\n", base.Profile)
	for _, b := range base.Points {
		for _, c := range cur.Points {
			if b.Op == c.Op && b.PerNode == c.PerNode && b.Bytes == c.Bytes &&
				b.Algorithm == c.Algorithm && b.Batched == c.Batched {
				fprintf(w, "  %-10s x%-2d %5dB %-9s batch=%-5v %9.0f -> %9.0f ns/op %8s  frames %6.2f -> %6.2f\n",
					b.Op, b.PerNode, b.Bytes, b.Algorithm, b.Batched,
					b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp),
					b.FramesPerOp, c.FramesPerOp)
			}
		}
	}
	return compareChecks(w, "coll", base.Checks, cur.Checks)
}
