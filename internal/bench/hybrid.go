package bench

import (
	"io"
	"time"

	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/omp"
	"hls/internal/topology"
)

// HybridResult compares the paper's two routes to memory reduction on one
// 8-core node (§I): pure MPI with an HLS-shared table, versus the
// master-only hybrid (1 MPI task, 8 OpenMP threads) where every
// communication phase is executed by a single thread. Both save the same
// memory; the hybrid pays Amdahl on the serial communication sections —
// the argument that motivates HLS.
//
// Both variants really execute, and each worker counts the work units it
// performs between synchronization points. The comparison metric is the
// critical path: the sum over steps of the slowest participant's work.
// (Wall time is reported for context only — on a machine with fewer
// physical CPUs than workers it reflects total work, not the critical
// path, and this harness commonly runs on small VMs.)
type HybridResult struct {
	// CriticalPath work units per variant: what an 8-core node's wall
	// clock would track.
	PureMPIHLSPath   int64
	HybridMasterPath int64
	// Wall times, context only.
	PureMPIHLSWall   time.Duration
	HybridMasterWall time.Duration
	// CommFraction is the communication share of a step's total work.
	CommFraction float64
}

// commWork simulates a communication phase: touch n buffer cells the way
// a progress engine would, returning the work units spent.
func commWork(buf []float64, n int) int64 {
	for i := 0; i < n; i++ {
		buf[i%len(buf)] = buf[i%len(buf)]*0.999 + 1e-3
	}
	return int64(n)
}

// computeWork simulates a compute phase over [lo, hi).
func computeWork(data []float64, lo, hi int) int64 {
	for i := lo; i < hi; i++ {
		x := data[i]
		data[i] = x + 0.5*(1.0-x*x)*1e-3
	}
	return int64(hi - lo)
}

// RunHybridAblation executes both variants with identical total work:
// `steps` iterations of (compute over `cells` cells + a communication
// phase of commCells units).
func RunHybridAblation(p Profile) (HybridResult, error) {
	steps := 20
	cells := 1 << 18
	commCells := 1 << 16
	if p == Full {
		steps = 100
	}
	machine := topology.HarpertownCluster(1) // 8 cores
	nCores := machine.TotalCores()

	var res HybridResult
	res.CommFraction = float64(commCells) / float64(cells+commCells)

	// Variant A: 8 MPI tasks, table shared via HLS; compute and
	// communication both spread over all tasks. Critical path per step =
	// max over tasks of (their compute + their comm).
	{
		w, err := mpi.NewWorld(mpi.Config{NumTasks: nCores, Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 10 * time.Minute,
			Hooks: telemetryHooks()})
		if err != nil {
			return res, err
		}
		reg := hls.New(w, telemetryHLSOptions()...)
		table := hls.Declare[float64](reg, "hyb_table", topology.Node, 4096)
		perTaskWork := make([]int64, nCores)
		start := time.Now()
		if err := w.Run(func(task *mpi.Task) error {
			table.Single(task, func(d []float64) {
				for i := range d {
					d[i] = 1
				}
			})
			local := make([]float64, cells/nCores)
			comm := make([]float64, 1024)
			for s := 0; s < steps; s++ {
				units := computeWork(local, 0, len(local))
				units += commWork(comm, commCells/nCores)
				perTaskWork[task.Rank()] += units
				mpi.Barrier(task, nil)
			}
			return nil
		}); err != nil {
			return res, err
		}
		res.PureMPIHLSWall = time.Since(start)
		// Homogeneous tasks: the per-step max equals any task's share.
		for _, u := range perTaskWork {
			if u > res.PureMPIHLSPath {
				res.PureMPIHLSPath = u
			}
		}
	}

	// Variant B: master-only hybrid — one MPI task, 8 OpenMP threads;
	// compute is parallel, the whole communication phase runs on thread 0
	// while the team waits. Critical path per step = compute/8 + comm.
	{
		w, err := mpi.NewWorld(mpi.Config{NumTasks: 1, Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 10 * time.Minute,
			Hooks: telemetryHooks()})
		if err != nil {
			return res, err
		}
		perThreadWork := make([]int64, nCores)
		start := time.Now()
		if err := w.Run(func(task *mpi.Task) error {
			local := make([]float64, cells)
			comm := make([]float64, 1024)
			omp.Parallel(task, nCores, func(tc *omp.ThreadCtx) {
				chunk := len(local) / tc.NumThreads()
				lo := tc.ThreadNum() * chunk
				for s := 0; s < steps; s++ {
					units := computeWork(local, lo, lo+chunk)
					tc.Barrier()
					if tc.ThreadNum() == 0 {
						units += commWork(comm, commCells) // master-only: serial
					}
					perThreadWork[tc.ThreadNum()] += units
					tc.Barrier()
				}
			})
			return nil
		}); err != nil {
			return res, err
		}
		res.HybridMasterWall = time.Since(start)
		// Every step's critical path runs through the master: each
		// barrier-to-barrier segment's max is the compute chunk, then the
		// master's serial comm. With homogeneous compute, that is exactly
		// the master's total.
		res.HybridMasterPath = perThreadWork[0]
	}
	return res, nil
}

// PrintHybrid renders the comparison.
func PrintHybrid(w io.Writer, r HybridResult) {
	fprintf(w, "Hybrid ablation (one 8-core node, %.0f%% of step work is communication):\n", 100*r.CommFraction)
	fprintf(w, "  pure MPI + HLS table      : critical path %12d units   (wall %v)\n",
		r.PureMPIHLSPath, r.PureMPIHLSWall.Round(time.Microsecond))
	fprintf(w, "  master-only hybrid (1x8)  : critical path %12d units   (wall %v)\n",
		r.HybridMasterPath, r.HybridMasterWall.Round(time.Microsecond))
	fprintf(w, "  hybrid/pure ratio         : %.2fx longer critical path (Amdahl on the serial comm phase)\n",
		float64(r.HybridMasterPath)/float64(r.PureMPIHLSPath))
	fprintf(w, "(both variants hold one table copy; HLS gets the memory saving without serializing\n")
	fprintf(w, " communication, §I; wall times on machines with < 8 CPUs reflect total work instead)\n")
}
