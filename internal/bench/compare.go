package bench

import (
	"fmt"
	"io"
	"reflect"
	"strings"
)

// compareChecks is the shared tail of every Compare* helper: given the
// baseline's and the current run's acceptance-check struct (a flat
// struct of bools), it flags every check that held in the baseline but
// fails now. Timing deltas are each experiment's own informational
// business; this is the one hard-failure contract they all share.
//
// Check names come from the field's json tag when present (the same
// name the snapshot file uses), else from the snake-cased field name.
// A check that was already false in the baseline never regresses — new
// checks can land false and tighten later without breaking CI.
func compareChecks(w io.Writer, kind string, base, cur any) error {
	bv := reflect.ValueOf(base)
	cv := reflect.ValueOf(cur)
	if bv.Type() != cv.Type() || bv.Kind() != reflect.Struct {
		return fmt.Errorf("%s checks: mismatched snapshot types %T vs %T", kind, base, cur)
	}
	var regressed []string
	t := bv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Bool || !f.IsExported() {
			continue
		}
		if bv.Field(i).Bool() && !cv.Field(i).Bool() {
			regressed = append(regressed, checkName(f))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%s checks regressed vs baseline: %v", kind, regressed)
	}
	fprintf(w, "all baseline checks still hold\n")
	return nil
}

// checkName derives the reported name of a check field.
func checkName(f reflect.StructField) string {
	if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag != "" && tag != "-" {
		return tag
	}
	return snakeCase(f.Name)
}

// snakeCase converts a Go field name (FrameCut2x) to the snapshot-file
// style (frame_cut_2x) used in regression reports.
func snakeCase(s string) string {
	var b strings.Builder
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}
