package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// syncFixture is a small in-memory result with every check passing.
func syncFixture() *SyncResult {
	res := &SyncResult{
		Profile: "quick",
		Barriers: []SyncBarrierPoint{
			{Impl: "mutex", Tasks: 16, Scope: "node", NsPerOp: 100},
			{Impl: "mutex", Tasks: 32, Scope: "node", NsPerOp: 200},
			{Impl: "tree", Tasks: 16, Scope: "node", NsPerOp: 80},
			{Impl: "tree", Tasks: 32, Scope: "node", NsPerOp: 150},
		},
		Collectives: []SyncCollPoint{
			{Op: "barrier", Mode: "shared", Tasks: 32, Elems: 0, NsPerOp: 10, AllocsPerOp: 0},
			{Op: "bcast", Mode: "channels", Tasks: 32, Elems: 8, NsPerOp: 50},
			{Op: "bcast", Mode: "shared", Tasks: 32, Elems: 8, NsPerOp: 20, AllocsPerOp: 0},
			{Op: "bcast", Mode: "channels", Tasks: 32, Elems: 65536, NsPerOp: 900},
			{Op: "bcast", Mode: "shared", Tasks: 32, Elems: 65536, NsPerOp: 400},
			{Op: "allreduce", Mode: "channels", Tasks: 32, Elems: 8, NsPerOp: 60},
			{Op: "allreduce", Mode: "shared", Tasks: 32, Elems: 8, NsPerOp: 25, AllocsPerOp: 0},
			{Op: "allreduce", Mode: "channels", Tasks: 32, Elems: 65536, NsPerOp: 1000},
			{Op: "allreduce", Mode: "shared", Tasks: 32, Elems: 65536, NsPerOp: 300},
		},
	}
	res.Checks = computeSyncChecks(res)
	return res
}

func TestSyncChecksAndJSONRoundTrip(t *testing.T) {
	res := syncFixture()
	c := res.Checks
	if !c.TreeBeatsMutex16 || !c.TreeBeatsMutex32 || !c.SharedBeatsChannelsLarge ||
		!c.SharedAllocFree || !c.SharedNoMessages {
		t.Fatalf("fixture checks = %+v, want all true", c)
	}

	var buf bytes.Buffer
	if err := WriteSyncJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSyncJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Barriers) != len(res.Barriers) || len(back.Collectives) != len(res.Collectives) {
		t.Fatalf("round trip lost points: %d/%d barriers, %d/%d collectives",
			len(back.Barriers), len(res.Barriers), len(back.Collectives), len(res.Collectives))
	}
	if back.Checks != res.Checks {
		t.Fatalf("round trip checks = %+v, want %+v", back.Checks, res.Checks)
	}
}

func TestCompareSyncFlagsRegressions(t *testing.T) {
	base := syncFixture()
	var out bytes.Buffer
	if err := CompareSync(&out, base, syncFixture()); err != nil {
		t.Fatalf("identical results compared unequal: %v", err)
	}
	if !strings.Contains(out.String(), "all baseline checks still hold") {
		t.Errorf("missing pass line in:\n%s", out.String())
	}

	// Invert a latency so the tree barrier loses at 32 tasks: the check
	// regresses and CompareSync must fail.
	bad := syncFixture()
	for i := range bad.Barriers {
		if bad.Barriers[i].Impl == "tree" && bad.Barriers[i].Tasks == 32 {
			bad.Barriers[i].NsPerOp = 500
		}
	}
	bad.Checks = computeSyncChecks(bad)
	out.Reset()
	err := CompareSync(&out, base, bad)
	if err == nil || !strings.Contains(err.Error(), "tree_beats_mutex_32") {
		t.Fatalf("regressed compare error = %v, want tree_beats_mutex_32 failure", err)
	}
}

func TestSyncBaselineSnapshotParses(t *testing.T) {
	f, err := os.Open("testdata/BENCH_sync_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ReadSyncJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	c := base.Checks
	if !c.TreeBeatsMutex16 || !c.TreeBeatsMutex32 || !c.SharedBeatsChannelsLarge ||
		!c.SharedAllocFree || !c.SharedNoMessages {
		t.Fatalf("committed baseline checks = %+v, want all true", c)
	}
	if got := computeSyncChecks(base); got != c {
		t.Fatalf("recomputed checks %+v disagree with stored %+v", got, c)
	}
}

func TestWriteSyncCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyncCSV(&buf, syncFixture()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"kind,impl_or_mode,op", "barrier,tree,barrier,32", "collective,shared,allreduce,32"} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}
