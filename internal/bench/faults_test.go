package bench

import (
	"strings"
	"testing"
)

// TestChaosFaultsExperiment runs the quick clean-vs-chaos comparison and
// asserts its acceptance properties: demotions happened, the degraded
// run produced bitwise-identical results, and the report renders.
func TestChaosFaultsExperiment(t *testing.T) {
	res, err := RunFaults(Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Demotions == 0 {
		t.Error("chaos run demoted nothing")
	}
	if res.Chaos.ExtraMB <= 0 {
		t.Error("demotion reported no extra footprint")
	}
	if !res.Identical {
		t.Error("degraded results differ from clean run (§III equivalence broken)")
	}
	if res.Injected["alloc-fail"] == 0 {
		t.Error("no allocation failures recorded")
	}
	var b strings.Builder
	PrintFaults(&b, res)
	for _, want := range []string{"demotions", "bitwise identical", "alloc-fail"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
	var csv strings.Builder
	if err := WriteFaultsCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "chaos,") {
		t.Errorf("CSV missing chaos row:\n%s", csv.String())
	}
}
