package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"hls/internal/mpi"
	"hls/internal/topology"
	"hls/internal/wire"
)

// The -exp net experiment measures the inter-node wire transport against
// the in-process datapath it extends. Two paths, same ping-pong:
//
//   - local: both ranks in one World — the channel/pool fast path every
//     message takes when sender and receiver share a process.
//   - wire: the ranks split across two Worlds joined by real loopback
//     TCP, so every message is framed, written to a socket, read back
//     and claimed — exactly what two hlsworker processes on different
//     machines would do, minus the physical network.
//
// The wire path sweeps sizes across eager limits on both sides of each
// size, locating the eager/rendezvous crossover under frame + socket
// overhead (the handshake costs three frames against eager's one, so
// the crossover sits further right than in-process). The JSON snapshot
// (BENCH_net.json) carries Checks, the acceptance booleans CI tracks
// against the committed baseline.

// NetPoint is one transport measurement.
type NetPoint struct {
	Path       string  `json:"path"` // local | wire
	Bytes      int     `json:"bytes"`
	EagerLimit int     `json:"eager_limit"`
	Protocol   string  `json:"protocol"` // eager | rendezvous
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s"`
	// Wire-path counters from the node-0 transport (zero on local runs).
	FramesSent    uint64 `json:"frames_sent,omitempty"`
	WireBytesSent uint64 `json:"wire_bytes_sent,omitempty"`
	Reconnects    uint64 `json:"reconnects,omitempty"`
	// Outstanding pooled eager buffers after the run (must be zero).
	Outstanding int64 `json:"pool_outstanding"`
}

// NetChecks are the experiment's acceptance criteria.
type NetChecks struct {
	// WireBothProtocols: the wire path was measured under both the eager
	// and the rendezvous protocol.
	WireBothProtocols bool `json:"wire_both_protocols"`
	// LocalWinsSmall: at the smallest size the in-process path beats the
	// socket round trip — same-process ranks must keep the fast path.
	LocalWinsSmall bool `json:"local_wins_small"`
	// CleanWire: every wire run moved frames and finished without a
	// single reconnect (loopback TCP under no injected faults).
	CleanWire bool `json:"clean_wire"`
	// NoLeakedBuffers: every run ends with zero pooled buffers
	// outstanding, on both sides of the socket.
	NoLeakedBuffers bool `json:"no_leaked_buffers"`
}

// NetResult is the full -exp net output.
type NetResult struct {
	Profile     string `json:"profile"`
	EagerLimits []int  `json:"eager_limits"`
	// WireCrossoverBytes is the smallest swept size at which rendezvous
	// beat eager over the wire; 0 when eager won everywhere both were
	// measured.
	WireCrossoverBytes int        `json:"wire_crossover_bytes"`
	Points             []NetPoint `json:"points"`
	Checks             NetChecks  `json:"checks"`
}

// netPingPongLocal times iters in-process round trips: two ranks, one
// World, no transport.
func netPingPongLocal(nbytes, eagerLimit, iters int) (NetPoint, error) {
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: 2, EagerLimit: eagerLimit,
		Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
	})
	if err != nil {
		return NetPoint{}, err
	}
	var perOp float64
	err = w.Run(func(tk *mpi.Task) error {
		if v, ok := netPingPongBody(tk, nbytes, iters); ok {
			perOp = v
		}
		return nil
	})
	pt := netPoint("local", nbytes, eagerLimit, perOp)
	pt.Outstanding = w.Stats().EagerPoolOutstanding
	return pt, err
}

// netPingPongBody is the shared measured loop: rank 0 against rank 1,
// warmed up, barrier-aligned, timed on rank 0. measured is true only on
// rank 0, so exactly one task across both worlds reports a figure.
func netPingPongBody(tk *mpi.Task, nbytes, iters int) (perOp float64, measured bool) {
	buf := make([]byte, nbytes)
	peer := tk.Rank() ^ 1
	step := func(tag int) {
		if tk.Rank() == 0 {
			mpi.Send(tk, nil, buf, peer, tag)
			mpi.Recv(tk, nil, buf, peer, tag)
		} else if tk.Rank() == 1 {
			mpi.Recv(tk, nil, buf, peer, tag)
			mpi.Send(tk, nil, buf, peer, tag)
		}
	}
	for i := 0; i < 20; i++ {
		step(0)
	}
	mpi.Barrier(tk, nil)
	start := time.Now()
	for i := 0; i < iters; i++ {
		step(1)
	}
	if tk.Rank() == 0 {
		perOp = float64(time.Since(start).Nanoseconds()) / float64(iters)
		measured = true
	}
	mpi.Barrier(tk, nil)
	return perOp, measured
}

func netPoint(path string, nbytes, eagerLimit int, perOp float64) NetPoint {
	pt := NetPoint{
		Path: path, Bytes: nbytes, EagerLimit: eagerLimit,
		Protocol: p2pProtocol(nbytes, eagerLimit), NsPerOp: perOp,
	}
	if perOp > 0 {
		pt.MBPerS = 2 * float64(nbytes) * 1000 / perOp // two messages per round trip
	}
	return pt
}

// netPingPongWire times the same round trip with the ranks split across
// two Worlds joined by loopback TCP — the full frame/socket/claim path.
func netPingPongWire(nbytes, eagerLimit, iters int) (NetPoint, error) {
	m, err := topology.New(topology.Spec{
		Name: "netbench", Nodes: 2, SocketsPerNode: 1,
		CoresPerSocket: 1, ThreadsPerCore: 1,
	})
	if err != nil {
		return NetPoint{}, err
	}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return NetPoint{}, err
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln0.Close()
		return NetPoint{}, err
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}
	worlds := make([]*mpi.World, 2)
	for self, ln := range []net.Listener{ln0, ln1} {
		tr, err := wire.NewTCP(wire.Config{Addrs: addrs, Self: self, WorldKey: 1}, ln)
		if err != nil {
			return NetPoint{}, err
		}
		worlds[self], err = mpi.NewWorld(mpi.Config{
			NumTasks: 2, EagerLimit: eagerLimit, Machine: m,
			Wire:    &mpi.WireConfig{Transport: tr},
			Timeout: 5 * time.Minute, Hooks: telemetryHooks(),
		})
		if err != nil {
			return NetPoint{}, err
		}
	}
	var perOp float64
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			errs[i] = w.Run(func(tk *mpi.Task) error {
				if v, ok := netPingPongBody(tk, nbytes, iters); ok {
					perOp = v
				}
				return nil
			})
		}(i, w)
	}
	wg.Wait()
	if err := errs[0]; err != nil {
		return NetPoint{}, err
	}
	if err := errs[1]; err != nil {
		return NetPoint{}, err
	}
	pt := netPoint("wire", nbytes, eagerLimit, perOp)
	if st, ok := worlds[0].WireStats(); ok {
		pt.FramesSent = st.FramesSent
		pt.WireBytesSent = st.BytesSent
		pt.Reconnects = st.Reconnects
	}
	for _, w := range worlds {
		pt.Outstanding += w.Stats().EagerPoolOutstanding
	}
	return pt, nil
}

// RunNet runs the transport experiment.
func RunNet(p Profile) (*NetResult, error) {
	iters, itersLarge := 200, 50
	if p == Full {
		iters, itersLarge = 2000, 500
	}
	sizes := []int{64, 512, 4096, 16384, 65536}
	limits := []int{1024, mpi.DefaultEagerLimit, 32768}
	res := &NetResult{Profile: p.String(), EagerLimits: limits}

	// Local baseline at the default limit.
	for _, nbytes := range sizes {
		n := iters
		if nbytes >= 16384 {
			n = itersLarge
		}
		pt, err := netPingPongLocal(nbytes, mpi.DefaultEagerLimit, n)
		if err != nil {
			return nil, fmt.Errorf("local %dB: %w", nbytes, err)
		}
		res.Points = append(res.Points, pt)
	}

	// Wire sweep: size x eager limit locates the protocol crossover
	// under frame + socket overhead.
	for _, limit := range limits {
		for _, nbytes := range sizes {
			n := iters
			if nbytes >= 16384 {
				n = itersLarge
			}
			pt, err := netPingPongWire(nbytes, limit, n)
			if err != nil {
				return nil, fmt.Errorf("wire %dB limit %d: %w", nbytes, limit, err)
			}
			res.Points = append(res.Points, pt)
		}
	}

	res.WireCrossoverBytes = computeNetCrossover(res)
	res.Checks = computeNetChecks(res)
	return res, nil
}

// computeNetCrossover finds the smallest wire-path size where the best
// rendezvous measurement beat the best eager one; 0 when eager held on.
func computeNetCrossover(res *NetResult) int {
	best := map[int]map[string]float64{} // size -> protocol -> min ns/op
	sizes := []int{}
	for _, pt := range res.Points {
		if pt.Path != "wire" || pt.NsPerOp <= 0 {
			continue
		}
		m := best[pt.Bytes]
		if m == nil {
			m = map[string]float64{}
			best[pt.Bytes] = m
			sizes = append(sizes, pt.Bytes)
		}
		if cur, ok := m[pt.Protocol]; !ok || pt.NsPerOp < cur {
			m[pt.Protocol] = pt.NsPerOp
		}
	}
	crossover := 0
	for _, size := range sizes { // appended in ascending sweep order
		m := best[size]
		e, okE := m["eager"]
		r, okR := m["rendezvous"]
		if okE && okR && r < e && (crossover == 0 || size < crossover) {
			crossover = size
		}
	}
	return crossover
}

func computeNetChecks(res *NetResult) NetChecks {
	ch := NetChecks{CleanWire: true, NoLeakedBuffers: true}
	var eager, rendez bool
	smallest := 0
	var localSmall, wireSmall float64
	for _, pt := range res.Points {
		if pt.Outstanding != 0 {
			ch.NoLeakedBuffers = false
		}
		if smallest == 0 || pt.Bytes < smallest {
			smallest = pt.Bytes
		}
		if pt.Path == "wire" {
			if pt.FramesSent == 0 || pt.Reconnects != 0 {
				ch.CleanWire = false
			}
			if pt.NsPerOp > 0 {
				switch pt.Protocol {
				case "eager":
					eager = true
				case "rendezvous":
					rendez = true
				}
			}
		}
	}
	for _, pt := range res.Points {
		if pt.Bytes != smallest || pt.NsPerOp <= 0 {
			continue
		}
		switch pt.Path {
		case "local":
			if localSmall == 0 || pt.NsPerOp < localSmall {
				localSmall = pt.NsPerOp
			}
		case "wire":
			if wireSmall == 0 || pt.NsPerOp < wireSmall {
				wireSmall = pt.NsPerOp
			}
		}
	}
	ch.WireBothProtocols = eager && rendez
	ch.LocalWinsSmall = localSmall > 0 && wireSmall > 0 && localSmall < wireSmall
	return ch
}

// PrintNet renders the measurements and the acceptance checks.
func PrintNet(w io.Writer, res *NetResult) {
	fprintf(w, "Transport ping-pong: in-process vs loopback TCP\n")
	fprintf(w, "%-6s %8s %8s %-11s %10s %9s %8s %8s\n",
		"path", "bytes", "eager", "protocol", "ns/op", "MB/s", "frames", "reconn")
	for _, pt := range res.Points {
		fprintf(w, "%-6s %8d %8d %-11s %10.0f %9.1f %8d %8d\n",
			pt.Path, pt.Bytes, pt.EagerLimit, pt.Protocol, pt.NsPerOp, pt.MBPerS,
			pt.FramesSent, pt.Reconnects)
	}
	if res.WireCrossoverBytes > 0 {
		fprintf(w, "wire eager/rendezvous crossover: %d B\n", res.WireCrossoverBytes)
	} else {
		fprintf(w, "wire eager/rendezvous crossover: none within sweep\n")
	}
	fprintf(w, "\nChecks:\n")
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"wire measured under both protocols", res.Checks.WireBothProtocols},
		{"in-process path beats the socket at the smallest size", res.Checks.LocalWinsSmall},
		{"clean wire runs: frames flowed, zero reconnects", res.Checks.CleanWire},
		{"no pooled buffers leaked on either side", res.Checks.NoLeakedBuffers},
	} {
		state := "PASS"
		if !c.ok {
			state = "FAIL"
		}
		fprintf(w, "  [%s] %s\n", state, c.name)
	}
}

// WriteNetCSV writes the measurements as one flat table.
func WriteNetCSV(w io.Writer, res *NetResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"path", "bytes", "eager_limit", "protocol",
		"ns_per_op", "mb_per_s", "frames_sent", "wire_bytes_sent",
		"reconnects", "pool_outstanding",
	}); err != nil {
		return err
	}
	for _, pt := range res.Points {
		if err := cw.Write([]string{
			pt.Path, strconv.Itoa(pt.Bytes), strconv.Itoa(pt.EagerLimit), pt.Protocol,
			fmt.Sprintf("%.1f", pt.NsPerOp), fmt.Sprintf("%.1f", pt.MBPerS),
			strconv.FormatUint(pt.FramesSent, 10),
			strconv.FormatUint(pt.WireBytesSent, 10),
			strconv.FormatUint(pt.Reconnects, 10),
			strconv.FormatInt(pt.Outstanding, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNetJSON writes the full result snapshot (BENCH_net.json).
func WriteNetJSON(w io.Writer, res *NetResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ReadNetJSON parses a snapshot written by WriteNetJSON.
func ReadNetJSON(r io.Reader) (*NetResult, error) {
	var res NetResult
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CompareNet prints an old/new comparison and returns an error if an
// acceptance check that held in the baseline fails now. Timing deltas
// are informational; check regressions are hard failures.
func CompareNet(w io.Writer, base, cur *NetResult) error {
	delta := func(old, new float64) string {
		if old <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
	}
	fprintf(w, "Net comparison vs baseline (%s profile)\n", base.Profile)
	for _, b := range base.Points {
		for _, c := range cur.Points {
			if b.Path == c.Path && b.Bytes == c.Bytes && b.EagerLimit == c.EagerLimit {
				fprintf(w, "  %-6s %6d B limit %5d %-11s %10.0f -> %10.0f ns/op  %s\n",
					b.Path, b.Bytes, b.EagerLimit, b.Protocol,
					b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp))
			}
		}
	}
	return compareChecks(w, "net", base.Checks, cur.Checks)
}
