// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (§V), each regenerating the same rows or series
// the paper reports. cmd/hlsbench drives the runners from the command
// line; bench_test.go wraps them as testing.B benchmarks.
//
// Every runner has a Quick profile (seconds, used by `go test -bench`) and
// a Full profile (minutes, the paper-shaped sweep). Data sizes are scaled
// per DESIGN.md §6; memory rows are accounted directly in paper-scale
// bytes so the tables read in the paper's MB.
package bench

import (
	"fmt"
	"io"
)

// Profile selects experiment effort.
type Profile int

const (
	// Quick shrinks workloads to run in seconds.
	Quick Profile = iota
	// Full runs the paper-shaped sweep.
	Full
)

// String names the profile.
func (p Profile) String() string {
	if p == Full {
		return "full"
	}
	return "quick"
}

// fprintf writes to w, ignoring errors (harness output only).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
