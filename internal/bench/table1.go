package bench

import (
	"io"

	"hls/internal/apps/meshupdate"
	"hls/internal/topology"
)

// TableICell is one parallel-efficiency measurement.
type TableICell struct {
	Mode       meshupdate.Mode
	Size       string // "small" | "medium" | "large"
	Update     bool
	Efficiency float64
}

// TableISizes maps the paper's sub-domain settings (50³/100³/200³ cells,
// i.e. ~1 MB / 8 MB / 60 MB) to scaled cell counts (bytes ÷ 64).
func TableISizes(p Profile) map[string]int {
	if p == Full {
		return map[string]int{
			"small":  (1 << 20) / 64 / 8,  // 2048 cells
			"medium": (8 << 20) / 64 / 8,  // 16384 cells
			"large":  (60 << 20) / 64 / 8, // 122880 cells
		}
	}
	return map[string]int{
		"small":  512,
		"medium": 2048,
		"large":  8192,
	}
}

// tableITableEntries is the scaled common table: 1000×1000 doubles ≈ 8 MB
// at paper scale, 128 KiB scaled.
const tableITableEntries = (8 << 20) / 64 / 8

// RunTableI regenerates Table I: parallel efficiency of the mesh-update
// benchmark for {no HLS, HLS node, HLS numa} × {small, medium, large} ×
// {no update, update} on the (scaled) 4-socket Nehalem-EX node.
func RunTableI(p Profile) ([]TableICell, error) {
	machine := topology.NehalemEX4Scaled()
	sizes := TableISizes(p)
	steps := 3
	var out []TableICell
	for _, update := range []bool{false, true} {
		for _, mode := range []meshupdate.Mode{meshupdate.NoHLS, meshupdate.HLSNode, meshupdate.HLSNuma} {
			for _, size := range []string{"small", "medium", "large"} {
				res, err := meshupdate.RunCacheExperiment(meshupdate.Config{
					Machine:      machine,
					Tasks:        machine.TotalCores(),
					Mode:         mode,
					CellsPerTask: sizes[size],
					TableEntries: tableITableEntries,
					Steps:        steps,
					Update:       update,
					Seed:         42,
				})
				if err != nil {
					return nil, err
				}
				out = append(out, TableICell{Mode: mode, Size: size, Update: update, Efficiency: res.Efficiency})
			}
		}
	}
	return out, nil
}

// PrintTableI renders the cells in the paper's layout.
func PrintTableI(w io.Writer, cells []TableICell) {
	get := func(mode meshupdate.Mode, size string, update bool) float64 {
		for _, c := range cells {
			if c.Mode == mode && c.Size == size && c.Update == update {
				return c.Efficiency
			}
		}
		return -1
	}
	fprintf(w, "Table I: parallel efficiency, mesh update on 4x Nehalem-EX (scaled)\n")
	fprintf(w, "%-14s | %-23s | %-23s\n", "", "without update", "with update")
	fprintf(w, "%-14s | %7s %7s %7s | %7s %7s %7s\n", "mesh size", "small", "medium", "large", "small", "medium", "large")
	for _, mode := range []meshupdate.Mode{meshupdate.NoHLS, meshupdate.HLSNode, meshupdate.HLSNuma} {
		fprintf(w, "%-14s |", mode)
		for _, update := range []bool{false, true} {
			for _, size := range []string{"small", "medium", "large"} {
				fprintf(w, " %6.0f%%", 100*get(mode, size, update))
			}
			fprintf(w, " |")
		}
		fprintf(w, "\n")
	}
	fprintf(w, "(paper: without HLS 30-40%%, HLS 87-99%%, node drops to ~65%% on small+update)\n")
}
