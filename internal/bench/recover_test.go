package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverExperiment runs the full quick-profile crash-recovery
// cycle: clean baseline, chaos kill, restore-and-resume, torn-generation
// fallback — and asserts every acceptance check holds.
func TestRecoverExperiment(t *testing.T) {
	res, err := RunRecover(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checks.KillFired {
		t.Error("chaos kill never fired")
	}
	if !res.Checks.RestoreReported {
		t.Errorf("restore not reported: gen %d, %d bytes, %.3f ms",
			res.RestoreGen, res.RestoreBytes, res.RestoreMs)
	}
	if !res.Checks.TornSkipped {
		t.Errorf("torn generation not skipped: corrupted %d, restored %d, skipped %d",
			res.TornGen, res.TornRestoreGen, res.TornSkippedGens)
	}
	if !res.Checks.Identical {
		t.Error("resumed results differ from the clean run")
	}
	if res.Resumed.StartIter == 0 {
		t.Error("resumed trial started from iteration 0 — restore restored nothing")
	}
	if res.Resumed.StartIter+res.Resumed.Iters != res.Iters {
		t.Errorf("resumed trial ran %d iterations from %d, want to end at %d",
			res.Resumed.Iters, res.Resumed.StartIter, res.Iters)
	}

	var buf bytes.Buffer
	PrintRecover(&buf, res)
	outStr := buf.String()
	if strings.Contains(outStr, "[FAIL]") {
		t.Errorf("report contains failures:\n%s", outStr)
	}
	if !strings.Contains(outStr, "restore: generation") {
		t.Errorf("report does not state the restore latency:\n%s", outStr)
	}

	// The JSON snapshot round-trips and compares clean against itself.
	buf.Reset()
	if err := WriteRecoverJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecoverJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := CompareRecover(&buf, back, res); err != nil {
		t.Fatalf("self-comparison regressed: %v", err)
	}

	// A regression (a check that held in the baseline now failing) must
	// be a hard error.
	bad := *res
	bad.Checks.TornSkipped = false
	if err := CompareRecover(&buf, back, &bad); err == nil {
		t.Fatal("CompareRecover accepted a torn-skip regression")
	}
}
