package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"hls/internal/chaos"
	"hls/internal/hls"
	"hls/internal/metrics"
	"hls/internal/mpi"
	"hls/internal/topology"
)

// The faults experiment measures what the fault-tolerance layer costs
// and what it buys: the same HLS workload runs once clean and once under
// a seeded chaos plan (allocation failures forcing demotion, message
// delays, a rank stall), and the harness reports the throughput delta,
// the demotions with their footprint cost, the recovery latency
// histogram, and — the acceptance property — that degraded execution
// produced bitwise-identical results (§III sharing/duplication
// equivalence).

// FaultsRun is one configuration's measurements.
type FaultsRun struct {
	Mode       string
	Seconds    float64
	Throughput float64 // iterations*tasks per second
	Demotions  int
	ExtraMB    float64
}

// FaultsResult aggregates the experiment.
type FaultsResult struct {
	Tasks, Iters int
	Seed         int64
	Clean, Chaos FaultsRun
	// Identical reports bitwise equality of the clean and degraded
	// result vectors.
	Identical bool
	// Injected counts the chaos events per kind.
	Injected map[string]int
	// RecoveryP50Ns / RecoveryP99Ns are read from the
	// hls_demotion_recovery_ns histogram (first-failed-attempt to
	// demotion decision).
	RecoveryP50Ns, RecoveryP99Ns float64
	// Unfired lists the armed faults that never injected anything (one
	// Describe() line each) — e.g. an Nth-opportunity rule the run never
	// reached. A silently under-delivering plan is a weaker test than
	// the seed suggests, so the report must say so.
	Unfired []string
}

// RunFaults runs the clean-vs-chaos comparison. The seed fixes the whole
// chaos schedule, so a run is reproducible bit for bit.
func RunFaults(p Profile, seed int64) (*FaultsResult, error) {
	machine := topology.HarpertownCluster(2)
	tasks := machine.TotalCores()
	iters := 60
	entries := 2048
	if p == Full {
		machine = topology.NehalemEX4Scaled()
		tasks = machine.TotalCores()
		iters = 300
		entries = 8192
	}
	out := &FaultsResult{Tasks: tasks, Iters: iters, Seed: seed}

	// A local registry always collects the demotion metrics (the live
	// telemetry registry, when serving, gets them too via the shared
	// adapter chain).
	localReg := metrics.New(tasks)
	localHLS := metrics.NewHLSAdapter(localReg)

	run := func(inj *chaos.Injector) ([]float64, FaultsRun, error) {
		var hooks mpi.Hooks
		obs := []hls.SyncObserver{localHLS}
		if t := ActiveTelemetry(); t != nil {
			hooks = t.MPI
			obs = append(obs, t.HLS)
		}
		if inj != nil {
			if hooks != nil {
				hooks = mpi.MultiHooks(hooks, inj)
			} else {
				hooks = inj
			}
			obs = append(obs, inj)
		}
		w, err := mpi.NewWorld(mpi.Config{NumTasks: tasks, Machine: machine,
			Pin: topology.PinCorePerTask, Timeout: 5 * time.Minute, Hooks: hooks})
		if err != nil {
			return nil, FaultsRun{}, err
		}
		reg := hls.New(w, hls.WithObserver(hls.MultiObserver(obs...)),
			hls.WithAllocRetry(2, 50*time.Microsecond))
		v := hls.Declare[float64](reg, "fault_table", topology.Node, entries,
			hls.WithInit(func(inst int, data []float64) {
				for i := range data {
					data[i] = float64(i%97) * 0.5
				}
			}))
		results := make([]float64, iters)
		start := time.Now()
		runErr := w.Run(func(task *mpi.Task) error {
			sum := []float64{0}
			out := []float64{0}
			for i := 0; i < iters; i++ {
				v.Single(task, func(data []float64) {
					for j := range data {
						data[j] += 1
					}
				})
				s := 0.0
				for _, x := range v.Slice(task) {
					s += x
				}
				sum[0] = s
				mpi.Allreduce(task, nil, sum, out, mpi.OpSum)
				if task.Rank() == 0 {
					results[i] = out[0]
				}
				reg.BarrierScope(task, topology.Node)
			}
			return nil
		})
		elapsed := time.Since(start)
		if runErr != nil {
			return nil, FaultsRun{}, runErr
		}
		dem, extra := v.Demotions()
		return results, FaultsRun{
			Seconds:    elapsed.Seconds(),
			Throughput: float64(iters*tasks) / elapsed.Seconds(),
			Demotions:  dem,
			ExtraMB:    float64(extra) / (1 << 20),
		}, nil
	}

	clean, cleanRun, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("faults: clean run: %w", err)
	}
	cleanRun.Mode = "clean"
	out.Clean = cleanRun

	inj := chaos.New(seed,
		chaos.Fault{Kind: chaos.AllocFail, Var: "fault_table", Prob: 1},
		chaos.Fault{Kind: chaos.MsgDelay, Rank: -1, Prob: 0.02, Delay: 100 * time.Microsecond},
		chaos.Fault{Kind: chaos.RankStall, Rank: 1, Nth: 5, Times: 2, Delay: time.Millisecond},
	)
	degraded, chaosRun, err := run(inj)
	if err != nil {
		return nil, fmt.Errorf("faults: chaos run: %w", err)
	}
	chaosRun.Mode = "chaos"
	out.Chaos = chaosRun
	if out.Chaos.Demotions == 0 {
		return nil, fmt.Errorf("faults: chaos run demoted nothing (alloc-fail plan did not fire)")
	}

	out.Identical = len(clean) == len(degraded)
	for i := range clean {
		if clean[i] != degraded[i] {
			out.Identical = false
			break
		}
	}

	out.Injected = make(map[string]int)
	for _, e := range inj.Events() {
		out.Injected[e.Kind.String()]++
	}
	for _, s := range inj.Unfired() {
		out.Unfired = append(out.Unfired, s.Describe())
	}

	snap := localReg.Snapshot()
	for _, h := range snap.Histograms {
		if h.Name == "hls_demotion_recovery_ns" && h.Count > 0 {
			out.RecoveryP50Ns = histQuantile(h, 0.5)
			out.RecoveryP99Ns = histQuantile(h, 0.99)
		}
	}
	return out, nil
}

// PrintFaults renders the experiment.
func PrintFaults(w io.Writer, r *FaultsResult) {
	fprintf(w, "Fault tolerance: clean vs chaos (%d tasks, %d iterations, seed %d)\n",
		r.Tasks, r.Iters, r.Seed)
	fprintf(w, "%-8s %10s %16s %11s %10s\n", "run", "seconds", "iters*tasks/s", "demotions", "extra MB")
	for _, row := range []FaultsRun{r.Clean, r.Chaos} {
		fprintf(w, "%-8s %10.3f %16.0f %11d %10.2f\n",
			row.Mode, row.Seconds, row.Throughput, row.Demotions, row.ExtraMB)
	}
	slow := r.Chaos.Seconds / r.Clean.Seconds
	fprintf(w, "chaos slowdown: %.2fx\n", slow)
	fprintf(w, "injected:")
	for _, k := range []string{"alloc-fail", "msg-delay", "rank-stall", "msg-drop", "msg-dup", "rank-kill", "map-fail"} {
		if n := r.Injected[k]; n > 0 {
			fprintf(w, " %s=%d", k, n)
		}
	}
	fprintf(w, "\n")
	if len(r.Unfired) == 0 {
		fprintf(w, "fault plan: every armed fault fired\n")
	} else {
		fprintf(w, "fault plan: %d armed fault(s) never fired:\n", len(r.Unfired))
		for _, line := range r.Unfired {
			fprintf(w, "  %s\n", line)
		}
	}
	if !math.IsNaN(r.RecoveryP50Ns) && r.RecoveryP50Ns > 0 {
		fprintf(w, "demotion recovery latency: p50 <= %s, p99 <= %s (first failed attempt -> demotion)\n",
			fmtDur(r.RecoveryP50Ns), fmtDur(r.RecoveryP99Ns))
	}
	if r.Identical {
		fprintf(w, "degraded results: bitwise identical to clean run (§III sharing≡duplication)\n")
	} else {
		fprintf(w, "degraded results: DIFFER from clean run — degradation broke §III equivalence!\n")
	}
}

// WriteFaultsCSV writes the experiment as machine-readable rows.
func WriteFaultsCSV(w io.Writer, r *FaultsResult) error {
	if _, err := fmt.Fprintln(w, "mode,seconds,throughput,demotions,extra_mb,identical"); err != nil {
		return err
	}
	for _, row := range []FaultsRun{r.Clean, r.Chaos} {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.1f,%d,%.3f,%t\n",
			row.Mode, row.Seconds, row.Throughput, row.Demotions, row.ExtraMB, r.Identical); err != nil {
			return err
		}
	}
	return nil
}
