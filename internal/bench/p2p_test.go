package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// p2pFixture is a small in-memory result with every check passing.
func p2pFixture() *P2PResult {
	res := &P2PResult{
		Profile:     "quick",
		EagerLimits: []int{1024, 4096, 32768},
		Points: []P2PPoint{
			{Kind: "pingpong", Tasks: 2, Bytes: 512, EagerLimit: 4096, Protocol: "eager",
				NsPerOp: 1500, AllocsPerOp: 0.01, Messages: 1000, DirectDeliveries: 990, MatchProbes: 1000},
			{Kind: "pingpong", Tasks: 2, Bytes: 4096, EagerLimit: 4096, Protocol: "eager",
				NsPerOp: 1700, AllocsPerOp: 0.01, Messages: 1000, DirectDeliveries: 990, MatchProbes: 1000},
			{Kind: "pingpong", Tasks: 2, Bytes: 4096, EagerLimit: 1024, Protocol: "rendezvous",
				NsPerOp: 1900, AllocsPerOp: 0.02, Messages: 1000, MatchProbes: 1000},
			{Kind: "pingpong", Tasks: 2, Bytes: 65536, EagerLimit: 4096, Protocol: "rendezvous",
				NsPerOp: 5000, AllocsPerOp: 0.04, Messages: 1000, MatchProbes: 1000},
			{Kind: "arrival", Tasks: 2, Bytes: 512, EagerLimit: 4096, Protocol: "eager",
				Arrival: "posted", NsPerOp: 1400, Messages: 1600, DirectDeliveries: 800},
			{Kind: "arrival", Tasks: 2, Bytes: 512, EagerLimit: 4096, Protocol: "eager",
				Arrival: "unexpected", NsPerOp: 1700, Messages: 1600, PoolHits: 799, PoolMisses: 1},
			{Kind: "tasks", Tasks: 32, Bytes: 1024, EagerLimit: 4096, Protocol: "eager",
				NsPerOp: 25000, Messages: 20000, MatchProbes: 20000},
		},
	}
	res.CrossoverBytes = computeP2PCrossover(res)
	res.Checks = computeP2PChecks(res)
	return res
}

func p2pAllChecks(c P2PChecks) bool {
	return c.ZeroAllocEager && c.SingleCopyPosted && c.PoolRecyclesUnexpected &&
		c.MatchProbesBounded && c.EagerWinsAtLimit && c.NoLeakedBuffers
}

func TestP2PChecksAndJSONRoundTrip(t *testing.T) {
	res := p2pFixture()
	if !p2pAllChecks(res.Checks) {
		t.Fatalf("fixture checks = %+v, want all true", res.Checks)
	}
	if res.CrossoverBytes != 0 {
		t.Fatalf("fixture crossover = %d, want none (eager wins at 4096)", res.CrossoverBytes)
	}

	var buf bytes.Buffer
	if err := WriteP2PJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadP2PJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatalf("round trip lost points: %d/%d", len(back.Points), len(res.Points))
	}
	if back.Checks != res.Checks {
		t.Fatalf("round trip checks = %+v, want %+v", back.Checks, res.Checks)
	}
}

func TestP2PCrossoverMeasured(t *testing.T) {
	res := p2pFixture()
	// Make rendezvous win at 4 KiB: the crossover must surface there.
	for i := range res.Points {
		if res.Points[i].Protocol == "rendezvous" && res.Points[i].Bytes == 4096 {
			res.Points[i].NsPerOp = 1600
		}
	}
	if got := computeP2PCrossover(res); got != 4096 {
		t.Fatalf("crossover = %d, want 4096", got)
	}
	// EagerWinsAtLimit flips with it.
	if computeP2PChecks(res).EagerWinsAtLimit {
		t.Fatal("EagerWinsAtLimit still true with rendezvous faster at 4096")
	}
}

func TestCompareP2PFlagsRegressions(t *testing.T) {
	base := p2pFixture()
	var out bytes.Buffer
	if err := CompareP2P(&out, base, p2pFixture()); err != nil {
		t.Fatalf("identical results compared unequal: %v", err)
	}
	if !strings.Contains(out.String(), "all baseline checks still hold") {
		t.Errorf("missing pass line in:\n%s", out.String())
	}

	// Leak a pooled buffer: the check regresses and CompareP2P must fail.
	bad := p2pFixture()
	bad.Points[5].Outstanding = 3
	bad.Checks = computeP2PChecks(bad)
	out.Reset()
	err := CompareP2P(&out, base, bad)
	if err == nil || !strings.Contains(err.Error(), "no_leaked_buffers") {
		t.Fatalf("regressed compare error = %v, want no_leaked_buffers failure", err)
	}
}

func TestP2PBaselineSnapshotParses(t *testing.T) {
	f, err := os.Open("testdata/BENCH_p2p_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ReadP2PJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if !p2pAllChecks(base.Checks) {
		t.Fatalf("committed baseline checks = %+v, want all true", base.Checks)
	}
	if got := computeP2PChecks(base); got != base.Checks {
		t.Fatalf("recomputed checks %+v disagree with stored %+v", got, base.Checks)
	}
}

func TestWriteP2PCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteP2PCSV(&buf, p2pFixture()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"kind,tasks,bytes,eager_limit,protocol,arrival",
		"pingpong,2,4096,1024,rendezvous",
		"arrival,2,512,4096,eager,unexpected",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

// TestRunP2PQuickSmoke runs a pinned single-limit quick sweep end to end;
// the live checks are the datapath's acceptance criteria.
func TestRunP2PQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick experiment")
	}
	res, err := RunP2P(Quick, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Checks
	if !c.ZeroAllocEager && !raceDetectorOn {
		t.Error("ZeroAllocEager failed")
	}
	for _, chk := range []struct {
		name string
		ok   bool
	}{
		{"SingleCopyPosted", c.SingleCopyPosted},
		{"PoolRecyclesUnexpected", c.PoolRecyclesUnexpected},
		{"MatchProbesBounded", c.MatchProbesBounded},
		{"NoLeakedBuffers", c.NoLeakedBuffers},
	} {
		if !chk.ok {
			t.Errorf("%s failed", chk.name)
		}
	}
}
