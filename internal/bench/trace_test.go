package bench

import "testing"

// BenchmarkTraceOverhead bounds the enabled-path tracing cost on the
// -exp p2p quick profile. It is not a b.N benchmark in the usual sense:
// the probe runs the whole profile untraced and traced (interleaved, so
// host drift cancels) and the benchmark reports the relative overhead
// as a metric, failing if it exceeds the 10% budget.
//
// The budget is hardware-sensitive: two monotonic clock reads per
// message are the floor of any per-message tracer, and on a single-core
// host with a ~45ns clock that floor alone is ~10% of a 1.6µs eager
// round trip (see DESIGN.md §11). Multi-core hosts overlap the delivery
// bookkeeping with application progress and land well below the budget;
// this box may not.
func BenchmarkTraceOverhead(b *testing.B) {
	if raceDetectorOn {
		b.Skip("overhead numbers are meaningless under the race detector")
	}
	if testing.Short() {
		b.Skip("runs the full p2p quick profile twice")
	}
	pts, untraced, traced, err := measureTraceOverhead(2)
	if err != nil {
		b.Fatal(err)
	}
	if untraced <= 0 {
		b.Fatal("untraced profile measured no time")
	}
	pct := (traced - untraced) / untraced * 100
	b.ReportMetric(pct, "overhead-%")
	b.ReportMetric(untraced, "untraced-ns/profile")
	b.ReportMetric(traced, "traced-ns/profile")
	for _, p := range pts {
		b.Logf("%s %dt %dB limit %d %s: %.0f -> %.0f ns/op (%+.1f%%)",
			p.Kind, p.Tasks, p.Bytes, p.EagerLimit, p.Protocol,
			p.UntracedNsPerOp, p.TracedNsPerOp, p.OverheadPct)
	}
	if pct >= 10 {
		b.Errorf("tracing overhead %+.1f%% exceeds the 10%% budget on this host", pct)
	}
}
