package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"hls/internal/apps/matmul"
)

// WriteTableICSV emits Table I's cells as machine-readable rows
// (mode,size,update,efficiency), for plotting.
func WriteTableICSV(w io.Writer, cells []TableICell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mode", "size", "update", "efficiency"}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := cw.Write([]string{
			c.Mode.String(), c.Size, strconv.FormatBool(c.Update),
			strconv.FormatFloat(c.Efficiency, 'f', 4, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure3CSV emits Figure 3's points with one column per mode and one
// row per matrix size, ready for a line plot.
func WriteFigure3CSV(w io.Writer, points []Fig3Point, update bool) error {
	cw := csv.NewWriter(w)
	modes := []matmul.Mode{matmul.Seq, matmul.NoHLS, matmul.HLSNode, matmul.HLSNuma}
	header := []string{"n"}
	for _, m := range modes {
		header = append(header, m.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	var sizes []int
	seen := map[int]bool{}
	for _, p := range points {
		if p.Update == update && !seen[p.N] {
			seen[p.N] = true
			sizes = append(sizes, p.N)
		}
	}
	lookup := func(m matmul.Mode, n int) string {
		for _, p := range points {
			if p.Mode == m && p.N == n && p.Update == update {
				return strconv.FormatFloat(p.GFLOPS, 'f', 4, 64)
			}
		}
		return ""
	}
	for _, n := range sizes {
		row := []string{strconv.Itoa(n)}
		for _, m := range modes {
			row = append(row, lookup(m, n))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMemRowsCSV emits a memory table's rows.
func WriteMemRowsCSV(w io.Writer, rows []MemRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cores", "mpi", "time_s", "avg_mb", "max_mb"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.Cores), r.Variant.String(),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.0f", r.AvgMB),
			fmt.Sprintf("%.0f", r.MaxMB),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
