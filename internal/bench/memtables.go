package bench

import (
	"fmt"
	"io"
	"time"

	"hls/internal/apps/eulermhd"
	"hls/internal/apps/gadget"
	"hls/internal/apps/tachyon"
	"hls/internal/hls"
	"hls/internal/memsim"
	"hls/internal/mpi"
	"hls/internal/topology"
)

// Variant is a row of the memory tables: which runtime and whether HLS is
// on. The Open MPI variant runs the same private-copy program on the
// thread-based runtime but accounts the process-based baseline's buffer
// model (see DESIGN.md's substitution table).
type Variant int

const (
	// VariantMPCHLS is MPC with the HLS mechanism enabled.
	VariantMPCHLS Variant = iota
	// VariantMPC is plain MPC (everything duplicated per task).
	VariantMPC
	// VariantOpenMPI is the process-based baseline model.
	VariantOpenMPI
)

// String names the variant like the tables' MPI column.
func (v Variant) String() string {
	switch v {
	case VariantMPCHLS:
		return "MPC HLS"
	case VariantMPC:
		return "MPC"
	case VariantOpenMPI:
		return "Open MPI"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

func (v Variant) useHLS() bool { return v == VariantMPCHLS }

func (v Variant) model() memsim.RuntimeModel {
	if v == VariantOpenMPI {
		return memsim.ModelOpenMPI
	}
	return memsim.ModelMPC
}

// MemRow is one row of Tables II-IV.
type MemRow struct {
	Cores   int
	Variant Variant
	Seconds float64
	AvgMB   float64
	MaxMB   float64
}

// PrintMemRows renders rows in the tables' layout.
func PrintMemRows(w io.Writer, title string, rows []MemRow, paperNote string) {
	fprintf(w, "%s\n", title)
	fprintf(w, "%8s %-10s %9s %15s %15s\n", "# cores", "MPI", "time (s)", "avg. mem (MB)", "max. mem (MB)")
	for _, r := range rows {
		fprintf(w, "%8d %-10s %9.2f %15.0f %15.0f\n", r.Cores, r.Variant, r.Seconds, r.AvgMB, r.MaxMB)
	}
	if paperNote != "" {
		fprintf(w, "(paper: %s)\n", paperNote)
	}
}

// memEnv sets up machine, world, tracker and registry for one run.
type memEnv struct {
	machine *topology.Machine
	world   *mpi.World
	tracker *memsim.Tracker
	reg     *hls.Registry
}

// newMemEnv builds the cluster for `cores` tasks at 8 cores per node (the
// paper's node) and accounts the variant's runtime buffers per node.
func newMemEnv(cores int, variant Variant) (*memEnv, error) {
	if cores%8 != 0 {
		return nil, fmt.Errorf("bench: cores=%d not a multiple of 8 (cores per node)", cores)
	}
	machine := topology.HarpertownCluster(cores / 8)
	world, err := mpi.NewWorld(mpi.Config{
		NumTasks: cores,
		Machine:  machine,
		Pin:      topology.PinCorePerTask,
		Timeout:  10 * time.Minute,
		Hooks:    telemetryHooks(),
	})
	if err != nil {
		return nil, err
	}
	pin := world.Pinning()
	tracker := memsim.NewTracker(machine, pin)
	for node := 0; node < machine.Nodes(); node++ {
		tracker.AllocNode(node, memsim.RuntimeBytesPerNode(variant.model(), 8, cores), memsim.KindRuntime)
	}
	reg := hls.New(world, append(telemetryHLSOptions(), hls.WithTracker(tracker))...)
	return &memEnv{machine: machine, world: world, tracker: tracker, reg: reg}, nil
}

func (e *memEnv) row(cores int, variant Variant, elapsed time.Duration) MemRow {
	rep := e.tracker.Report()
	return MemRow{
		Cores:   cores,
		Variant: variant,
		Seconds: elapsed.Seconds(),
		AvgMB:   memsim.MB(rep.AvgBytes),
		MaxMB:   memsim.MB(rep.MaxBytes),
	}
}

// TableIICores returns the Table II sweep: the paper's 256/512/736 in the
// full profile, one node-pair in quick.
func TableIICores(p Profile) []int {
	if p == Full {
		return []int{256, 512, 736}
	}
	return []int{16}
}

// RunTableII regenerates Table II (EulerMHD).
func RunTableII(p Profile) ([]MemRow, error) {
	var rows []MemRow
	for _, cores := range TableIICores(p) {
		for _, variant := range []Variant{VariantMPCHLS, VariantMPC, VariantOpenMPI} {
			env, err := newMemEnv(cores, variant)
			if err != nil {
				return nil, err
			}
			app, err := eulermhd.New(env.reg, eulermhd.Config{
				Machine:     env.machine,
				Tasks:       cores,
				NX:          32,
				RowsPerTask: 2,
				Steps:       4,
				TableN:      32,
				UseHLS:      variant.useHLS(),
				Tracker:     env.tracker,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := env.world.Run(func(task *mpi.Task) error {
				_, err := app.Run(task)
				return err
			}); err != nil {
				return nil, err
			}
			rows = append(rows, env.row(cores, variant, time.Since(start)))
		}
	}
	return rows, nil
}

// TableIIICores returns the Table III sweep.
func TableIIICores(p Profile) []int {
	if p == Full {
		return []int{256}
	}
	return []int{16}
}

// RunTableIII regenerates Table III (Gadget-2).
func RunTableIII(p Profile) ([]MemRow, error) {
	var rows []MemRow
	for _, cores := range TableIIICores(p) {
		for _, variant := range []Variant{VariantMPCHLS, VariantMPC, VariantOpenMPI} {
			env, err := newMemEnv(cores, variant)
			if err != nil {
				return nil, err
			}
			app, err := gadget.New(env.reg, gadget.Config{
				Machine:          env.machine,
				Tasks:            cores,
				ParticlesPerTask: 4,
				Steps:            3,
				EwaldN:           6,
				UseHLS:           variant.useHLS(),
				Tracker:          env.tracker,
				Seed:             17,
			})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := env.world.Run(func(task *mpi.Task) error {
				_, err := app.Run(task)
				return err
			}); err != nil {
				return nil, err
			}
			rows = append(rows, env.row(cores, variant, time.Since(start)))
		}
	}
	return rows, nil
}

// TableIVCores returns the Table IV sweep.
func TableIVCores(p Profile) []int {
	if p == Full {
		return []int{736}
	}
	return []int{16}
}

// TableIVResult carries the rows plus the copy-elision evidence behind
// the paper's Tachyon speedup.
type TableIVResult struct {
	Rows []MemRow
	// ElidedCopies counts intra-node same-address deliveries skipped in
	// the HLS run (zero in the others).
	ElidedCopies int64
}

// RunTableIV regenerates Table IV (Tachyon).
func RunTableIV(p Profile) (TableIVResult, error) {
	var out TableIVResult
	for _, cores := range TableIVCores(p) {
		for _, variant := range []Variant{VariantMPCHLS, VariantMPC, VariantOpenMPI} {
			env, err := newMemEnv(cores, variant)
			if err != nil {
				return out, err
			}
			frames := 2
			if p == Full {
				frames = 3
			}
			app, err := tachyon.New(env.reg, tachyon.Config{
				Machine:   env.machine,
				Tasks:     cores,
				W:         24,
				H:         cores, // one scanline per task minimum
				Frames:    frames,
				Spheres:   24,
				Triangles: 8,
				UseHLS:    variant.useHLS(),
				Tracker:   env.tracker,
				Seed:      4,
			})
			if err != nil {
				return out, err
			}
			start := time.Now()
			if err := env.world.Run(func(task *mpi.Task) error {
				_, err := app.Run(task)
				return err
			}); err != nil {
				return out, err
			}
			out.Rows = append(out.Rows, env.row(cores, variant, time.Since(start)))
			if variant == VariantMPCHLS {
				out.ElidedCopies += env.world.Stats().SameAddrSkips
			}
		}
	}
	return out, nil
}
