package bench

import (
	"io"

	"hls/internal/apps/matmul"
	"hls/internal/topology"
)

// Fig3Point is one point of a Figure 3 curve.
type Fig3Point struct {
	Mode   matmul.Mode
	N      int // scaled matrix dimension
	Update bool
	GFLOPS float64
}

// Fig3Sizes returns the matrix-size sweep (scaled: the paper's crossovers
// around N≈500-900 at 18 MB LLC map to N≈40-110 at 288 KiB).
func Fig3Sizes(p Profile) []int {
	if p == Full {
		return []int{16, 24, 32, 40, 48, 64, 80, 96, 128}
	}
	return []int{16, 48, 64}
}

// RunFigure3 regenerates Figure 3: per-task DGEMM GFLOPS vs matrix size
// for {sequential, no HLS, HLS node, HLS numa}, in the no-update and
// update variants.
func RunFigure3(p Profile, update bool) ([]Fig3Point, error) {
	machine := topology.NehalemEX4Scaled()
	var out []Fig3Point
	for _, n := range Fig3Sizes(p) {
		for _, mode := range []matmul.Mode{matmul.Seq, matmul.NoHLS, matmul.HLSNode, matmul.HLSNuma} {
			res, err := matmul.RunCacheExperiment(matmul.Config{
				Machine: machine,
				Tasks:   machine.TotalCores(),
				Mode:    mode,
				N:       n,
				Steps:   2,
				Update:  update,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig3Point{Mode: mode, N: n, Update: update, GFLOPS: res.GFLOPS})
		}
	}
	return out, nil
}

// PrintFigure3 renders one variant's curves as aligned series.
func PrintFigure3(w io.Writer, points []Fig3Point, update bool) {
	variant := "no-update"
	if update {
		variant = "update"
	}
	fprintf(w, "Figure 3 (%s): per-task DGEMM GFLOPS vs (scaled) matrix size on 4x Nehalem-EX\n", variant)
	var sizes []int
	seen := map[int]bool{}
	for _, pt := range points {
		if pt.Update == update && !seen[pt.N] {
			seen[pt.N] = true
			sizes = append(sizes, pt.N)
		}
	}
	fprintf(w, "%-14s", "N")
	for _, n := range sizes {
		fprintf(w, " %7d", n)
	}
	fprintf(w, "\n")
	for _, mode := range []matmul.Mode{matmul.Seq, matmul.NoHLS, matmul.HLSNode, matmul.HLSNuma} {
		fprintf(w, "%-14s", mode)
		for _, n := range sizes {
			for _, pt := range points {
				if pt.Mode == mode && pt.N == n && pt.Update == update {
					fprintf(w, " %7.2f", pt.GFLOPS)
				}
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "(paper: all curves equal while in cache; no-HLS falls off first; HLS tracks sequential;\n")
	fprintf(w, " with update, numa beats node at small sizes)\n")
}
