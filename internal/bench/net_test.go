package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// netFixture is a small in-memory result with every check passing.
func netFixture() *NetResult {
	res := &NetResult{
		Profile:     "quick",
		EagerLimits: []int{1024, 4096, 32768},
		Points: []NetPoint{
			{Path: "local", Bytes: 64, EagerLimit: 4096, Protocol: "eager", NsPerOp: 2000, MBPerS: 64},
			{Path: "local", Bytes: 65536, EagerLimit: 4096, Protocol: "rendezvous", NsPerOp: 6000},
			{Path: "wire", Bytes: 64, EagerLimit: 4096, Protocol: "eager",
				NsPerOp: 30000, FramesSent: 400, WireBytesSent: 50000},
			{Path: "wire", Bytes: 4096, EagerLimit: 1024, Protocol: "rendezvous",
				NsPerOp: 65000, FramesSent: 1100, WireBytesSent: 4000000},
			{Path: "wire", Bytes: 65536, EagerLimit: 4096, Protocol: "rendezvous",
				NsPerOp: 140000, FramesSent: 360, WireBytesSent: 9000000},
		},
	}
	res.WireCrossoverBytes = computeNetCrossover(res)
	res.Checks = computeNetChecks(res)
	return res
}

func netAllChecks(c NetChecks) bool {
	return c.WireBothProtocols && c.LocalWinsSmall && c.CleanWire && c.NoLeakedBuffers
}

func TestNetChecksAndJSONRoundTrip(t *testing.T) {
	res := netFixture()
	if !netAllChecks(res.Checks) {
		t.Fatalf("fixture checks = %+v, want all true", res.Checks)
	}

	var buf bytes.Buffer
	if err := WriteNetJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(res.Points) {
		t.Fatalf("round trip lost points: %d/%d", len(back.Points), len(res.Points))
	}
	if back.Checks != res.Checks {
		t.Fatalf("round trip checks = %+v, want %+v", back.Checks, res.Checks)
	}
}

func TestNetCrossoverMeasured(t *testing.T) {
	res := netFixture()
	// Make eager and rendezvous meet at 4 KiB with rendezvous winning:
	// the crossover must surface there.
	res.Points = append(res.Points, NetPoint{
		Path: "wire", Bytes: 4096, EagerLimit: 4096, Protocol: "eager",
		NsPerOp: 70000, FramesSent: 400,
	})
	if got := computeNetCrossover(res); got != 4096 {
		t.Fatalf("crossover = %d, want 4096", got)
	}
}

func TestNetChecksFlagFailures(t *testing.T) {
	res := netFixture()
	res.Points[2].Reconnects = 2 // a wire run needed a reconnect
	res.Points[4].Outstanding = 1
	ch := computeNetChecks(res)
	if ch.CleanWire {
		t.Error("CleanWire true despite reconnects")
	}
	if ch.NoLeakedBuffers {
		t.Error("NoLeakedBuffers true despite outstanding buffer")
	}
}

func TestCompareNetFlagsRegressions(t *testing.T) {
	base := netFixture()
	var out bytes.Buffer
	if err := CompareNet(&out, base, netFixture()); err != nil {
		t.Fatalf("identical results compared unequal: %v", err)
	}
	if !strings.Contains(out.String(), "all baseline checks still hold") {
		t.Errorf("missing pass line in:\n%s", out.String())
	}

	bad := netFixture()
	bad.Points[2].FramesSent = 0 // wire run that moved no frames
	bad.Checks = computeNetChecks(bad)
	out.Reset()
	err := CompareNet(&out, base, bad)
	if err == nil || !strings.Contains(err.Error(), "clean_wire") {
		t.Fatalf("regressed compare error = %v, want clean_wire failure", err)
	}
}

func TestNetBaselineSnapshotParses(t *testing.T) {
	f, err := os.Open("testdata/BENCH_net_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ReadNetJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if !netAllChecks(base.Checks) {
		t.Fatalf("committed baseline checks = %+v, want all true", base.Checks)
	}
	if got := computeNetChecks(base); got != base.Checks {
		t.Fatalf("recomputed checks %+v disagree with stored %+v", got, base.Checks)
	}
}

func TestWriteNetCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNetCSV(&buf, netFixture()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"path,bytes,eager_limit,protocol",
		"wire,4096,1024,rendezvous",
		"local,64,4096,eager",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

// TestRunNetQuickSmoke runs a shrunken wire-vs-local sweep end to end.
func TestRunNetQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs loopback TCP world pairs")
	}
	pt, err := netPingPongWire(512, 4096, 50)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NsPerOp <= 0 || pt.FramesSent == 0 {
		t.Fatalf("wire point not measured: %+v", pt)
	}
	if pt.Outstanding != 0 {
		t.Fatalf("%d pooled buffers leaked", pt.Outstanding)
	}
	lpt, err := netPingPongLocal(512, 4096, 200)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.NsPerOp <= 0 || lpt.FramesSent != 0 {
		t.Fatalf("local point wrong: %+v", lpt)
	}
}
