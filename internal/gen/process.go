package gen

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ProcessDir scans every non-test Go file of one package directory,
// enforces the directive rules, and returns the generated registration
// file's contents. It is the whole hlsgen pipeline behind the CLI.
func ProcessDir(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasSuffix(e.Name(), "_test.go") || e.Name() == "hls_gen.go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "", fmt.Errorf("no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var dirs []Directive
	pkgName := ""
	for _, name := range names {
		f, ds, err := ParseFile(fset, filepath.Join(dir, name), nil)
		if err != nil {
			return "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if pkgName != f.Name.Name {
			return "", fmt.Errorf("mixed packages %s and %s in %s", pkgName, f.Name.Name, dir)
		}
		files = append(files, f)
		dirs = append(dirs, ds...)
	}
	if err := CheckUnused(fset, files, dirs); err != nil {
		return "", err
	}
	return Generate(pkgName, dirs)
}
