package demohls

import (
	"testing"
	"time"

	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/topology"
)

// TestGeneratedAccessorsEndToEnd drives the hlsgen-generated code through
// the real runtime: the directive front-end, the registry and the
// synchronization primitives working together.
func TestGeneratedAccessorsEndToEnd(t *testing.T) {
	machine := topology.NehalemEX4()
	w, err := mpi.NewWorld(mpi.Config{
		NumTasks: 32, Machine: machine, Pin: topology.PinCorePerTask,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := hls.New(w)
	HLSInit(reg)

	ptrs := make([]*float64, 32)
	sums := make([]float64, 32)
	if err := w.Run(func(task *mpi.Task) error {
		physTableHLSSingle(task, func(data []float64) {
			for i := range data {
				data[i] = float64(i)
			}
		})
		tbl := physTableHLS(task)
		if tbl[255] != 255 {
			t.Errorf("rank %d: table not initialized", task.Rank())
		}
		ptrs[task.Rank()] = &tbl[0]

		// One increment per socket instance, observed by every member.
		socketSumHLSSingle(task, func(data []float64) { data[0]++ })
		sums[task.Rank()] = socketSumHLS(task)[0]

		lutHLSSingle(task, func(data []float64) { data[0] = 9 })
		if lutHLS(task)[0] != 9 {
			t.Errorf("rank %d: lut not visible", task.Rank())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 32; r++ {
		if ptrs[r] != ptrs[0] {
			t.Fatalf("rank %d resolved a different node-scope copy", r)
		}
	}
	for r, s := range sums {
		if s != 1 {
			t.Errorf("rank %d: socketSum = %v, want 1 (single per numa instance)", r, s)
		}
	}
}
