// Package demohls is the end-to-end fixture of the hlsgen directive
// processor: demo.go carries the //hls: directives, hls_gen.go is the
// checked-in output of `hlsgen -dir internal/gen/demohls`, and the
// package's tests drive the generated accessors through the runtime. A
// golden test in internal/gen keeps hls_gen.go in sync with the
// generator.
package demohls

// The physics table of listing 3: one copy per node.
//
//hls:node
var physTable [256]float64

// A per-socket accumulator.
//
//hls:numa
var socketSum float64

// A slice-typed variable needs an explicit length.
//
//hls:llc len=64
var lut []float64
