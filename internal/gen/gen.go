// Package gen is the source-level half of HLS: the stand-in for the
// paper's modified GCC (-fhls). It scans Go source for directive comments
// attached to package-level variable declarations,
//
//	//hls:node
//	var table [1000]float64
//
//	//hls:numa
//	var b []float64 //hls directives on slices need len=N
//
//	//hls:cache level=3 len=4096
//	var lut []float64
//
// and generates the runtime registration and accessor boilerplate the
// compiler would have emitted: one hls.Var per directive, an
// HLSInit(reg) function, and a <name>HLS(task) accessor that performs the
// hls_get_addr call of §IV-A.
//
// Like the paper's compiler, it enforces the directive's static rules:
// the variable must be global, its scope keyword valid, and it must not
// be accessed anywhere else in the package (the "defined but not yet
// used" rule of the threadprivate-style directive) — marked variables are
// only reachable through the generated accessors.
package gen

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Directive is one parsed //hls: marker bound to a variable.
type Directive struct {
	VarName  string
	Scope    string // "node" | "numa" | "cache" | "core"
	Level    int    // cache level, 0 = llc
	Len      int    // element count; 0 = derive from the type
	ElemType string // Go element type, e.g. "float64"
	File     string
	Line     int
}

// prefix of a directive comment.
const prefix = "//hls:"

// ParseFile extracts the directives of one Go source file (named fname,
// content src — src may be nil to read from disk).
func ParseFile(fset *token.FileSet, fname string, src any) (*ast.File, []Directive, error) {
	f, err := parser.ParseFile(fset, fname, src, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	var out []Directive
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR || gd.Doc == nil {
			continue
		}
		var dirText string
		var dirLine int
		for _, c := range gd.Doc.List {
			if strings.HasPrefix(c.Text, prefix) {
				dirText = strings.TrimPrefix(c.Text, prefix)
				dirLine = fset.Position(c.Pos()).Line
			}
		}
		if dirText == "" {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				d, err := parseDirective(dirText)
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: %v", fname, dirLine, err)
				}
				d.VarName = name.Name
				d.File = fname
				d.Line = fset.Position(name.Pos()).Line
				if err := fillType(&d, vs.Type); err != nil {
					return nil, nil, fmt.Errorf("%s:%d: %v", fname, d.Line, err)
				}
				if len(vs.Values) > 0 {
					return nil, nil, fmt.Errorf("%s:%d: hls variable %s must not have an initializer (write it inside a single)", fname, d.Line, d.VarName)
				}
				out = append(out, d)
			}
		}
	}
	return f, out, nil
}

// parseDirective parses the text after "//hls:", e.g.
// "numa", "cache level=2 len=512".
func parseDirective(text string) (Directive, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Directive{}, fmt.Errorf("empty hls directive")
	}
	d := Directive{Scope: fields[0]}
	switch d.Scope {
	case "node", "numa", "cache", "core", "llc":
	default:
		return Directive{}, fmt.Errorf("unknown hls scope %q (want node|numa|cache|core|llc)", d.Scope)
	}
	for _, opt := range fields[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return Directive{}, fmt.Errorf("malformed option %q (want key=value)", opt)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return Directive{}, fmt.Errorf("option %s=%q is not a non-negative integer", k, v)
		}
		switch k {
		case "level":
			if d.Scope != "cache" {
				return Directive{}, fmt.Errorf("level= only applies to the cache scope")
			}
			d.Level = n
		case "len":
			d.Len = n
		default:
			return Directive{}, fmt.Errorf("unknown option %q", k)
		}
	}
	return d, nil
}

// fillType derives element type and count from the declaration.
func fillType(d *Directive, t ast.Expr) error {
	switch tt := t.(type) {
	case *ast.ArrayType:
		if tt.Len == nil { // slice
			if d.Len == 0 {
				return fmt.Errorf("hls variable %s is a slice; specify len=N in the directive", d.VarName)
			}
		} else {
			lit, ok := tt.Len.(*ast.BasicLit)
			if !ok {
				return fmt.Errorf("hls variable %s: array length must be a literal", d.VarName)
			}
			n, err := strconv.Atoi(lit.Value)
			if err != nil {
				return fmt.Errorf("hls variable %s: bad array length %q", d.VarName, lit.Value)
			}
			if d.Len == 0 {
				d.Len = n
			}
		}
		elem, ok := tt.Elt.(*ast.Ident)
		if !ok {
			return fmt.Errorf("hls variable %s: element type must be a named type", d.VarName)
		}
		d.ElemType = elem.Name
	case *ast.Ident:
		d.ElemType = tt.Name
		if d.Len == 0 {
			d.Len = 1
		}
	case nil:
		return fmt.Errorf("hls variable %s must have an explicit type", d.VarName)
	default:
		return fmt.Errorf("hls variable %s: unsupported type %T", d.VarName, t)
	}
	return nil
}

// CheckUnused enforces the "declared but not yet accessed" rule: no
// identifier use of a marked variable anywhere in the given files (other
// than its declaration).
func CheckUnused(fset *token.FileSet, files []*ast.File, dirs []Directive) error {
	marked := make(map[string]bool, len(dirs))
	declLine := make(map[string]int, len(dirs))
	for _, d := range dirs {
		marked[d.VarName] = true
		declLine[d.VarName] = d.Line
	}
	var err error
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if err != nil {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || !marked[id.Name] {
				return true
			}
			pos := fset.Position(id.Pos())
			if pos.Line == declLine[id.Name] {
				return true // the declaration itself
			}
			err = fmt.Errorf("%s: hls variable %s is accessed directly; use the generated %sHLS accessor",
				pos, id.Name, id.Name)
			return false
		})
	}
	return err
}

// Generate renders the registration file for one package.
func Generate(pkgName string, dirs []Directive) (string, error) {
	if len(dirs) == 0 {
		return "", fmt.Errorf("gen: no hls directives found")
	}
	sorted := append([]Directive(nil), dirs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].VarName < sorted[j].VarName })

	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by hlsgen; DO NOT EDIT.\n\n")
	fmt.Fprintf(&b, "package %s\n\n", pkgName)
	fmt.Fprintf(&b, "import (\n")
	fmt.Fprintf(&b, "\t\"hls/internal/hls\"\n")
	fmt.Fprintf(&b, "\t\"hls/internal/mpi\"\n")
	fmt.Fprintf(&b, "\t\"hls/internal/topology\"\n")
	fmt.Fprintf(&b, ")\n\n")
	for _, d := range sorted {
		fmt.Fprintf(&b, "var hlsVar_%s *hls.Var[%s]\n", d.VarName, d.ElemType)
	}
	fmt.Fprintf(&b, "\n// HLSInit registers every //hls: variable of the package. Call it\n")
	fmt.Fprintf(&b, "// once before mpi.World.Run.\n")
	fmt.Fprintf(&b, "func HLSInit(reg *hls.Registry) {\n")
	for _, d := range sorted {
		fmt.Fprintf(&b, "\thlsVar_%s = hls.Declare[%s](reg, %q, %s, %d)\n",
			d.VarName, d.ElemType, d.VarName, scopeExpr(d), d.Len)
	}
	fmt.Fprintf(&b, "}\n")
	for _, d := range sorted {
		acc := accessorName(d.VarName)
		fmt.Fprintf(&b, "\n// %s resolves the calling task's copy of %s\n", acc, d.VarName)
		fmt.Fprintf(&b, "// (the hls_get_addr_%s call).\n", d.Scope)
		fmt.Fprintf(&b, "func %s(t *mpi.Task) []%s { return hlsVar_%s.Slice(t) }\n", acc, d.ElemType, d.VarName)
		fmt.Fprintf(&b, "\n// %sSingle runs body on one task per %s instance with the\n", accessorName(d.VarName), d.Scope)
		fmt.Fprintf(&b, "// directive's implicit barriers.\n")
		fmt.Fprintf(&b, "func %sSingle(t *mpi.Task, body func([]%s)) { hlsVar_%s.Single(t, body) }\n",
			acc, d.ElemType, d.VarName)
	}
	return b.String(), nil
}

func accessorName(v string) string {
	return v + "HLS"
}

func scopeExpr(d Directive) string {
	switch d.Scope {
	case "node":
		return "topology.Node"
	case "numa":
		return "topology.NUMA"
	case "core":
		return "topology.Core"
	case "llc":
		return "topology.Cache(0)"
	default: // cache
		return fmt.Sprintf("topology.Cache(%d)", d.Level)
	}
}
