package gen

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestDemoPackageGolden regenerates internal/gen/demohls/hls_gen.go and
// compares it to the checked-in file, so the compiled-and-tested fixture
// can never drift from the generator.
func TestDemoPackageGolden(t *testing.T) {
	dir := filepath.Join("demohls")
	fset := token.NewFileSet()
	var files []*ast.File
	var dirs []Directive
	pkg := ""
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".go" || name == "hls_gen.go" ||
			len(name) > 8 && name[len(name)-8:] == "_test.go" {
			continue
		}
		f, ds, err := ParseFile(fset, filepath.Join(dir, name), nil)
		if err != nil {
			t.Fatal(err)
		}
		pkg = f.Name.Name
		files = append(files, f)
		dirs = append(dirs, ds...)
	}
	if err := CheckUnused(fset, files, dirs); err != nil {
		t.Fatal(err)
	}
	got, err := Generate(pkg, dirs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(dir, "hls_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("hls_gen.go is stale; rerun `go run ./cmd/hlsgen -dir internal/gen/demohls`\n--- generated ---\n%s", got)
	}
}
