package gen

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) ([]Directive, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	_, dirs, err := ParseFile(fset, "test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return dirs, fset
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	fset := token.NewFileSet()
	_, _, err := ParseFile(fset, "test.go", src)
	return err
}

func TestParseArrayDirective(t *testing.T) {
	dirs, _ := parse(t, `package p

//hls:node
var table [1000]float64
`)
	if len(dirs) != 1 {
		t.Fatalf("directives = %d, want 1", len(dirs))
	}
	d := dirs[0]
	if d.VarName != "table" || d.Scope != "node" || d.Len != 1000 || d.ElemType != "float64" {
		t.Errorf("parsed %+v", d)
	}
}

func TestParseScalarDirective(t *testing.T) {
	dirs, _ := parse(t, `package p

//hls:numa
var a int
`)
	if dirs[0].Len != 1 || dirs[0].ElemType != "int" || dirs[0].Scope != "numa" {
		t.Errorf("parsed %+v", dirs[0])
	}
}

func TestParseSliceNeedsLen(t *testing.T) {
	if err := parseErr(t, "package p\n\n//hls:node\nvar b []float64\n"); err == nil {
		t.Error("slice without len accepted")
	}
	dirs, _ := parse(t, "package p\n\n//hls:node len=512\nvar b []float64\n")
	if dirs[0].Len != 512 {
		t.Errorf("len = %d", dirs[0].Len)
	}
}

func TestParseCacheLevel(t *testing.T) {
	dirs, _ := parse(t, "package p\n\n//hls:cache level=2\nvar c [8]float32\n")
	if dirs[0].Scope != "cache" || dirs[0].Level != 2 {
		t.Errorf("parsed %+v", dirs[0])
	}
	if err := parseErr(t, "package p\n\n//hls:node level=2\nvar c [8]float32\n"); err == nil {
		t.Error("level= on non-cache scope accepted")
	}
}

func TestParseRejectsBadScope(t *testing.T) {
	if err := parseErr(t, "package p\n\n//hls:socket\nvar x int\n"); err == nil {
		t.Error("bad scope accepted")
	}
}

func TestParseRejectsInitializer(t *testing.T) {
	if err := parseErr(t, "package p\n\n//hls:node\nvar x = 3\n"); err == nil {
		t.Error("initializer accepted")
	}
}

func TestParseRejectsBadOptions(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//hls:node foo\nvar x int\n",
		"package p\n\n//hls:node len=x\nvar x int\n",
		"package p\n\n//hls:node weird=1\nvar x int\n",
	} {
		if err := parseErr(t, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLocalVarNotPickedUp(t *testing.T) {
	// Directives only attach to package-level declarations, mirroring the
	// "global variables only" rule.
	dirs, _ := parse(t, `package p

func f() {
	//hls:node
	var local [4]float64
	_ = local
}
`)
	if len(dirs) != 0 {
		t.Errorf("local var produced directives: %+v", dirs)
	}
}

func TestCheckUnusedCatchesDirectAccess(t *testing.T) {
	src := `package p

//hls:node
var table [8]float64

func f() float64 { return table[0] }
`
	fset := token.NewFileSet()
	f, dirs, err := ParseFile(fset, "test.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckUnused(fset, nil, dirs); err != nil {
		t.Errorf("no files should pass: %v", err)
	}
	err = CheckUnused(fset, []*ast.File{f}, dirs)
	if err == nil || !strings.Contains(err.Error(), "accessed directly") {
		t.Errorf("direct access not caught: %v", err)
	}
}

func TestGenerateOutput(t *testing.T) {
	dirs, _ := parse(t, `package p

//hls:node
var table [100]float64

//hls:numa
var flag int
`)
	out, err := Generate("p", dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package p",
		"func HLSInit(reg *hls.Registry)",
		`hls.Declare[float64](reg, "table", topology.Node, 100)`,
		`hls.Declare[int](reg, "flag", topology.NUMA, 1)`,
		"func tableHLS(t *mpi.Task) []float64",
		"func flagHLSSingle(t *mpi.Task, body func([]int))",
		"DO NOT EDIT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	if _, err := Generate("p", nil); err == nil {
		t.Error("empty directive list accepted")
	}
}

func TestGenerateLLCScope(t *testing.T) {
	dirs, _ := parse(t, "package p\n\n//hls:llc\nvar x [4]float64\n")
	out, err := Generate("p", dirs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "topology.Cache(0)") {
		t.Errorf("llc scope not lowered to the placeholder:\n%s", out)
	}
}
