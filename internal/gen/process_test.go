package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestProcessDirHappyPath(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go": "package demo\n\n//hls:node\nvar tbl [16]float64\n",
		"b.go": "package demo\n\nfunc unrelated() int { return 1 }\n",
	})
	out, err := ProcessDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package demo", `"tbl"`, "topology.Node, 16"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestProcessDirSkipsTestsAndGenerated(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go":       "package demo\n\n//hls:node\nvar tbl [4]float64\n",
		"a_test.go":  "package demo\n\n//hls:node\nvar testOnly [4]float64\n",
		"hls_gen.go": "package demo\n\n//hls:node\nvar oldGenVar [4]float64\n",
		"sub":        "", // not a .go file
	})
	out, err := ProcessDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "testOnly") || strings.Contains(out, "oldGenVar") {
		t.Errorf("test/generated files scanned:\n%s", out)
	}
}

func TestProcessDirRejectsDirectAccess(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go": "package demo\n\n//hls:node\nvar tbl [4]float64\n",
		"b.go": "package demo\n\nfunc f() float64 { return tbl[0] }\n",
	})
	if _, err := ProcessDir(dir); err == nil || !strings.Contains(err.Error(), "accessed directly") {
		t.Errorf("direct access not rejected: %v", err)
	}
}

func TestProcessDirMixedPackages(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"a.go": "package demo\n\n//hls:node\nvar tbl [4]float64\n",
		"b.go": "package other\n",
	})
	if _, err := ProcessDir(dir); err == nil || !strings.Contains(err.Error(), "mixed packages") {
		t.Errorf("mixed packages not rejected: %v", err)
	}
}

func TestProcessDirEmpty(t *testing.T) {
	if _, err := ProcessDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := ProcessDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestProcessDirNoDirectives(t *testing.T) {
	dir := writeFiles(t, map[string]string{"a.go": "package demo\n"})
	if _, err := ProcessDir(dir); err == nil {
		t.Error("directive-less package accepted")
	}
}
