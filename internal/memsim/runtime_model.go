package memsim

import "fmt"

// RuntimeModel selects which MPI implementation's memory behaviour to
// account for. The paper compares MPC (thread-based, lazy communication
// buffers) against Open MPI ("a more aggressive policy on communication
// buffers" whose footprint grows with the number of cores, §V-B1).
type RuntimeModel int

const (
	// ModelMPC is the thread-based runtime: small shared per-node pools
	// plus a modest per-peer cost.
	ModelMPC RuntimeModel = iota
	// ModelOpenMPI is the process-based baseline: a per-process base
	// footprint plus per-peer eager buffers that grow with the total
	// number of ranks in the job.
	ModelOpenMPI
)

// String names the model like the tables' MPI column.
func (m RuntimeModel) String() string {
	switch m {
	case ModelMPC:
		return "MPC"
	case ModelOpenMPI:
		return "Open MPI"
	default:
		return fmt.Sprintf("RuntimeModel(%d)", int(m))
	}
}

// Buffer-model constants, in paper-scale bytes. The Open MPI numbers are
// fitted to the paper's observed per-node gap over MPC: ≈145 MB at 256
// ranks, ≈156 MB at 512, ≈199 MB at 736 — a base close to 120 MB plus
// ≈0.1 MB per rank in the job (Tables II–IV discussion: "this gap grows
// with the number of cores").
const (
	mpcPerNodeBase   = 24 << 20 // shared per-node pools
	mpcPerTask       = 2 << 20  // stacks + queues per user-level thread
	mpcPerPeer       = 1 << 10  // lazy per-peer state
	ompiPerNodeBase  = 96 << 20 // mapped libraries + shared backing files
	ompiPerProc      = 6 << 20  // per-process runtime state
	ompiPerPeerEager = 100 << 10
)

// RuntimeBytesPerNode returns the modeled per-node runtime footprint (in
// paper-scale bytes) for a job of totalTasks ranks with tasksPerNode ranks
// on each node.
func RuntimeBytesPerNode(m RuntimeModel, tasksPerNode, totalTasks int) int64 {
	switch m {
	case ModelMPC:
		return int64(mpcPerNodeBase) +
			int64(tasksPerNode)*mpcPerTask +
			int64(tasksPerNode)*int64(totalTasks)*mpcPerPeer
	case ModelOpenMPI:
		return int64(ompiPerNodeBase) +
			int64(tasksPerNode)*ompiPerProc +
			int64(tasksPerNode)*int64(totalTasks)*ompiPerPeerEager/8
	default:
		panic(fmt.Sprintf("memsim: unknown runtime model %d", int(m)))
	}
}
