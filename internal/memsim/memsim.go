// Package memsim is the memory-accounting substrate behind the paper's
// memory-footprint evaluation (§V-B, Tables II–IV).
//
// The paper measures resident memory (application + MPI runtime) on every
// node every 0.1 s, reports the time-average per node, then the average
// and the maximum of that value across nodes. This package reproduces the
// measurement pipeline: applications allocate through a Tracker that tags
// every allocation with the node it lives on and a kind (task-private
// data, HLS-shared data, runtime buffers), the harness calls Sample at
// step boundaries, and Report returns the same two columns the tables
// print.
//
// Allocations are accounting-only: the tracker records byte counts, it
// does not reserve memory. Applications hold their real (scaled-down) Go
// slices separately and report the byte sizes the paper's full-scale run
// would have used, so the tables can be regenerated at paper scale while
// the computation runs at laptop scale.
package memsim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"hls/internal/topology"
)

// Kind classifies an allocation for per-kind breakdowns.
type Kind int

const (
	// KindApp is task-private application data (duplicated per task in a
	// plain MPI run).
	KindApp Kind = iota
	// KindShared is HLS-shared application data (one copy per scope
	// instance).
	KindShared
	// KindRuntime is MPI-runtime memory: communication buffers, queues.
	KindRuntime
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindApp:
		return "app"
	case KindShared:
		return "shared"
	case KindRuntime:
		return "runtime"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Alloc is a handle to one tracked allocation.
type Alloc struct {
	node  int
	bytes int64
	kind  Kind
	freed bool
}

// Bytes returns the allocation size.
func (a *Alloc) Bytes() int64 { return a.bytes }

// Tracker accounts memory per node over time.
type Tracker struct {
	machine *topology.Machine
	pin     *topology.Pinning

	mu      sync.Mutex
	current []int64   // per-node bytes now
	byKind  [][]int64 // [kind][node] bytes now
	peak    []int64   // per-node instantaneous peak
	sumSamp []int64   // per-node sum of sampled values
	nSamp   int       // number of samples taken
	series  [][]int64 // per-sample snapshots, for WriteCSV
}

// NewTracker builds a tracker for tasks pinned by pin on machine m.
func NewTracker(m *topology.Machine, pin *topology.Pinning) *Tracker {
	nodes := m.Nodes()
	t := &Tracker{
		machine: m,
		pin:     pin,
		current: make([]int64, nodes),
		peak:    make([]int64, nodes),
		sumSamp: make([]int64, nodes),
	}
	t.byKind = make([][]int64, 3)
	for k := range t.byKind {
		t.byKind[k] = make([]int64, nodes)
	}
	return t
}

// NodeOfRank returns the node hosting MPI task `rank`.
func (t *Tracker) NodeOfRank(rank int) int {
	return t.machine.PlaceOf(t.pin.Thread(rank)).Node
}

// AllocRank records an allocation of `bytes` owned by task `rank`.
func (t *Tracker) AllocRank(rank int, bytes int64, kind Kind) *Alloc {
	return t.AllocNode(t.NodeOfRank(rank), bytes, kind)
}

// AllocNode records an allocation of `bytes` on a node.
func (t *Tracker) AllocNode(node int, bytes int64, kind Kind) *Alloc {
	if bytes < 0 {
		panic(fmt.Sprintf("memsim: negative allocation %d", bytes))
	}
	if node < 0 || node >= len(t.current) {
		panic(fmt.Sprintf("memsim: node %d out of range [0,%d)", node, len(t.current)))
	}
	a := &Alloc{node: node, bytes: bytes, kind: kind}
	t.mu.Lock()
	t.current[node] += bytes
	t.byKind[kind][node] += bytes
	if t.current[node] > t.peak[node] {
		t.peak[node] = t.current[node]
	}
	t.mu.Unlock()
	return a
}

// Free releases a tracked allocation. Freeing twice panics.
func (t *Tracker) Free(a *Alloc) {
	if a == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if a.freed {
		panic("memsim: double free")
	}
	a.freed = true
	t.current[a.node] -= a.bytes
	t.byKind[a.kind][a.node] -= a.bytes
	if t.current[a.node] < 0 {
		panic("memsim: node usage went negative")
	}
}

// Sample snapshots the current per-node usage, as the paper's 0.1 s
// monitor does. Call it at regular points (e.g. every time step).
func (t *Tracker) Sample() {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := make([]int64, len(t.current))
	for n, v := range t.current {
		t.sumSamp[n] += v
		snap[n] = v
	}
	t.series = append(t.series, snap)
	t.nSamp++
}

// Report summarizes the run in the tables' two columns.
type Report struct {
	Nodes int
	// AvgBytes is the per-node time-average, averaged across nodes
	// ("avg. mem" column).
	AvgBytes float64
	// MaxBytes is the maximum across nodes of the per-node time-average
	// ("max. mem" column).
	MaxBytes float64
	// PeakBytes is the instantaneous peak across nodes and time (not in
	// the paper's tables; useful for debugging).
	PeakBytes int64
	// PerNodeAvg lists each node's time-average.
	PerNodeAvg []float64
}

// Report computes the summary. If Sample was never called, the current
// usage counts as one sample.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.nSamp
	sum := t.sumSamp
	if n == 0 {
		n = 1
		sum = t.current
	}
	r := Report{Nodes: len(t.current), PerNodeAvg: make([]float64, len(t.current))}
	var tot float64
	for i := range t.current {
		avg := float64(sum[i]) / float64(n)
		r.PerNodeAvg[i] = avg
		tot += avg
		if avg > r.MaxBytes {
			r.MaxBytes = avg
		}
		if t.peak[i] > r.PeakBytes {
			r.PeakBytes = t.peak[i]
		}
	}
	r.AvgBytes = tot / float64(len(t.current))
	return r
}

// KindBytes returns the current per-node usage of one kind, for breakdown
// assertions in tests.
func (t *Tracker) KindBytes(kind Kind) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.byKind[kind]))
	copy(out, t.byKind[kind])
	return out
}

// CurrentBytes returns the current total usage of one node.
func (t *Tracker) CurrentBytes(node int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current[node]
}

// MB converts bytes to the tables' MB unit (2^20).
func MB(bytes float64) float64 { return bytes / (1 << 20) }

// Quantile returns the q-quantile (0..1) of per-node averages; a helper
// for harness diagnostics.
func (r Report) Quantile(q float64) float64 {
	if len(r.PerNodeAvg) == 0 {
		return 0
	}
	s := append([]float64(nil), r.PerNodeAvg...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// WriteCSV emits the sampled per-node usage series — the reproduction of
// the paper's 0.1 s memory monitor output ("The memory consumption of the
// application plus the MPI runtime is measured every 0.1s on each node").
// Columns: sample index followed by one MB value per node.
func (t *Tracker) WriteCSV(w io.Writer) error {
	t.mu.Lock()
	series := make([][]int64, len(t.series))
	copy(series, t.series)
	nodes := len(t.current)
	t.mu.Unlock()

	cw := csv.NewWriter(w)
	header := make([]string, nodes+1)
	header[0] = "sample"
	for n := 0; n < nodes; n++ {
		header[n+1] = fmt.Sprintf("node%d_mb", n)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, nodes+1)
	for i, snap := range series {
		row[0] = strconv.Itoa(i)
		for n, v := range snap {
			row[n+1] = strconv.FormatFloat(MB(float64(v)), 'f', 2, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
