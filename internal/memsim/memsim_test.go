package memsim

import (
	"strings"
	"sync"
	"testing"

	"hls/internal/topology"
)

func tracker(t *testing.T, nodes, tasks int) *Tracker {
	t.Helper()
	m := topology.HarpertownCluster(nodes)
	pin := topology.MustPin(m, tasks, topology.PinCorePerTask)
	return NewTracker(m, pin)
}

func TestNodeOfRank(t *testing.T) {
	tr := tracker(t, 2, 16) // 8 cores per node
	for r := 0; r < 8; r++ {
		if tr.NodeOfRank(r) != 0 {
			t.Errorf("rank %d on node %d, want 0", r, tr.NodeOfRank(r))
		}
	}
	for r := 8; r < 16; r++ {
		if tr.NodeOfRank(r) != 1 {
			t.Errorf("rank %d on node %d, want 1", r, tr.NodeOfRank(r))
		}
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	tr := tracker(t, 2, 16)
	a := tr.AllocRank(0, 100, KindApp)
	b := tr.AllocRank(9, 50, KindShared)
	if got := tr.CurrentBytes(0); got != 100 {
		t.Errorf("node 0 = %d, want 100", got)
	}
	if got := tr.CurrentBytes(1); got != 50 {
		t.Errorf("node 1 = %d, want 50", got)
	}
	tr.Free(a)
	if got := tr.CurrentBytes(0); got != 0 {
		t.Errorf("after free node 0 = %d", got)
	}
	if got := tr.KindBytes(KindShared)[1]; got != 50 {
		t.Errorf("shared on node 1 = %d, want 50", got)
	}
	tr.Free(b)
}

func TestDoubleFreePanics(t *testing.T) {
	tr := tracker(t, 1, 4)
	a := tr.AllocNode(0, 10, KindApp)
	tr.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	tr.Free(a)
}

func TestNegativeAllocPanics(t *testing.T) {
	tr := tracker(t, 1, 4)
	defer func() {
		if recover() == nil {
			t.Error("negative alloc did not panic")
		}
	}()
	tr.AllocNode(0, -1, KindApp)
}

func TestFreeNilIsNoop(t *testing.T) {
	tr := tracker(t, 1, 4)
	tr.Free(nil)
}

func TestSampleAveraging(t *testing.T) {
	tr := tracker(t, 2, 16)
	a := tr.AllocNode(0, 100, KindApp)
	tr.Sample() // node0=100, node1=0
	tr.AllocNode(1, 300, KindApp)
	tr.Sample() // node0=100, node1=300
	tr.Free(a)
	tr.Sample() // node0=0, node1=300
	r := tr.Report()
	// node0 avg = 200/3, node1 avg = 200
	if want := 200.0 / 3.0; !near(r.PerNodeAvg[0], want) {
		t.Errorf("node0 avg = %v, want %v", r.PerNodeAvg[0], want)
	}
	if !near(r.PerNodeAvg[1], 200) {
		t.Errorf("node1 avg = %v, want 200", r.PerNodeAvg[1])
	}
	if !near(r.MaxBytes, 200) {
		t.Errorf("max = %v, want 200", r.MaxBytes)
	}
	if !near(r.AvgBytes, (200.0/3.0+200)/2) {
		t.Errorf("avg = %v", r.AvgBytes)
	}
	if r.PeakBytes != 300 {
		t.Errorf("peak = %d, want 300", r.PeakBytes)
	}
}

func TestReportWithoutSamples(t *testing.T) {
	tr := tracker(t, 1, 4)
	tr.AllocNode(0, 64, KindRuntime)
	r := tr.Report()
	if !near(r.AvgBytes, 64) || !near(r.MaxBytes, 64) {
		t.Errorf("report = %+v, want 64", r)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	tr := tracker(t, 4, 32)
	var wg sync.WaitGroup
	for r := 0; r < 32; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := tr.AllocRank(rank, 10, KindApp)
				tr.Free(a)
			}
			tr.AllocRank(rank, 7, KindApp) // leave 7 bytes
		}(r)
	}
	wg.Wait()
	var total int64
	for n := 0; n < 4; n++ {
		total += tr.CurrentBytes(n)
	}
	if total != 32*7 {
		t.Errorf("total = %d, want %d", total, 32*7)
	}
}

func TestDuplicationArithmetic(t *testing.T) {
	// 8 tasks on one node: a 33 MB table costs 8x33 private, 1x33 shared;
	// the saving is 7x33, as Table III's Gadget-2 discussion computes.
	const table = 33 << 20
	trPriv := tracker(t, 1, 8)
	for r := 0; r < 8; r++ {
		trPriv.AllocRank(r, table, KindApp)
	}
	trHLS := tracker(t, 1, 8)
	trHLS.AllocNode(0, table, KindShared)
	saving := trPriv.CurrentBytes(0) - trHLS.CurrentBytes(0)
	if saving != 7*table {
		t.Errorf("saving = %d, want %d", saving, 7*int64(table))
	}
}

func TestRuntimeModelShape(t *testing.T) {
	// Open MPI must cost more than MPC, and the gap must grow with the
	// total number of ranks (the paper: "this gap grows with the number
	// of cores").
	prevGap := int64(0)
	for _, ranks := range []int{256, 512, 736} {
		mpc := RuntimeBytesPerNode(ModelMPC, 8, ranks)
		ompi := RuntimeBytesPerNode(ModelOpenMPI, 8, ranks)
		if ompi <= mpc {
			t.Errorf("ranks=%d: Open MPI %d <= MPC %d", ranks, ompi, mpc)
		}
		gap := ompi - mpc
		if gap <= prevGap {
			t.Errorf("ranks=%d: gap %d did not grow (prev %d)", ranks, gap, prevGap)
		}
		prevGap = gap
		// The paper's gap is on the order of 100-300 MB.
		if MB(float64(gap)) < 50 || MB(float64(gap)) > 400 {
			t.Errorf("ranks=%d: gap %.0f MB outside the paper's 100-300 MB ballpark", ranks, MB(float64(gap)))
		}
	}
}

func TestRuntimeModelString(t *testing.T) {
	if ModelMPC.String() != "MPC" || ModelOpenMPI.String() != "Open MPI" {
		t.Error("model names wrong")
	}
}

func TestQuantile(t *testing.T) {
	r := Report{PerNodeAvg: []float64{10, 30, 20, 40}}
	if got := r.Quantile(0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if (Report{}).Quantile(0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindApp, KindShared, KindRuntime} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+b)
}

func TestWriteCSV(t *testing.T) {
	tr := tracker(t, 2, 16)
	a := tr.AllocNode(0, 2<<20, KindApp)
	tr.Sample()
	tr.AllocNode(1, 1<<20, KindShared)
	tr.Sample()
	tr.Free(a)
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 samples:\n%s", len(lines), sb.String())
	}
	if lines[0] != "sample,node0_mb,node1_mb" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,2.00,0.00" || lines[2] != "1,2.00,1.00" {
		t.Errorf("rows: %q / %q", lines[1], lines[2])
	}
}
