// Package hlsrepro_test holds the top-level benchmarks: one per table and
// figure of the paper's evaluation, plus the micro/ablation benches. Each
// wraps the corresponding internal/bench runner at the quick profile so
// `go test -bench=. -benchmem` regenerates every experiment in minutes;
// `hlsbench -full` runs the paper-shaped sweeps.
package hlsrepro_test

import (
	"io"
	"testing"

	"hls/internal/bench"
	"hls/internal/hls"
	"hls/internal/mpi"
	"hls/internal/topology"
)

// BenchmarkTableI regenerates Table I (mesh-update parallel efficiency).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := bench.RunTableI(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintTableI(io.Discard, cells)
	}
}

// BenchmarkFigure3 regenerates Figure 3 (DGEMM GFLOPS vs matrix size).
func BenchmarkFigure3(b *testing.B) {
	for _, update := range []struct {
		name string
		on   bool
	}{{"NoUpdate", false}, {"Update", true}} {
		b.Run(update.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.RunFigure3(bench.Quick, update.on)
				if err != nil {
					b.Fatal(err)
				}
				bench.PrintFigure3(io.Discard, pts, update.on)
			}
		})
	}
}

// BenchmarkTableII regenerates Table II (EulerMHD memory/time).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTableII(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintMemRows(io.Discard, "Table II", rows, "")
	}
}

// BenchmarkTableIII regenerates Table III (Gadget-2 memory/time).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTableIII(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintMemRows(io.Discard, "Table III", rows, "")
	}
}

// BenchmarkTableIV regenerates Table IV (Tachyon memory/time + elisions).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableIV(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintMemRows(io.Discard, "Table IV", res.Rows, "")
	}
}

// BenchmarkMicro runs the §IV micro-benchmarks and the design-choice
// ablations (flat vs hierarchical barrier, listing 1 vs 2, page merging).
func BenchmarkMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.RunMicro(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintMicro(io.Discard, results)
	}
}

// BenchmarkMicroGetAddr isolates the hls_get_addr fast path (cached
// resolution of a task's copy), the overhead every HLS variable access
// pays (§IV-A).
func BenchmarkMicroGetAddr(b *testing.B) {
	machine := topology.NehalemEX4()
	w, err := mpi.NewWorld(mpi.Config{NumTasks: 1, Machine: machine, Pin: topology.PinCorePerTask})
	if err != nil {
		b.Fatal(err)
	}
	reg := hls.New(w)
	v := hls.Declare[float64](reg, "bench_addr", topology.Node, 8)
	err = w.Run(func(task *mpi.Task) error {
		var sink float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += v.Slice(task)[0]
		}
		_ = sink
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroBarrier compares the §IV-B barrier algorithms on the full
// 32-task node.
func BenchmarkMicroBarrier(b *testing.B) {
	for _, flat := range []struct {
		name string
		opts []hls.Option
	}{
		{"Hierarchical", nil},
		{"Flat", []hls.Option{hls.WithFlatBarriers()}},
	} {
		b.Run(flat.name, func(b *testing.B) {
			machine := topology.NehalemEX4()
			w, err := mpi.NewWorld(mpi.Config{
				NumTasks: machine.TotalCores(), Machine: machine, Pin: topology.PinCorePerTask,
			})
			if err != nil {
				b.Fatal(err)
			}
			reg := hls.New(w, flat.opts...)
			v := hls.Declare[int](reg, "bench_bar", topology.Node, 1)
			b.ResetTimer()
			err = w.Run(func(task *mpi.Task) error {
				for i := 0; i < b.N; i++ {
					reg.Barrier(task, v)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMicroAllreduce compares the two allreduce algorithms
// (reduce+broadcast vs recursive doubling) on 32 tasks — a runtime
// design-choice ablation.
func BenchmarkMicroAllreduce(b *testing.B) {
	for _, alg := range []struct {
		name string
		fn   func(t *mpi.Task, send, recv []float64)
	}{
		{"ReduceBcast", func(t *mpi.Task, send, recv []float64) {
			mpi.Allreduce(t, nil, send, recv, mpi.OpSum)
		}},
		{"RecursiveDoubling", func(t *mpi.Task, send, recv []float64) {
			mpi.AllreduceRD(t, nil, send, recv, mpi.OpSum)
		}},
	} {
		b.Run(alg.name, func(b *testing.B) {
			w, err := mpi.NewWorld(mpi.Config{NumTasks: 32})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			err = w.Run(func(task *mpi.Task) error {
				send := []float64{float64(task.Rank())}
				recv := make([]float64, 1)
				for i := 0; i < b.N; i++ {
					alg.fn(task, send, recv)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMicroRuntimeP2P measures the runtime's point-to-point path
// (eager protocol, ping-pong between two tasks).
func BenchmarkMicroRuntimeP2P(b *testing.B) {
	w, err := mpi.NewWorld(mpi.Config{NumTasks: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = w.Run(func(task *mpi.Task) error {
		buf := make([]float64, 8)
		for i := 0; i < b.N; i++ {
			if task.Rank() == 0 {
				mpi.Send(task, nil, buf, 1, 0)
				mpi.Recv(task, nil, buf, 1, 1)
			} else {
				mpi.Recv(task, nil, buf, 0, 0)
				mpi.Send(task, nil, buf, 0, 1)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
